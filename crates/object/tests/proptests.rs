//! Property-based tests: the page-resident containers must behave exactly
//! like their std counterparts under arbitrary operation sequences, and
//! pages must be bit-stable under byte-level movement.

use pc_object::{make_object, AllocScope, Handle, PcMap, PcString, PcVec, SealedPage};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum MapOp {
    Insert(i64, f64),
    Remove(i64),
    Get(i64),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (
            0i64..50,
            any::<f64>().prop_filter("finite", |f| f.is_finite())
        )
            .prop_map(|(k, v)| MapOp::Insert(k, v)),
        (0i64..50).prop_map(MapOp::Remove),
        (0i64..50).prop_map(MapOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pcmap_matches_std_hashmap(ops in proptest::collection::vec(map_op(), 1..300)) {
        let _scope = AllocScope::new(1 << 20);
        let m = make_object::<PcMap<i64, f64>>().unwrap();
        let mut model = std::collections::HashMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    m.insert(k, v).unwrap();
                    model.insert(k, v);
                }
                MapOp::Remove(k) => {
                    let removed = m.remove(&k);
                    prop_assert_eq!(removed, model.remove(&k).is_some());
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(m.get(&k), model.get(&k).copied());
                }
            }
            prop_assert_eq!(m.len(), model.len());
        }
        // Final sweep: iteration yields exactly the model's contents.
        let mut collected: Vec<(i64, f64)> = m.iter().collect();
        collected.sort_by_key(|(k, _)| *k);
        let mut expected: Vec<(i64, f64)> = model.into_iter().collect();
        expected.sort_by_key(|(k, _)| *k);
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn pcvec_matches_std_vec(values in proptest::collection::vec(any::<i64>(), 0..500)) {
        let _scope = AllocScope::new(1 << 20);
        let v = make_object::<PcVec<i64>>().unwrap();
        for &x in &values {
            v.push(x).unwrap();
        }
        prop_assert_eq!(v.len(), values.len());
        let collected: Vec<i64> = v.iter().collect();
        prop_assert_eq!(&collected, &values);
        if !values.is_empty() {
            prop_assert_eq!(v.as_slice(), &values[..]);
        }
    }

    #[test]
    fn string_map_survives_wire_roundtrip(
        entries in proptest::collection::btree_map("[a-z]{1,12}", 0i64..1000, 1..40)
    ) {
        // Build a page holding Map<String, i64>, move it through bytes, and
        // verify every entry — the zero-copy movement invariant.
        let scope = AllocScope::new(1 << 20);
        let m = make_object::<PcMap<Handle<PcString>, i64>>().unwrap();
        for (k, v) in &entries {
            m.insert(PcString::make(k).unwrap(), *v).unwrap();
        }
        scope.block().set_root(&m);
        drop(m);
        let block = scope.block().clone();
        drop(scope);
        let wire = block.try_seal().unwrap().to_bytes();

        let (_b, root) = SealedPage::from_bytes(&wire).unwrap().open().unwrap();
        let m = root.downcast::<PcMap<Handle<PcString>, i64>>().unwrap();
        prop_assert_eq!(m.len(), entries.len());
        let mut got: Vec<(String, i64)> =
            m.iter().map(|(k, v)| (k.as_str().to_string(), v)).collect();
        got.sort();
        let want: Vec<(String, i64)> = entries.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn wire_roundtrip_is_byte_identical(values in proptest::collection::vec(any::<f64>(), 1..200)) {
        let scope = AllocScope::new(1 << 20);
        let v = make_object::<PcVec<f64>>().unwrap();
        for &x in &values {
            v.push(x).unwrap();
        }
        scope.block().set_root(&v);
        drop(v);
        let block = scope.block().clone();
        drop(scope);
        let page = block.try_seal().unwrap();
        let wire1 = page.to_bytes();
        let page2 = SealedPage::from_bytes(&wire1).unwrap();
        let wire2 = page2.to_bytes();
        prop_assert_eq!(wire1, wire2, "re-shipping must be bit-stable");
    }
}
