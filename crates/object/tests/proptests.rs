//! Property-based tests: the page-resident containers must behave exactly
//! like their std counterparts under arbitrary operation sequences, and
//! pages must be bit-stable under byte-level movement.

use pc_object::{make_object, AllocScope, Handle, PcMap, PcString, PcVec, SealedPage};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum MapOp {
    Insert(i64, f64),
    Remove(i64),
    Get(i64),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (
            0i64..50,
            any::<f64>().prop_filter("finite", |f| f.is_finite())
        )
            .prop_map(|(k, v)| MapOp::Insert(k, v)),
        (0i64..50).prop_map(MapOp::Remove),
        (0i64..50).prop_map(MapOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pcmap_matches_std_hashmap(ops in proptest::collection::vec(map_op(), 1..300)) {
        let _scope = AllocScope::new(1 << 20);
        let m = make_object::<PcMap<i64, f64>>().unwrap();
        let mut model = std::collections::HashMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    m.insert(k, v).unwrap();
                    model.insert(k, v);
                }
                MapOp::Remove(k) => {
                    let removed = m.remove(&k);
                    prop_assert_eq!(removed, model.remove(&k).is_some());
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(m.get(&k), model.get(&k).copied());
                }
            }
            prop_assert_eq!(m.len(), model.len());
        }
        // Final sweep: iteration yields exactly the model's contents.
        let mut collected: Vec<(i64, f64)> = m.iter().collect();
        collected.sort_by_key(|(k, _)| *k);
        let mut expected: Vec<(i64, f64)> = model.into_iter().collect();
        expected.sort_by_key(|(k, _)| *k);
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn pcmap_capacity_stays_power_of_two_and_reserve_presizes(
        keys in proptest::collection::vec(0i64..5000, 1..400),
        extra in 1usize..300,
    ) {
        let _scope = AllocScope::new(1 << 21);
        let m = make_object::<PcMap<i64, i64>>().unwrap();
        for (i, &k) in keys.iter().enumerate() {
            m.insert(k, i as i64).unwrap();
            prop_assert!(m.capacity().is_power_of_two(),
                "capacity {} not a power of two", m.capacity());
        }
        // After a reserve, that many further inserts never rehash.
        m.reserve(extra).unwrap();
        let cap = m.capacity();
        prop_assert!(cap.is_power_of_two());
        for i in 0..extra {
            m.insert(100_000 + i as i64, 0).unwrap();
        }
        prop_assert_eq!(m.capacity(), cap, "reserve must pre-size the burst");
    }

    #[test]
    fn pcmap_backshift_delete_survives_growth_churn(
        ops in proptest::collection::vec((0i64..2000, any::<bool>()), 1..500)
    ) {
        // Insert/remove churn over a wide key range: growth (rehash) and
        // backward-shift deletion both run on the masked probe path and must
        // keep every surviving key reachable.
        let _scope = AllocScope::new(1 << 21);
        let m = make_object::<PcMap<i64, i64>>().unwrap();
        let mut model = std::collections::HashMap::new();
        for (k, insert) in ops {
            if insert {
                m.insert(k, k * 3).unwrap();
                model.insert(k, k * 3);
            } else {
                prop_assert_eq!(m.remove(&k), model.remove(&k).is_some());
            }
        }
        prop_assert_eq!(m.len(), model.len());
        for (&k, &v) in &model {
            prop_assert_eq!(m.get(&k), Some(v));
        }
    }

    #[test]
    fn pcmap_merge_from_equals_entrywise_union(
        a in proptest::collection::btree_map(0i64..200, 1i64..100, 0..80),
        bvals in proptest::collection::btree_map(0i64..200, 1i64..100, 0..80),
    ) {
        // merge_from (stored-hash reuse + stored-to-stored key compare) must
        // produce exactly the sum-union of the two maps.
        let _scope = AllocScope::new(1 << 21);
        let dst = make_object::<PcMap<i64, i64>>().unwrap();
        let src = make_object::<PcMap<i64, i64>>().unwrap();
        for (&k, &v) in &a { dst.insert(k, v).unwrap(); }
        for (&k, &v) in &bvals { src.insert(k, v).unwrap(); }
        let mut cursor = 0u32;
        dst.merge_from(&src, &mut cursor, |db, dv, sb, sv| {
            let x: i64 = db.read(dv);
            let y: i64 = sb.read(sv);
            db.write(dv, x + y);
            Ok(())
        }).unwrap();
        let mut want = a.clone();
        for (k, v) in bvals { *want.entry(k).or_insert(0) += v; }
        prop_assert_eq!(dst.len(), want.len());
        for (k, v) in want {
            prop_assert_eq!(dst.get(&k), Some(v));
        }
    }

    #[test]
    fn masked_and_modref_upserts_agree(
        keys in proptest::collection::vec(0i64..64, 1..300)
    ) {
        // The mask-probed upsert and the pre-masking modulo reference must
        // build identical map contents from the same upsert sequence.
        let _scope = AllocScope::new(1 << 21);
        let masked = make_object::<PcMap<i64, i64>>().unwrap();
        let modref = make_object::<PcMap<i64, i64>>().unwrap();
        for &k in &keys {
            let h = pc_object::hash::mix64(k as u64);
            masked.upsert_by(
                h,
                |b, slot| b.read::<i64>(slot) == k,
                |_b| Ok(k),
                |_b| Ok(1i64),
                |b, slot| { let c: i64 = b.read(slot); b.write(slot, c + 1); Ok(()) },
            ).unwrap();
            modref.upsert_by_modref(
                h,
                |b, slot| b.read::<i64>(slot) == k,
                |_b| Ok(k),
                |_b| Ok(1i64),
                |b, slot| { let c: i64 = b.read(slot); b.write(slot, c + 1); Ok(()) },
            ).unwrap();
        }
        prop_assert_eq!(masked.len(), modref.len());
        let mut got: Vec<(i64, i64)> = masked.iter().collect();
        let mut want: Vec<(i64, i64)> = modref.iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn pcvec_matches_std_vec(values in proptest::collection::vec(any::<i64>(), 0..500)) {
        let _scope = AllocScope::new(1 << 20);
        let v = make_object::<PcVec<i64>>().unwrap();
        for &x in &values {
            v.push(x).unwrap();
        }
        prop_assert_eq!(v.len(), values.len());
        let collected: Vec<i64> = v.iter().collect();
        prop_assert_eq!(&collected, &values);
        if !values.is_empty() {
            prop_assert_eq!(v.as_slice(), &values[..]);
        }
    }

    #[test]
    fn string_map_survives_wire_roundtrip(
        entries in proptest::collection::btree_map("[a-z]{1,12}", 0i64..1000, 1..40)
    ) {
        // Build a page holding Map<String, i64>, move it through bytes, and
        // verify every entry — the zero-copy movement invariant.
        let scope = AllocScope::new(1 << 20);
        let m = make_object::<PcMap<Handle<PcString>, i64>>().unwrap();
        for (k, v) in &entries {
            m.insert(PcString::make(k).unwrap(), *v).unwrap();
        }
        scope.block().set_root(&m);
        drop(m);
        let block = scope.block().clone();
        drop(scope);
        let wire = block.try_seal().unwrap().to_bytes();

        let (_b, root) = SealedPage::from_bytes(&wire).unwrap().open().unwrap();
        let m = root.downcast::<PcMap<Handle<PcString>, i64>>().unwrap();
        prop_assert_eq!(m.len(), entries.len());
        let mut got: Vec<(String, i64)> =
            m.iter().map(|(k, v)| (k.as_str().to_string(), v)).collect();
        got.sort();
        let want: Vec<(String, i64)> = entries.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn wire_roundtrip_is_byte_identical(values in proptest::collection::vec(any::<f64>(), 1..200)) {
        let scope = AllocScope::new(1 << 20);
        let v = make_object::<PcVec<f64>>().unwrap();
        for &x in &values {
            v.push(x).unwrap();
        }
        scope.block().set_root(&v);
        drop(v);
        let block = scope.block().clone();
        drop(scope);
        let page = block.try_seal().unwrap();
        let wire1 = page.to_bytes();
        let page2 = SealedPage::from_bytes(&wire1).unwrap();
        let wire2 = page2.to_bytes();
        prop_assert_eq!(wire1, wire2, "re-shipping must be bit-stable");
    }
}
