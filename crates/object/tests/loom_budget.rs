//! Model-checking the [`MemoryBudget`](pc_object::MemoryBudget) grant and
//! release accounting: under every interleaving of concurrent reservations,
//! the ledger never exceeds the ceiling and drains to zero once all grants
//! are released.
//!
//! The model replicates the budget's protocol — a `Mutex<usize>` ledger
//! with check-then-add under the lock — over the loom shim. A known-bad
//! variant doing the classic check-then-act on an atomic *outside* any lock
//! proves the checker catches the over-commit race the real ledger's lock
//! exists to prevent.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};

const TOTAL: usize = 100;
const WANT: usize = 40; // three concurrent grants would overshoot the ceiling

/// The real protocol: reserve and release mutate the ledger under one lock,
/// exactly like `BudgetInner::reserved`.
#[test]
fn ledger_never_exceeds_total_and_drains_clean() {
    let n = loom::model_bounded(3, || {
        // Ledger plus its high-water mark, updated atomically with it.
        let reserved = Arc::new(Mutex::new((0usize, 0usize)));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let reserved = reserved.clone();
                loom::thread::spawn(move || {
                    // try_take: check the ceiling and add under the lock.
                    let ok = {
                        let mut r = reserved.lock().unwrap();
                        if r.0 + WANT <= TOTAL {
                            r.0 += WANT;
                            r.1 = r.1.max(r.0);
                            true
                        } else {
                            false
                        }
                    };
                    if ok {
                        // The ceiling invariant must hold at every point
                        // while the grant is live.
                        {
                            let r = reserved.lock().unwrap();
                            assert!(r.0 <= TOTAL, "ledger over-committed: {} > {TOTAL}", r.0);
                        }
                        // release: saturating_sub under the same lock.
                        let mut r = reserved.lock().unwrap();
                        r.0 = r.0.saturating_sub(WANT);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        // Concurrent holdings never exceeded the ceiling, and everything
        // granted was released.
        let r = reserved.lock().unwrap();
        assert!(r.1 <= TOTAL, "peak holdings exceeded the budget: {}", r.1);
        assert_eq!(r.0, 0, "ledger failed to drain");
    });
    assert!(
        n > 1000,
        "expected >1000 distinct interleavings, explored {n}"
    );
}

#[test]
fn known_bad_check_then_act_reservation_is_caught() {
    // Broken variant: the ceiling check and the add are two separate atomic
    // operations. Both threads can pass the check before either adds.
    // 60 bytes each: either reservation alone fits, both together overshoot.
    const WANT_BAD: usize = 60;
    let v = loom::try_model(|| {
        let reserved = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let reserved = reserved.clone();
                loom::thread::spawn(move || {
                    if reserved.load(Ordering::SeqCst) + WANT_BAD <= TOTAL {
                        reserved.fetch_add(WANT_BAD, Ordering::SeqCst); // too late
                        let r = reserved.load(Ordering::SeqCst);
                        assert!(r <= TOTAL, "ledger over-committed: {r} > {TOTAL}");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    })
    .expect_err("the unlocked check-then-act must over-commit under some schedule");
    assert!(
        v.message.contains("over-committed"),
        "unexpected violation: {}",
        v.message
    );
}

#[test]
fn grant_grow_and_shrink_stay_balanced() {
    // MemoryGrant::grow/shrink adjust the ledger incrementally; its Drop
    // releases the remainder. Model two grants resizing concurrently.
    let n = loom::model(|| {
        let reserved = Arc::new(Mutex::new(0usize));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let reserved = reserved.clone();
                loom::thread::spawn(move || {
                    let take = 30usize;
                    let ok = {
                        let mut r = reserved.lock().unwrap();
                        if *r + take <= TOTAL {
                            *r += take;
                            true
                        } else {
                            false
                        }
                    };
                    if !ok {
                        return;
                    }
                    // grow by 10 (may be denied), then drop the whole grant.
                    let mut held = take;
                    {
                        let mut r = reserved.lock().unwrap();
                        if *r + 10 <= TOTAL {
                            *r += 10;
                            held += 10;
                        }
                        assert!(*r <= TOTAL, "ledger over-committed during grow");
                    }
                    let mut r = reserved.lock().unwrap();
                    *r = r.saturating_sub(held);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(*reserved.lock().unwrap(), 0, "grow/shrink leaked bytes");
    });
    assert!(n > 100, "expected >100 interleavings, explored {n}");
}
