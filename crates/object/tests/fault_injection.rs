//! Failure injection: out-of-memory faults must never corrupt page data.
//!
//! These are regression tests for the §6.1 "out-of-memory fault" contract:
//! an operation that fails with `BlockFull` must leave every container
//! readable and consistent — the execution engine retries on fresh pages,
//! so a torn entry or half-grown table would surface as corruption later.

use pc_object::{make_object, AllocScope, Handle, PcError, PcMap, PcString, PcVec};

/// Inserting values that no longer fit must fail cleanly and leave every
/// prior entry intact (the torn-entry regression: publishing a map slot
/// before its key/value stores once left garbage offsets behind).
#[test]
fn map_insert_fault_leaves_map_consistent() {
    let _s = AllocScope::new(8 * 1024); // tiny page
    let m = make_object::<PcMap<i64, Handle<PcVec<f64>>>>().unwrap();
    let mut inserted = 0i64;
    loop {
        let make_val = || -> Result<Handle<PcVec<f64>>, PcError> {
            let v = make_object::<PcVec<f64>>()?;
            v.extend_from_slice(&[inserted as f64; 32])?;
            Ok(v)
        };
        let r = make_val().and_then(|v| m.insert(inserted, v));
        match r {
            Ok(()) => inserted += 1,
            Err(PcError::BlockFull { .. }) => break,
            Err(e) => panic!("unexpected error {e}"),
        }
        assert!(inserted < 10_000, "tiny page cannot hold this much");
    }
    assert!(inserted > 0, "at least one insert must fit");
    // Every successfully inserted entry must read back exactly; the failed
    // insert must have left no trace.
    assert_eq!(m.len(), inserted as usize);
    for k in 0..inserted {
        let v = m.get(&k).unwrap_or_else(|| panic!("entry {k} lost"));
        assert_eq!(v.len(), 32);
        assert_eq!(v.get(0), k as f64);
    }
    let mut seen = 0;
    m.for_each(|k, v| {
        assert!(k < inserted);
        assert_eq!(v.get(31), k as f64);
        seen += 1;
    });
    assert_eq!(seen, inserted);
}

/// Same contract for `upsert_by` (the aggregation path).
#[test]
fn upsert_by_fault_is_retryable() {
    let _s = AllocScope::new(4 * 1024);
    let m = make_object::<PcMap<i64, Handle<PcVec<f64>>>>().unwrap();
    let mut upserted = 0i64;
    loop {
        let k = upserted;
        let r = m.upsert_by(
            pc_object::PcKey::hash_val(&k),
            |b, slot| b.read::<i64>(slot) == k,
            |_b| Ok(k),
            |_b| {
                let v = make_object::<PcVec<f64>>()?;
                v.extend_from_slice(&[k as f64; 16])?;
                Ok(v)
            },
            |_b, _slot| Ok(()),
        );
        match r {
            Ok(()) => upserted += 1,
            Err(PcError::BlockFull { .. }) => break,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(upserted > 0);
    assert_eq!(m.len(), upserted as usize);
    for k in 0..upserted {
        assert_eq!(m.get(&k).unwrap().get(3), k as f64);
    }
}

/// Vector pushes that fault must not lose or duplicate prior elements.
#[test]
fn vec_push_fault_preserves_prefix() {
    let _s = AllocScope::new(2 * 1024);
    let v = make_object::<PcVec<i64>>().unwrap();
    let mut n = 0i64;
    loop {
        match v.push(n) {
            Ok(()) => n += 1,
            Err(PcError::BlockFull { .. }) => break,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(n > 0);
    assert_eq!(v.len(), n as usize);
    for i in 0..n {
        assert_eq!(v.get(i as usize), i);
    }
}

/// String allocation faults must not corrupt previously allocated strings.
#[test]
fn string_alloc_fault_is_clean() {
    let _s = AllocScope::new(2 * 1024);
    let mut strings: Vec<Handle<PcString>> = Vec::new();
    loop {
        match PcString::make(&format!("value-{:04}", strings.len())) {
            Ok(h) => strings.push(h),
            Err(PcError::BlockFull { .. }) => break,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(!strings.is_empty());
    for (i, s) in strings.iter().enumerate() {
        assert_eq!(s.as_str(), format!("value-{i:04}"));
    }
}
