//! Integration tests for the PC object model: allocation policies, reference
//! counting, cross-block deep copies, and zero-copy page movement.

use pc_object::{
    make_object, make_object_with_policy, pc_flat, pc_object, AllocPolicy, AllocScope, BlockRef,
    Handle, ObjectPolicy, PcMap, PcString, PcVec, SealedPage,
};

pc_object! {
    /// A labelled feature vector (the paper's §3 example).
    pub struct DataPoint / DataPointView {
        (label, set_label): f64,
        (data, set_data): Handle<PcVec<f64>>,
    }
}

pc_object! {
    /// Employee record used by the join examples.
    pub struct Emp / EmpView {
        (salary, set_salary): i64,
        (name, set_name): Handle<PcString>,
        (dept, set_dept): Handle<PcString>,
    }
}

pc_flat! {
    /// (row, col) coordinate pair.
    #[derive(Debug, PartialEq)]
    pub struct Coord { pub row: i32, pub col: i32 }
}

#[test]
fn quickstart_listing_from_section_3() {
    // makeObjectAllocatorBlock (1024 * 1024);
    let _scope = AllocScope::new(1024 * 1024);
    // Handle<Vector<Handle<DataPoint>>> myVec = makeObject<...>();
    let my_vec = make_object::<PcVec<Handle<DataPoint>>>().unwrap();
    // Handle<DataPoint> storeMe = makeObject<DataPoint>();
    let store_me = make_object::<DataPoint>().unwrap();
    let data = make_object::<PcVec<f64>>().unwrap();
    for i in 0..100 {
        data.push(1.0 * i as f64).unwrap();
    }
    store_me.v().set_data(data).unwrap();
    my_vec.push(store_me).unwrap();

    assert_eq!(my_vec.len(), 1);
    let p = my_vec.get(0);
    assert_eq!(p.v().data().len(), 100);
    assert_eq!(p.v().data().get(99), 99.0);
}

#[test]
fn refcounts_track_handles_and_stored_refs() {
    let scope = AllocScope::new(1 << 16);
    let p = make_object::<DataPoint>().unwrap();
    assert_eq!(p.ref_count(), 1);
    let p2 = p.clone();
    assert_eq!(p.ref_count(), 2);
    drop(p2);
    assert_eq!(p.ref_count(), 1);

    let vec = make_object::<PcVec<Handle<DataPoint>>>().unwrap();
    vec.push(p.clone()).unwrap();
    // one user handle + one stored handle
    assert_eq!(p.ref_count(), 2);
    vec.clear();
    assert_eq!(p.ref_count(), 1);
    assert!(scope.block().active_objects() >= 2);
}

#[test]
fn dropping_all_handles_frees_and_reuses_space() {
    let scope = AllocScope::new(1 << 16);
    let before = scope.block().stats();
    for _ in 0..100 {
        let v = make_object::<PcVec<f64>>().unwrap();
        for i in 0..64 {
            v.push(i as f64).unwrap();
        }
        // v drops here; its space goes to the free lists and is reused.
    }
    let after = scope.block().stats();
    assert_eq!(after.active_objects, before.active_objects);
    assert!(
        after.freelist_hits > 0,
        "lightweight reuse should recycle space"
    );
    // Space consumption must be bounded: ~2 allocations' worth, not 100.
    assert!(
        after.used < before.used + 8 * 1024,
        "used {} grew unboundedly from {}",
        after.used,
        before.used
    );
}

#[test]
fn no_reuse_policy_leaks_space_but_never_recycles() {
    let scope = AllocScope::with_policy(1 << 20, AllocPolicy::NoReuse);
    for _ in 0..50 {
        let v = make_object::<PcVec<f64>>().unwrap();
        v.push(1.0).unwrap();
    }
    let stats = scope.block().stats();
    assert_eq!(stats.freelist_hits, 0);
    assert_eq!(stats.recycle_hits, 0);
    assert!(stats.frees >= 50);
}

#[test]
fn recycling_policy_reuses_same_type_chunks() {
    let scope = AllocScope::with_policy(1 << 16, AllocPolicy::Recycling);
    {
        let p = make_object::<DataPoint>().unwrap();
        p.v().set_label(5.0).unwrap();
    }
    let used_after_first = scope.block().used();
    for _ in 0..20 {
        let p = make_object::<DataPoint>().unwrap();
        p.v().set_label(1.0).unwrap();
    }
    let stats = scope.block().stats();
    assert!(
        stats.recycle_hits >= 19,
        "recycle hits = {}",
        stats.recycle_hits
    );
    assert_eq!(
        scope.block().used(),
        used_after_first,
        "no new space for recycled objects"
    );
}

#[test]
fn no_refcount_objects_are_never_freed() {
    let scope = AllocScope::new(1 << 16);
    {
        let p = make_object_with_policy::<DataPoint>(ObjectPolicy::NoRefCount).unwrap();
        let _c1 = p.clone();
        let _c2 = p.clone();
    } // all handles gone
    let stats = scope.block().stats();
    assert_eq!(stats.frees, 0, "no-refcount object must not be reclaimed");
}

#[test]
#[should_panic(expected = "uniquely-owned")]
fn unique_objects_reject_second_handle() {
    let _scope = AllocScope::new(1 << 16);
    let p = make_object_with_policy::<DataPoint>(ObjectPolicy::Unique).unwrap();
    let _dup = p.clone();
}

#[test]
fn unique_object_freed_on_single_drop() {
    let scope = AllocScope::new(1 << 16);
    {
        let _p = make_object_with_policy::<DataPoint>(ObjectPolicy::Unique).unwrap();
    }
    assert!(scope.block().stats().frees >= 1);
}

#[test]
fn cross_block_assignment_deep_copies() {
    // §6.4's example: data allocated to block 1, then stored into an object
    // on block 2 → automatic deep copy onto block 2.
    let s1 = AllocScope::new(1 << 16);
    let data = make_object::<PcVec<f64>>().unwrap();
    for i in 0..1000 {
        data.push(i as f64).unwrap();
    }
    let b1 = s1.block().clone();

    let s2 = AllocScope::new(1 << 16);
    let m = make_object::<DataPoint>().unwrap();
    m.v().set_data(data.clone()).unwrap(); // deep copy happens here

    let copied = m.v().data();
    assert!(copied.block().same_block(s2.block()));
    assert!(!copied.block().same_block(&b1));
    assert_eq!(copied.len(), 1000);
    assert_eq!(copied.get(999), 999.0);
    assert!(s2.block().stats().deep_copies >= 1);
    // original untouched
    assert_eq!(data.get(500), 500.0);
    drop(s2);
}

#[test]
fn same_block_assignment_does_not_copy() {
    let scope = AllocScope::new(1 << 16);
    let data = make_object::<PcVec<f64>>().unwrap();
    data.push(1.0).unwrap();
    let m = make_object::<DataPoint>().unwrap();
    m.v().set_data(data.clone()).unwrap();
    assert_eq!(scope.block().stats().deep_copies, 0);
    // stored and user handle refer to the same object
    assert_eq!(m.v().data().offset(), data.offset());
}

#[test]
fn block_full_is_reported_not_panicked() {
    let _scope = AllocScope::new(256);
    let v = make_object::<PcVec<f64>>().unwrap();
    let mut err = None;
    for i in 0..10_000 {
        if let Err(e) = v.push(i as f64) {
            err = Some(e);
            break;
        }
    }
    match err {
        Some(pc_object::PcError::BlockFull { .. }) => {}
        other => panic!("expected BlockFull, got {other:?}"),
    }
}

fn build_employee_page() -> SealedPage {
    let scope = AllocScope::new(1 << 16);
    let roster = make_object::<PcVec<Handle<Emp>>>().unwrap();
    for (i, name) in ["alice", "bob", "carol"].iter().enumerate() {
        let e = make_object::<Emp>().unwrap();
        e.v().set_salary(50_000 + i as i64 * 1000).unwrap();
        e.v().set_name(PcString::make(name).unwrap()).unwrap();
        e.v().set_dept(PcString::make("eng").unwrap()).unwrap();
        roster.push(e).unwrap();
    }
    scope.block().set_root(&roster);
    drop(roster);
    let block = scope.block().clone();
    drop(scope);
    block.try_seal().expect("block should seal")
}

#[test]
fn sealed_page_reopens_with_valid_handles() {
    let page = build_employee_page();
    let (_block, root) = page.open().unwrap();
    let roster = root.downcast::<PcVec<Handle<Emp>>>().unwrap();
    assert_eq!(roster.len(), 3);
    let bob = roster.get(1);
    assert_eq!(bob.v().salary(), 51_000);
    assert_eq!(bob.v().name().as_str(), "bob");
    assert_eq!(bob.v().dept().as_str(), "eng");
}

#[test]
fn page_survives_byte_level_movement() {
    // Simulated network shipping: page -> bytes -> page. The paper's claim
    // is that this costs one memcpy and zero per-object work.
    let page = build_employee_page();
    let wire = page.to_bytes();
    let received = SealedPage::from_bytes(&wire).unwrap();
    let (_b, root) = received.open().unwrap();
    let roster = root.downcast::<PcVec<Handle<Emp>>>().unwrap();
    assert_eq!(roster.len(), 3);
    assert_eq!(roster.get(2).v().name().as_str(), "carol");
}

#[test]
fn page_crosses_threads_without_reencoding() {
    let page = build_employee_page();
    let handle = std::thread::spawn(move || {
        let (_b, root) = page.open().unwrap();
        let roster = root.downcast::<PcVec<Handle<Emp>>>().unwrap();
        roster.iter().map(|e| e.v().salary()).sum::<i64>()
    });
    assert_eq!(handle.join().unwrap(), 50_000 + 51_000 + 52_000);
}

#[test]
fn seal_fails_while_handles_alive() {
    let scope = AllocScope::new(1 << 16);
    let v = make_object::<PcVec<f64>>().unwrap();
    v.push(1.0).unwrap();
    scope.block().set_root(&v);
    let block = scope.block().clone();
    drop(scope);
    // `v` still pins the block.
    match block.try_seal() {
        Err(pc_object::PcError::BlockShared) => {}
        other => panic!("expected BlockShared, got {other:?}"),
    }
}

#[test]
fn unmanaged_blocks_skip_refcounting() {
    let page = build_employee_page();
    let (block, root) = page.open().unwrap();
    assert!(!block.is_managed());
    let roster = root.downcast::<PcVec<Handle<Emp>>>().unwrap();
    let e = roster.get(0);
    let rc_before = e.ref_count();
    let _c1 = e.clone();
    let _c2 = e.clone();
    assert_eq!(
        e.ref_count(),
        rc_before,
        "unmanaged blocks never touch refcounts"
    );
}

#[test]
fn nested_map_of_vectors() {
    // The §8.4 shape: Map<String, Handle<Vector<int>>>.
    let _scope = AllocScope::new(1 << 20);
    let m = make_object::<PcMap<Handle<PcString>, Handle<PcVec<i64>>>>().unwrap();
    for supplier in ["acme", "globex", "initech"] {
        let parts = make_object::<PcVec<i64>>().unwrap();
        for p in 0..10 {
            parts.push(p).unwrap();
        }
        m.insert(PcString::make(supplier).unwrap(), parts).unwrap();
    }
    assert_eq!(m.len(), 3);
    let key = PcString::make("globex").unwrap();
    let parts = m.get(&key).unwrap();
    assert_eq!(parts.len(), 10);
    assert_eq!(parts.iter().sum::<i64>(), 45);
    assert!(m.get(&PcString::make("tyrell").unwrap()).is_none());
}

#[test]
fn map_upsert_accumulates_in_place() {
    let _scope = AllocScope::new(1 << 18);
    let m = make_object::<PcMap<i64, f64>>().unwrap();
    for i in 0..1000i64 {
        let k = i % 7;
        m.upsert(
            k,
            || Ok(1.0),
            |b, slot| {
                let cur: f64 = b.read(slot);
                b.write(slot, cur + 1.0);
                Ok(())
            },
        )
        .unwrap();
    }
    assert_eq!(m.len(), 7);
    let total: f64 = (0..7).map(|k| m.get(&k).unwrap()).sum();
    assert_eq!(total, 1000.0);
}

#[test]
fn map_remove_preserves_probe_chains() {
    let _scope = AllocScope::new(1 << 18);
    let m = make_object::<PcMap<i64, i64>>().unwrap();
    for i in 0..200 {
        m.insert(i, i * 10).unwrap();
    }
    for i in (0..200).step_by(2) {
        assert!(m.remove(&i));
    }
    assert_eq!(m.len(), 100);
    for i in 0..200 {
        if i % 2 == 0 {
            assert_eq!(m.get(&i), None);
        } else {
            assert_eq!(m.get(&i), Some(i * 10));
        }
    }
}

#[test]
fn flat_struct_roundtrip_and_pair_keys() {
    let _scope = AllocScope::new(1 << 16);
    let v = make_object::<PcVec<Coord>>().unwrap();
    v.push(Coord { row: 3, col: 4 }).unwrap();
    assert_eq!(v.get(0), Coord { row: 3, col: 4 });

    let m = make_object::<PcMap<(i32, i32), f64>>().unwrap();
    m.insert((1, 2), 0.5).unwrap();
    m.insert((2, 1), 1.5).unwrap();
    assert_eq!(m.get(&(1, 2)), Some(0.5));
    assert_eq!(m.get(&(2, 1)), Some(1.5));
}

#[test]
fn deep_copy_preserves_nested_structure() {
    let _s1 = AllocScope::new(1 << 18);
    let m = make_object::<PcMap<Handle<PcString>, Handle<PcVec<i64>>>>().unwrap();
    let parts = make_object::<PcVec<i64>>().unwrap();
    parts.extend_from_slice(&[1, 2, 3]).unwrap();
    m.insert(PcString::make("acme").unwrap(), parts).unwrap();

    let dst = BlockRef::new(1 << 18, AllocPolicy::LightweightReuse);
    let copy = m.deep_copy_to(&dst).unwrap();
    assert_eq!(copy.len(), 1);
    let _s2 = AllocScope::install(dst.clone());
    let key = PcString::make("acme").unwrap();
    let got = copy.get(&key).unwrap();
    assert!(got.block().same_block(&dst));
    assert_eq!(got.as_slice(), &[1, 2, 3]);
}

#[test]
fn vector_views_are_zero_copy() {
    let _scope = AllocScope::new(1 << 16);
    let v = make_object::<PcVec<f64>>().unwrap();
    v.extend_from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
    let s = v.as_slice();
    assert_eq!(s, &[1.0, 2.0, 3.0, 4.0]);
    let ms = v.as_mut_slice();
    for x in ms.iter_mut() {
        *x *= 2.0;
    }
    assert_eq!(v.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
}

#[test]
fn string_page_roundtrip_with_unicode() {
    let scope = AllocScope::new(1 << 16);
    let v = make_object::<PcVec<Handle<PcString>>>().unwrap();
    v.push(PcString::make("héllo wörld").unwrap()).unwrap();
    v.push(PcString::make("数据库").unwrap()).unwrap();
    scope.block().set_root(&v);
    drop(v);
    let block = scope.block().clone();
    drop(scope);
    let bytes = block.try_seal().unwrap().to_bytes();
    let (_b, root) = SealedPage::from_bytes(&bytes).unwrap().open().unwrap();
    let v = root.downcast::<PcVec<Handle<PcString>>>().unwrap();
    assert_eq!(v.get(0).as_str(), "héllo wörld");
    assert_eq!(v.get(1).as_str(), "数据库");
}
