//! Byte-denominated memory budgets for out-of-core operators.
//!
//! The paper's execution model (§6) assumes pages move freely between RAM
//! and the file store; this module gives operators the handle they need to
//! participate: a [`MemoryBudget`] they *reserve* working memory against.
//! Reservation failure is a typed backpressure signal
//! ([`PcError::MemoryPressure`]) — never a panic — and the operator's answer
//! to it is to seal and spill a partition through a [`PageSpiller`], then
//! come back for the spilled data on a second pass.
//!
//! For chaos testing, a budget can carry a [`PressureSpec`]: a seeded,
//! deterministic denial schedule in the spirit of the transport layer's
//! `FaultSpec` — whether reservation *i* is denied is a pure function of
//! `seed × i`, so a failing run replays exactly from its seed.

use crate::error::{PcError, PcResult};
use crate::page::SealedPage;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// SplitMix64-style mixer: identical construction to the transport fault
/// injector's, so one seed convention covers the whole chaos suite.
fn mix(seed: u64, n: u64, salt: u64) -> u64 {
    let mut z =
        seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const PRESSURE_SALT: u64 = 0x00B0_D9E7;

/// Seeded memory-pressure injection: deny a slice of reservations as a pure
/// function of `seed ×` reservation index. Mirrors the transport `FaultSpec`
/// idiom (`rate` is in 256ths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PressureSpec {
    /// Seed for the denial schedule.
    pub seed: u64,
    /// Denial probability in 256ths (e.g. 64 ≈ 25% of reservations denied).
    pub rate: u16,
    /// Hard cap on total injected denials (`u64::MAX` = unlimited). Spill
    /// paths make progress under any denial pattern, so the cap exists only
    /// to bound worst-case slowdown in quick CI runs.
    pub max_denials: u64,
}

impl PressureSpec {
    /// A spec with the default ~25% denial rate and no denial cap.
    pub fn seeded(seed: u64) -> Self {
        PressureSpec {
            seed,
            rate: 64,
            max_denials: u64::MAX,
        }
    }

    /// Whether reservation number `ticket` is denied under this spec.
    #[inline]
    pub fn denies(&self, ticket: u64) -> bool {
        ((mix(self.seed, ticket, PRESSURE_SALT) % 256) as u16) < self.rate
    }
}

#[derive(Debug)]
struct BudgetInner {
    /// Budget ceiling in bytes; `usize::MAX` means unlimited.
    total: usize,
    /// Bytes currently reserved by live grants.
    reserved: Mutex<usize>,
    /// Optional seeded denial schedule (chaos testing).
    pressure: Option<PressureSpec>,
    /// Monotone reservation counter: every reserve/grow attempt takes a
    /// ticket, making injected denials a pure function of the seed.
    tickets: AtomicU64,
    /// Number of reservations denied by injection (not by real exhaustion).
    injected_denials: AtomicU64,
}

/// A shared, byte-denominated memory budget. Cloning shares the ledger, so
/// one budget can arbitrate between many operators (all sinks of a stage,
/// every wave of a spilled join). Dropping a [`MemoryGrant`] returns its
/// bytes; the budget itself carries no memory — it is an accounting device
/// layered over the buffer pool's capacity.
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    inner: Arc<BudgetInner>,
}

impl MemoryBudget {
    /// A budget capped at `total` bytes.
    pub fn bytes(total: usize) -> Self {
        Self::with_pressure(total, None)
    }

    /// An unlimited budget: every reservation succeeds (unless pressure is
    /// injected). The default for in-memory execution.
    pub fn unlimited() -> Self {
        Self::bytes(usize::MAX)
    }

    /// A budget with an optional seeded denial schedule.
    pub fn with_pressure(total: usize, pressure: Option<PressureSpec>) -> Self {
        MemoryBudget {
            inner: Arc::new(BudgetInner {
                total,
                reserved: Mutex::new(0),
                pressure,
                tickets: AtomicU64::new(0),
                injected_denials: AtomicU64::new(0),
            }),
        }
    }

    /// The budget ceiling (`usize::MAX` = unlimited).
    pub fn total(&self) -> usize {
        self.inner.total
    }

    /// Bytes currently reserved by live grants.
    pub fn reserved(&self) -> usize {
        *self.inner.reserved.lock().unwrap()
    }

    /// Bytes still reservable.
    pub fn available(&self) -> usize {
        self.inner.total.saturating_sub(self.reserved())
    }

    /// Number of reservations denied by injected pressure (real exhaustion
    /// denials are not counted here).
    pub fn injected_denials(&self) -> u64 {
        self.inner.injected_denials.load(Ordering::Relaxed)
    }

    /// Attempts the actual ledger update plus injected-pressure check.
    fn try_take(&self, bytes: usize) -> PcResult<()> {
        // Zero-byte reservations always succeed: they carry no memory and
        // denying them could wedge degenerate (empty-input) plans.
        if bytes == 0 {
            return Ok(());
        }
        let ticket = self.inner.tickets.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.inner.pressure {
            if p.denies(ticket)
                && self.inner.injected_denials.load(Ordering::Relaxed) < p.max_denials
            {
                self.inner.injected_denials.fetch_add(1, Ordering::Relaxed);
                return Err(PcError::MemoryPressure {
                    wanted: bytes,
                    available: self.available(),
                });
            }
        }
        let mut reserved = self.inner.reserved.lock().unwrap();
        let after = reserved.saturating_add(bytes);
        if after > self.inner.total {
            return Err(PcError::MemoryPressure {
                wanted: bytes,
                available: self.inner.total.saturating_sub(*reserved),
            });
        }
        *reserved = after;
        Ok(())
    }

    fn release(&self, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let mut reserved = self.inner.reserved.lock().unwrap();
        *reserved = reserved.saturating_sub(bytes);
    }

    /// Reserves `bytes` of working memory. On success the returned
    /// [`MemoryGrant`] holds the reservation until dropped; on
    /// [`PcError::MemoryPressure`] the caller must shed memory (spill a
    /// partition, seal a chain) before retrying — the error is backpressure,
    /// not failure.
    pub fn reserve(&self, bytes: usize) -> PcResult<MemoryGrant> {
        self.try_take(bytes)?;
        Ok(MemoryGrant {
            budget: self.clone(),
            bytes,
        })
    }
}

/// A live reservation against a [`MemoryBudget`]. Dropping the grant
/// returns every reserved byte to the budget.
#[derive(Debug)]
pub struct MemoryGrant {
    budget: MemoryBudget,
    bytes: usize,
}

impl MemoryGrant {
    /// Bytes this grant currently holds.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Grows the grant by `extra` bytes, subject to the same backpressure
    /// (and injected pressure) as a fresh reservation.
    pub fn grow(&mut self, extra: usize) -> PcResult<()> {
        self.budget.try_take(extra)?;
        self.bytes += extra;
        Ok(())
    }

    /// Returns `bytes` of the grant to the budget (a partition was spilled
    /// or sealed away mid-operation).
    pub fn shrink(&mut self, bytes: usize) {
        let bytes = bytes.min(self.bytes);
        self.budget.release(bytes);
        self.bytes -= bytes;
    }
}

impl Drop for MemoryGrant {
    fn drop(&mut self) {
        self.budget.release(self.bytes);
    }
}

/// Where spilled pages go. The buffer pool implements this over its file
/// store (`crates/storage`); operators hold it as `Arc<dyn PageSpiller>` so
/// pc-lambda and pc-exec stay independent of the storage crate. Tokens are
/// opaque; every spilled page must eventually be `reload`ed or `discard`ed
/// (implementations also clean up wholesale on drop so an early abort cannot
/// leak spill files).
pub trait PageSpiller: Send + Sync {
    /// Writes a sealed page to the spill store; returns its reload token.
    fn spill(&self, page: &SealedPage) -> PcResult<u64>;
    /// Reads a spilled page back. The page stays reloadable until discarded.
    fn reload(&self, token: u64) -> PcResult<SealedPage>;
    /// Drops a spilled page without reloading it.
    fn discard(&self, token: u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_roundtrip() {
        let b = MemoryBudget::bytes(100);
        let g = b.reserve(60).unwrap();
        assert_eq!(b.reserved(), 60);
        assert_eq!(b.available(), 40);
        match b.reserve(50) {
            Err(PcError::MemoryPressure { wanted, available }) => {
                assert_eq!(wanted, 50);
                assert_eq!(available, 40);
            }
            other => panic!("expected MemoryPressure, got {other:?}"),
        }
        drop(g);
        assert_eq!(b.reserved(), 0);
        let _g2 = b.reserve(100).unwrap();
    }

    #[test]
    fn grow_and_shrink_track_the_ledger() {
        let b = MemoryBudget::bytes(100);
        let mut g = b.reserve(10).unwrap();
        g.grow(40).unwrap();
        assert_eq!(g.bytes(), 50);
        assert_eq!(b.reserved(), 50);
        assert!(g.grow(60).is_err());
        g.shrink(30);
        assert_eq!(g.bytes(), 20);
        assert_eq!(b.reserved(), 20);
        drop(g);
        assert_eq!(b.reserved(), 0);
    }

    #[test]
    fn clones_share_one_ledger() {
        let a = MemoryBudget::bytes(100);
        let b = a.clone();
        let _g = a.reserve(70).unwrap();
        assert_eq!(b.available(), 30);
        assert!(b.reserve(40).is_err());
    }

    #[test]
    fn zero_byte_reservations_never_fail() {
        let b = MemoryBudget::with_pressure(
            0,
            Some(PressureSpec {
                seed: 7,
                rate: 256,
                max_denials: u64::MAX,
            }),
        );
        for _ in 0..64 {
            b.reserve(0).unwrap();
        }
    }

    #[test]
    fn injected_pressure_is_deterministic_in_the_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let b = MemoryBudget::with_pressure(usize::MAX, Some(PressureSpec::seeded(seed)));
            (0..256).map(|_| b.reserve(1).is_err()).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
        let denied = run(42).iter().filter(|&&d| d).count();
        // rate 64/256 ≈ 25%: both "some denials" and "not all denials".
        assert!(denied > 20 && denied < 120, "denied {denied}/256");
    }

    #[test]
    fn unlimited_budget_always_grants() {
        let b = MemoryBudget::unlimited();
        let g1 = b.reserve(usize::MAX / 2).unwrap();
        let g2 = b.reserve(usize::MAX / 2).unwrap();
        drop((g1, g2));
        assert_eq!(b.reserved(), 0);
    }
}
