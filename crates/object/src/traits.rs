//! Core traits of the object model.
//!
//! * [`Flat`] — the paper's "simple types": plain data, copyable with a
//!   `memmove`, no handles, no virtual behaviour.
//! * [`PcValue`] — anything storable in a fixed-width slot on a page:
//!   every `Flat` type plus [`Handle<T>`](crate::Handle)s to complex objects.
//! * [`PcKey`] — `PcValue`s usable as [`PcMap`](crate::PcMap) keys.
//! * [`PcObjType`] — complex object types (the analogue of deriving from
//!   PC's `Object` base class): they carry a type code, registry vtable, and
//!   deep-copy/drop behaviour.

use crate::block::BlockRef;
use crate::error::PcResult;
use crate::handle::Handle;
use crate::registry::TypeCode;

/// Rounds a stored size up to the 8-byte slot grid.
#[inline]
pub const fn align8(v: u32) -> u32 {
    (v + 7) & !7
}

/// Footprint of a `PcValue` slot in a container or object field.
#[inline]
pub const fn stored_footprint<T: PcValue>() -> u32 {
    align8(T::STORED_SIZE)
}

/// Marker for "simple types" (§6.1): fixed-size plain data with no handles
/// and no virtual behaviour. A `memmove` suffices to copy them.
///
/// # Safety
/// Implementors must be plain data: every bit pattern written by
/// `ptr::write_unaligned` and read back by `ptr::read_unaligned` must be a
/// valid value, and the type must not own heap memory or contain references.
pub unsafe trait Flat: Copy + 'static {
    fn flat_name() -> &'static str;
}

/// A value storable in a fixed-width page slot.
pub trait PcValue: 'static + Sized {
    /// Exact number of bytes the value occupies in its slot.
    const STORED_SIZE: u32;
    /// True when the stored form references other page objects and therefore
    /// participates in reference counting, deep copy, and drop.
    const CONTAINS_HANDLES: bool;

    /// Short diagnostic name, also used to mint type codes for generic
    /// containers (e.g. `PcVec<f64>` registers as `"PcVec<f64>"`).
    fn value_tag() -> String;

    /// Writes the value into the slot at `at` on block `b`. For handles this
    /// enforces the cross-block rule of §6.4: if the target lives on another
    /// block it is deep-copied into `b` first.
    fn store(self, b: &BlockRef, at: u32) -> PcResult<()>;

    /// Reads the value out of a slot (for handles: bumps the refcount and
    /// returns a live user handle).
    fn load(b: &BlockRef, at: u32) -> Self;

    /// Releases whatever the slot references. No-op for flat values.
    fn drop_stored(b: &BlockRef, at: u32);

    /// Copies the slot from one block to another, deep-copying referenced
    /// objects (used when whole containers are deep-copied across blocks).
    fn deep_copy_stored(src: &BlockRef, sat: u32, dst: &BlockRef, dat: u32) -> PcResult<()>;
}

/// A `PcValue` usable as a map key: hashable and comparable both as a Rust
/// value (for lookups) and in stored form (for rehash-free probing).
pub trait PcKey: PcValue {
    /// Hash of the Rust-side value.
    fn hash_val(&self) -> u64;
    /// Does the Rust-side value equal the stored key at `at`?
    fn eq_stored(&self, b: &BlockRef, at: u32) -> bool;
    /// Do the stored keys at `(a, aat)` and `(b, bat)` hold the same value?
    /// Lets page-at-a-time map merges compare entries without materializing
    /// native key values (no per-entry rehash, no allocation).
    fn stored_eq(a: &BlockRef, aat: u32, b: &BlockRef, bat: u32) -> bool;
}

/// A complex PC object type: lives on a page behind a [`Handle`], carries a
/// registered type code, and knows how to deep-copy and drop itself.
///
/// User types are declared with the [`pc_object!`](crate::pc_object) macro,
/// which implements this trait. Container types ([`PcVec`](crate::PcVec),
/// [`PcMap`](crate::PcMap), [`PcString`](crate::PcString)) implement it by
/// hand.
pub trait PcObjType: 'static {
    /// Typed view over a handle, giving field accessors. Generated types get
    /// a real view struct; containers use the handle itself.
    type View<'a>: Copy
    where
        Self: 'a;

    /// True for variable-length objects (never recycled; Appendix B).
    const VAR_SIZE: bool = false;

    /// Stable type name; feeds the type code hash.
    fn type_name() -> String;

    /// The type code under which this type registers with the catalog.
    fn type_code() -> TypeCode {
        crate::registry::cached_code::<Self>()
    }

    /// Registers the vtable with the process registry if not yet present
    /// (the analogue of registering a class' `.so` with the PC catalog).
    fn ensure_registered()
    where
        Self: Sized,
    {
        crate::registry::register_type::<Self>();
    }

    /// Payload size of a default-constructed instance.
    fn init_size() -> u32;

    /// Default-initializes the payload at `off` (memory may be recycled and
    /// dirty; implementations must fully initialize it).
    fn init_at(b: &BlockRef, off: u32) -> PcResult<()>;

    /// Deep-copies the object at `soff` on `src` into `dst`, returning the
    /// new payload offset (refcount 0; the caller adds the first reference).
    fn deep_copy_obj(src: &BlockRef, soff: u32, dst: &BlockRef) -> PcResult<u32>;

    /// Releases child references held by the object at `off` (called when
    /// its refcount reaches zero, before its space is reclaimed).
    fn drop_obj(b: &BlockRef, off: u32);

    /// Builds the typed view for a handle.
    fn make_view(h: &Handle<Self>) -> Self::View<'_>
    where
        Self: Sized;
}

// ------------------------------------------------------------------ flats

macro_rules! impl_flat {
    ($($t:ty),*) => {$(
        unsafe impl Flat for $t {
            fn flat_name() -> &'static str { stringify!($t) }
        }
    )*};
}

impl_flat!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64, usize, isize);

unsafe impl Flat for bool {
    fn flat_name() -> &'static str {
        "bool"
    }
}

unsafe impl<A: Flat, B: Flat> Flat for (A, B) {
    fn flat_name() -> &'static str {
        "pair"
    }
}

/// Every flat type is storable bit-for-bit.
macro_rules! impl_pcvalue_flat {
    ($($t:ty),*) => {$(
        impl PcValue for $t {
            const STORED_SIZE: u32 = std::mem::size_of::<$t>() as u32;
            const CONTAINS_HANDLES: bool = false;
            fn value_tag() -> String { stringify!($t).to_string() }
            #[inline]
            fn store(self, b: &BlockRef, at: u32) -> PcResult<()> {
                b.write(at, self);
                Ok(())
            }
            #[inline]
            fn load(b: &BlockRef, at: u32) -> Self { b.read(at) }
            #[inline]
            fn drop_stored(_b: &BlockRef, _at: u32) {}
            #[inline]
            fn deep_copy_stored(src: &BlockRef, sat: u32, dst: &BlockRef, dat: u32) -> PcResult<()> {
                dst.write(dat, src.read::<$t>(sat));
                Ok(())
            }
        }
    )*};
}

impl_pcvalue_flat!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64, bool);

impl<A: PcValue + Flat, B: PcValue + Flat> PcValue for (A, B) {
    const STORED_SIZE: u32 = std::mem::size_of::<(A, B)>() as u32;
    const CONTAINS_HANDLES: bool = false;
    fn value_tag() -> String {
        format!("({},{})", A::value_tag(), B::value_tag())
    }
    #[inline]
    fn store(self, b: &BlockRef, at: u32) -> PcResult<()> {
        b.write(at, self);
        Ok(())
    }
    #[inline]
    fn load(b: &BlockRef, at: u32) -> Self {
        b.read(at)
    }
    #[inline]
    fn drop_stored(_b: &BlockRef, _at: u32) {}
    #[inline]
    fn deep_copy_stored(src: &BlockRef, sat: u32, dst: &BlockRef, dat: u32) -> PcResult<()> {
        dst.write(dat, src.read::<(A, B)>(sat));
        Ok(())
    }
}

macro_rules! impl_pckey_int {
    ($($t:ty),*) => {$(
        impl PcKey for $t {
            #[inline]
            fn hash_val(&self) -> u64 { crate::hash::mix64(*self as i64 as u64) }
            #[inline]
            fn eq_stored(&self, b: &BlockRef, at: u32) -> bool { b.read::<$t>(at) == *self }
            #[inline]
            fn stored_eq(a: &BlockRef, aat: u32, b: &BlockRef, bat: u32) -> bool {
                a.read::<$t>(aat) == b.read::<$t>(bat)
            }
        }
    )*};
}

impl_pckey_int!(u8, i8, u16, i16, u32, i32, u64, i64);

impl<A, B> PcKey for (A, B)
where
    A: PcKey + Flat,
    B: PcKey + Flat,
    (A, B): PartialEq,
{
    #[inline]
    fn hash_val(&self) -> u64 {
        crate::hash::combine(self.0.hash_val(), self.1.hash_val())
    }
    #[inline]
    fn eq_stored(&self, b: &BlockRef, at: u32) -> bool {
        b.read::<(A, B)>(at) == *self
    }
    #[inline]
    fn stored_eq(a: &BlockRef, aat: u32, b: &BlockRef, bat: u32) -> bool {
        a.read::<(A, B)>(aat) == b.read::<(A, B)>(bat)
    }
}

// ------------------------------------------------------------- handles

impl<T: PcObjType> PcValue for Handle<T> {
    /// Stored handles are `{offset: u32, type_code: u32}` (§6.2).
    const STORED_SIZE: u32 = 8;
    const CONTAINS_HANDLES: bool = true;

    fn value_tag() -> String {
        format!("Handle<{}>", T::type_name())
    }

    fn store(self, b: &BlockRef, at: u32) -> PcResult<()> {
        if self.is_null() {
            b.write::<(u32, u32)>(at, (0, 0));
            return Ok(());
        }
        if b.same_block(self.block()) {
            // Same-block store: record the offset and take a reference.
            b.inc_ref(self.offset());
            b.write::<(u32, u32)>(at, (self.offset(), T::type_code().0));
        } else {
            // Cross-block assignment triggers an automatic deep copy of the
            // target into this block (§6.4).
            b.note_deep_copy();
            let new_off = T::deep_copy_obj(self.block(), self.offset(), b)?;
            b.inc_ref(new_off);
            b.write::<(u32, u32)>(at, (new_off, T::type_code().0));
        }
        Ok(())
    }

    fn load(b: &BlockRef, at: u32) -> Self {
        let (off, _code) = b.read::<(u32, u32)>(at);
        if off == 0 {
            Handle::null(b.clone())
        } else {
            Handle::from_stored(b.clone(), off)
        }
    }

    fn drop_stored(b: &BlockRef, at: u32) {
        let (off, _code) = b.read::<(u32, u32)>(at);
        if off != 0 {
            b.dec_ref(off);
        }
    }

    fn deep_copy_stored(src: &BlockRef, sat: u32, dst: &BlockRef, dat: u32) -> PcResult<()> {
        let (off, code) = src.read::<(u32, u32)>(sat);
        if off == 0 {
            dst.write::<(u32, u32)>(dat, (0, 0));
            return Ok(());
        }
        let new_off = T::deep_copy_obj(src, off, dst)?;
        dst.inc_ref(new_off);
        dst.write::<(u32, u32)>(dat, (new_off, code));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprints_are_slot_aligned() {
        assert_eq!(stored_footprint::<u8>(), 8);
        assert_eq!(stored_footprint::<f64>(), 8);
        assert_eq!(stored_footprint::<(i32, i32)>(), 8);
        assert_eq!(stored_footprint::<(i64, i64)>(), 16);
    }

    #[test]
    fn pair_key_hash_differs_by_order() {
        let a = (1i32, 2i32);
        let b = (2i32, 1i32);
        assert_ne!(a.hash_val(), b.hash_val());
    }
}
