//! Hashing utilities used for PC map keys, shuffle partitioning, and stable
//! type codes.
//!
//! PC `String`s deliberately do *not* cache their hash values (§8.4.3 points
//! this out as a space-for-time trade) — hashes here are always computed on
//! the fly from the stored bytes.

/// FNV-1a 64-bit hash over a byte slice.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// splitmix64 finalizer: turns a 64-bit value into a well-mixed hash.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Hash an `i64` key.
#[inline]
pub fn hash_i64(v: i64) -> u64 {
    mix64(v as u64)
}

/// Hash an `f64` key by its bit pattern (normalizing -0.0 to 0.0).
#[inline]
pub fn hash_f64(v: f64) -> u64 {
    let v = if v == 0.0 { 0.0 } else { v };
    mix64(v.to_bits())
}

/// Combine two hashes (for composite keys such as `(row, col)` pairs).
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    mix64(a ^ b.rotate_left(32).wrapping_mul(0x9e3779b97f4a7c15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_values() {
        // FNV-1a reference vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn mix_is_injective_on_small_range() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }

    #[test]
    fn f64_zero_normalization() {
        assert_eq!(hash_f64(0.0), hash_f64(-0.0));
        assert_ne!(hash_f64(1.0), hash_f64(2.0));
    }
}
