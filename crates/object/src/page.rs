//! Sealed pages: the `Send`, byte-movable form of an allocation block.
//!
//! A [`SealedPage`] is the unit of *zero-cost data movement* (§3, §6.1): the
//! occupied prefix of a block, plus a 16-byte header recording the root
//! object. It can be
//!
//! * moved to another thread (it is `Send`; the buffer changes hands with no
//!   copy at all),
//! * flattened to bytes and re-read (`to_bytes` / `from_bytes` — a pure
//!   `memcpy`, standing in for disk and network movement), and
//! * re-opened as an *unmanaged* block whose handles are immediately valid.
//!
//! There is deliberately no encode/decode step anywhere in this module: the
//! page's bytes are the one representation of the data.

use crate::block::BlockRef;
use crate::error::{PcError, PcResult};
use crate::handle::AnyHandle;
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::ptr::NonNull;
use std::sync::Arc;

/// Magic number marking a PC page ("PCPG").
pub const PAGE_MAGIC: u32 = 0x50435047;

/// Page buffers are 16-byte aligned so that every 8-aligned offset view
/// (f64/i64 slices) is valid after any whole-page move.
pub const PAGE_ALIGN: usize = 16;

/// A heap buffer with guaranteed 16-byte alignment.
pub struct AlignedBuf {
    ptr: NonNull<u8>,
    len: usize,
}

impl AlignedBuf {
    /// Allocates a zeroed buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        let layout = Layout::from_size_align(len.max(1), PAGE_ALIGN).expect("valid layout");
        let ptr = unsafe { alloc_zeroed(layout) };
        let ptr = NonNull::new(ptr).expect("page allocation failed");
        AlignedBuf { ptr, len }
    }

    /// Copies `src` into a fresh aligned buffer.
    pub fn from_slice(src: &[u8]) -> Self {
        let buf = Self::zeroed(src.len());
        unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), buf.ptr.as_ptr(), src.len()) };
        buf
    }

    #[inline]
    pub fn ptr(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.len.max(1), PAGE_ALIGN).expect("valid layout");
        unsafe { dealloc(self.ptr.as_ptr(), layout) };
    }
}

// SAFETY: AlignedBuf uniquely owns its allocation; moving it between threads
// transfers ownership of plain bytes.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

/// A sealed, self-contained page of PC objects.
///
/// The underlying buffer is `Arc`-shared so many readers (worker threads)
/// can [`open_view`](SealedPage::open_view) the same immutable page with no
/// copy at all.
pub struct SealedPage {
    buf: Arc<AlignedBuf>,
    used: u32,
    root: u32,
}

impl SealedPage {
    pub(crate) fn from_parts(buf: AlignedBuf, used: u32, root: u32) -> Self {
        let page = SealedPage {
            buf: Arc::new(buf),
            used,
            root,
        };
        // Persist the movable header fields into the page bytes so that a
        // byte-level copy carries them along.
        page.write_header();
        page
    }

    fn write_header(&self) {
        let p = self.buf.ptr();
        unsafe {
            std::ptr::write_unaligned(p as *mut u32, PAGE_MAGIC);
            std::ptr::write_unaligned(p.add(4) as *mut u32, self.used);
            std::ptr::write_unaligned(p.add(8) as *mut u32, self.root);
        }
    }

    /// The number of occupied bytes (the prefix that must be moved). Shipping
    /// a page costs exactly this many bytes of copy and zero CPU beyond it.
    #[inline]
    pub fn used(&self) -> usize {
        self.used as usize
    }

    /// Offset of the root object.
    #[inline]
    pub fn root(&self) -> u32 {
        self.root
    }

    /// The occupied bytes of the page. This *is* the wire format.
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.buf.as_slice()[..self.used as usize]
    }

    /// Simulates network/disk movement: flatten to owned bytes (one memcpy).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.payload().to_vec()
    }

    /// Re-materializes a page from bytes produced by [`to_bytes`]
    /// (one memcpy; no per-object work of any kind).
    ///
    /// [`to_bytes`]: SealedPage::to_bytes
    pub fn from_bytes(bytes: &[u8]) -> PcResult<Self> {
        if bytes.len() < 16 {
            return Err(PcError::InvalidPage("shorter than page header".into()));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if magic != PAGE_MAGIC {
            return Err(PcError::InvalidPage(format!("bad magic {magic:#x}")));
        }
        let used = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let root = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if used as usize > bytes.len() {
            return Err(PcError::InvalidPage(format!(
                "used {used} exceeds buffer length {}",
                bytes.len()
            )));
        }
        Ok(SealedPage {
            buf: Arc::new(AlignedBuf::from_slice(bytes)),
            used,
            root,
        })
    }

    /// Opens the page as an unmanaged block plus a handle to its root object.
    ///
    /// The receiving side must have the root's type registered (in the full
    /// system the catalog ships the `.so`; here, the registry must know the
    /// type code — `pc-storage`'s worker catalogs simulate the faulting).
    pub fn open(self) -> PcResult<(BlockRef, AnyHandle)> {
        self.open_view()
    }

    /// Opens a zero-copy read view of the page: the returned block shares
    /// the page buffer, so any number of threads may hold views of the same
    /// page concurrently (each view's handles are thread-local; the bytes
    /// are immutable).
    pub fn open_view(&self) -> PcResult<(BlockRef, AnyHandle)> {
        let root = self.root;
        if root == 0 {
            return Err(PcError::NoRoot);
        }
        let block = BlockRef::from_shared(self.buf.clone(), self.used, root);
        let code = block.obj_code(root);
        if crate::registry::lookup_vtable(code).is_none() {
            return Err(PcError::TypeNotRegistered(code.0));
        }
        let handle = AnyHandle::new(block.clone(), root);
        Ok((block, handle))
    }

    /// Opens the page without resolving the root (used by storage scans that
    /// know the type statically).
    pub fn open_block(&self) -> BlockRef {
        BlockRef::from_shared(self.buf.clone(), self.used, self.root)
    }
}

impl std::fmt::Debug for SealedPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SealedPage")
            .field("used", &self.used)
            .field("root", &self.root)
            .field("capacity", &self.buf.len())
            .finish()
    }
}
