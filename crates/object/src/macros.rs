//! Declarative macros for defining user object types — the analogue of
//! subclassing PC's `Object` (complex types) or using a "simple type".

/// Declares a complex PC object type with handle-aware fields.
///
/// The analogue of the paper's
/// `class DataPoint : public Object { Handle<Vector<double>> data; }`.
/// Because Rust inherent methods on `Handle<T>` can only be written in the
/// crate that owns `Handle`, field accessors are generated on a *view*
/// struct reached through [`Handle::v()`](crate::Handle::v). Getter and
/// setter names are written explicitly:
///
/// ```
/// use pc_object::{pc_object, AllocScope, Handle, PcVec, make_object};
///
/// pc_object! {
///     /// A labelled feature vector.
///     pub struct DataPoint / DataPointView {
///         (label, set_label): f64,
///         (data, set_data): Handle<PcVec<f64>>,
///     }
/// }
///
/// let _s = AllocScope::new(1 << 16);
/// let p = make_object::<DataPoint>().unwrap();
/// p.v().set_label(1.0).unwrap();
/// let vec = make_object::<PcVec<f64>>().unwrap();
/// vec.push(3.25).unwrap();
/// p.v().set_data(vec).unwrap();
/// assert_eq!(p.v().label(), 1.0);
/// assert_eq!(p.v().data().get(0), 3.25);
/// ```
///
/// Fields are laid out in declaration order on an 8-byte slot grid. Storing
/// a handle whose target lives on a different block deep-copies the target
/// into this object's block (§6.4's cross-block assignment rule).
#[macro_export]
macro_rules! pc_object {
    (
        $(#[$meta:meta])*
        pub struct $name:ident / $view:ident {
            $( ($get:ident, $set:ident): $t:ty ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        pub struct $name(());

        #[doc = concat!("Field-accessor view over `Handle<", stringify!($name), ">`.")]
        #[derive(Clone, Copy)]
        pub struct $view<'a> {
            h: &'a $crate::Handle<$name>,
        }

        impl $crate::PcObjType for $name {
            type View<'a> = $view<'a>;

            fn type_name() -> String {
                stringify!($name).to_string()
            }

            fn init_size() -> u32 {
                0 $( + $crate::traits::stored_footprint::<$t>() )+
            }

            fn init_at(b: &$crate::BlockRef, off: u32) -> $crate::PcResult<()> {
                b.zero_range(off, Self::init_size() as usize);
                Ok(())
            }

            fn deep_copy_obj(
                src: &$crate::BlockRef,
                soff: u32,
                dst: &$crate::BlockRef,
            ) -> $crate::PcResult<u32> {
                let doff = dst.alloc(
                    Self::init_size(),
                    <Self as $crate::PcObjType>::type_code(),
                    0,
                )?;
                <Self as $crate::PcObjType>::init_at(dst, doff)?;
                let mut __o: u32 = 0;
                $(
                    <$t as $crate::PcValue>::deep_copy_stored(src, soff + __o, dst, doff + __o)?;
                    __o += $crate::traits::stored_footprint::<$t>();
                )+
                let _ = __o;
                Ok(doff)
            }

            fn drop_obj(b: &$crate::BlockRef, off: u32) {
                let mut __o: u32 = 0;
                $(
                    <$t as $crate::PcValue>::drop_stored(b, off + __o);
                    __o += $crate::traits::stored_footprint::<$t>();
                )+
                let _ = __o;
            }

            fn make_view(h: &$crate::Handle<Self>) -> $view<'_> {
                $view { h }
            }
        }

        $crate::pc_object!(@methods $view ; 0u32 ; $( ($get, $set): $t ),+ );
    };

    (@methods $view:ident ; $off:expr ; ($get:ident, $set:ident): $t:ty $(, $($rest:tt)*)? ) => {
        impl<'a> $view<'a> {
            /// Reads the field (for handle fields: bumps the refcount and
            /// returns a live handle).
            #[inline]
            pub fn $get(&self) -> $t {
                <$t as $crate::PcValue>::load(self.h.block(), self.h.offset() + ($off))
            }

            /// Overwrites the field, releasing whatever it referenced.
            /// Handle stores obey the cross-block deep-copy rule.
            #[inline]
            pub fn $set(&self, v: $t) -> $crate::PcResult<()> {
                <$t as $crate::PcValue>::drop_stored(self.h.block(), self.h.offset() + ($off));
                <$t as $crate::PcValue>::store(v, self.h.block(), self.h.offset() + ($off))
            }
        }
        $(
            $crate::pc_object!(@methods $view ;
                ($off) + $crate::traits::stored_footprint::<$t>() ; $($rest)* );
        )?
    };

    (@methods $view:ident ; $off:expr ; ) => {};
}

/// Declares a flat ("simple") PC type: fixed-size plain data copied with a
/// `memmove`, storable directly as container elements and object fields.
///
/// ```
/// use pc_object::{pc_flat, AllocScope, PcVec, make_object};
///
/// pc_flat! {
///     /// A (row, col) coordinate.
///     #[derive(Debug, PartialEq)]
///     pub struct Coord { pub row: i32, pub col: i32 }
/// }
///
/// let _s = AllocScope::new(4096);
/// let v = make_object::<PcVec<Coord>>().unwrap();
/// v.push(Coord { row: 1, col: 2 }).unwrap();
/// assert_eq!(v.get(0), Coord { row: 1, col: 2 });
/// ```
#[macro_export]
macro_rules! pc_flat {
    (
        $(#[$meta:meta])*
        pub struct $name:ident { $( pub $f:ident : $t:ty ),+ $(,)? }
    ) => {
        $(#[$meta])*
        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct $name {
            $( pub $f : $t ),+
        }

        unsafe impl $crate::Flat for $name {
            fn flat_name() -> &'static str {
                stringify!($name)
            }
        }

        impl $crate::PcValue for $name {
            const STORED_SIZE: u32 = std::mem::size_of::<$name>() as u32;
            const CONTAINS_HANDLES: bool = false;

            fn value_tag() -> String {
                stringify!($name).to_string()
            }

            #[inline]
            fn store(self, b: &$crate::BlockRef, at: u32) -> $crate::PcResult<()> {
                b.write(at, self);
                Ok(())
            }

            #[inline]
            fn load(b: &$crate::BlockRef, at: u32) -> Self {
                b.read(at)
            }

            #[inline]
            fn drop_stored(_b: &$crate::BlockRef, _at: u32) {}

            #[inline]
            fn deep_copy_stored(
                src: &$crate::BlockRef,
                sat: u32,
                dst: &$crate::BlockRef,
                dat: u32,
            ) -> $crate::PcResult<()> {
                dst.write(dat, src.read::<$name>(sat));
                Ok(())
            }
        }
    };
}
