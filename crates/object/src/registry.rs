//! The process-wide type registry (§6.3).
//!
//! In PlinyCompute, every class deriving from `Object` is registered with the
//! catalog server by shipping its `.so`; a worker that dereferences a handle
//! whose type it has never seen fetches the library, calls `getVTablePtr()`,
//! and caches the result. Here the registry maps each **type code** (a stable
//! hash of the type name) to a [`TypeVTable`] holding the function pointers
//! the engine needs for dynamic behaviour: deep copy and drop. The worker
//! catalogs in `pc-storage` layer the fetch-on-miss simulation over this.

use crate::block::BlockRef;
use crate::error::{PcError, PcResult};
use crate::traits::PcObjType;
use parking_lot::RwLock;
use std::any::TypeId;
use std::collections::HashMap;
use std::sync::OnceLock;

/// A stable identifier for a registered PC object type.
///
/// Type codes are minted from the FNV-1a hash of the type name, so the same
/// class registers under the same code on every "machine" — a property the
/// paper needs so that pages written by one node resolve on another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeCode(pub u32);

impl TypeCode {
    /// Mints the code for a type name. Never zero (zero marks null handles).
    pub fn of(name: &str) -> TypeCode {
        let h = crate::hash::fnv1a(name.as_bytes());
        let code = ((h >> 32) as u32) ^ (h as u32);
        TypeCode(if code == 0 { 1 } else { code })
    }
}

/// The dynamic behaviour of a registered type: what PC obtains from a
/// class's `.so` via `getVTablePtr()`.
pub struct TypeVTable {
    pub name: String,
    pub code: TypeCode,
    pub var_size: bool,
    pub deep_copy: fn(&BlockRef, u32, &BlockRef) -> PcResult<u32>,
    pub drop_obj: fn(&BlockRef, u32),
}

struct Registry {
    by_code: HashMap<TypeCode, &'static TypeVTable>,
    code_cache: HashMap<TypeId, TypeCode>,
}

fn registry() -> &'static RwLock<Registry> {
    static REG: OnceLock<RwLock<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        RwLock::new(Registry {
            by_code: HashMap::new(),
            code_cache: HashMap::new(),
        })
    })
}

/// Computes (and caches per `TypeId`) the type code for `T`.
pub fn cached_code<T: PcObjType + ?Sized + 'static>() -> TypeCode {
    let id = TypeId::of::<T>();
    if let Some(code) = registry().read().code_cache.get(&id) {
        return *code;
    }
    let code = TypeCode::of(&T::type_name());
    registry().write().code_cache.insert(id, code);
    code
}

/// Registers `T`'s vtable if not yet present. Detects name/code collisions.
pub fn register_type<T: PcObjType>() {
    let code = T::type_code();
    {
        let r = registry().read();
        if r.by_code.contains_key(&code) {
            return;
        }
    }
    let name = T::type_name();
    let vt: &'static TypeVTable = Box::leak(Box::new(TypeVTable {
        name: name.clone(),
        code,
        var_size: T::VAR_SIZE,
        deep_copy: T::deep_copy_obj,
        drop_obj: T::drop_obj,
    }));
    let mut r = registry().write();
    if let Some(existing) = r.by_code.get(&code) {
        assert_eq!(
            existing.name, name,
            "type code collision: {:?} minted for both {} and {}",
            code, existing.name, name
        );
        return;
    }
    r.by_code.insert(code, vt);
}

/// Looks up a vtable by type code (`None` = the "missing .so" case).
pub fn lookup_vtable(code: TypeCode) -> Option<&'static TypeVTable> {
    registry().read().by_code.get(&code).copied()
}

/// Like [`lookup_vtable`] but returns a catalog error.
pub fn require_vtable(code: TypeCode) -> PcResult<&'static TypeVTable> {
    lookup_vtable(code).ok_or(PcError::TypeNotRegistered(code.0))
}

/// All registered type names (catalog listing, for diagnostics and the
/// cluster bootstrap that pre-registers workload types on every worker).
pub fn registered_types() -> Vec<(TypeCode, String)> {
    registry()
        .read()
        .by_code
        .iter()
        .map(|(c, v)| (*c, v.name.clone()))
        .collect()
}

/// Ensures the built-in container types used by the engine internals are
/// registered (`PcString`, raw arrays are headerless, and generic containers
/// register lazily on first use).
pub fn ensure_builtins_registered() {
    crate::containers::PcString::ensure_registered();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_nonzero() {
        let a = TypeCode::of("DataPoint");
        let b = TypeCode::of("DataPoint");
        assert_eq!(a, b);
        assert_ne!(a.0, 0);
        assert_ne!(TypeCode::of("Emp"), TypeCode::of("Dep"));
    }
}
