//! The page-as-a-heap allocation block (§6.1, §6.4, Appendix B).
//!
//! A block is one contiguous, aligned byte buffer. Objects are allocated in
//! place on the block, each preceded by a small header that carries its type
//! code, payload size and reference count. Handles refer to objects by
//! page-relative offset, so the entire block can be moved (to disk, across a
//! thread boundary, through a byte-copying "network") and every handle inside
//! it remains valid.
//!
//! Blocks are **single-thread managed** (§6.5): a [`BlockRef`] is an `Rc` and
//! is deliberately `!Send`, so reference counts never need atomic operations
//! or locks. To cross threads a block is first [sealed](BlockRef::try_seal)
//! into a [`SealedPage`], which re-opens on the far
//! side as an *unmanaged* block (no reference counting — §6.4 type 3).
//!
//! [`SealedPage`]: crate::page::SealedPage

use crate::error::{PcError, PcResult};
use crate::handle::Handle;
use crate::page::{AlignedBuf, SealedPage, PAGE_MAGIC};
use crate::registry::{self, TypeCode};
use crate::traits::PcObjType;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Size of the on-page block header: `{magic, used, root, reserved}`.
pub const BLOCK_HEADER_SIZE: u32 = 16;
/// Size of the per-object header: `{type_code, size, refcount, flags, chunk, pad}`.
pub const OBJ_HEADER_SIZE: u32 = 24;
/// All allocations are 8-byte aligned.
pub const ALIGN: u32 = 8;

/// Number of size-class free lists (bucket `i` holds chunks with
/// `floor(log2(size)) == i`, following Appendix B's "bucket log2(n)" scheme).
const N_BUCKETS: usize = 33;

// Object flag bits.
pub(crate) const FLAG_NO_REFCOUNT: u32 = 1;
pub(crate) const FLAG_UNIQUE: u32 = 2;
pub(crate) const FLAG_VAR_SIZE: u32 = 4;
pub(crate) const FLAG_FREED: u32 = 8;

/// Block-level allocation policy (Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// Freed space is pooled in per-size-class free lists and reused
    /// (the default policy).
    #[default]
    LightweightReuse,
    /// Freed space is never reused: classic region allocation. Fastest, but
    /// temporaries leak space until the whole block is recycled.
    NoReuse,
    /// Layered on lightweight reuse: fixed-length objects are kept on a
    /// per-type recycle list and handed back verbatim on the next
    /// default-construction of the same type. Variable-length objects are
    /// never recycled (they fall back to lightweight reuse).
    Recycling,
}

/// Per-object allocation policy (Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObjectPolicy {
    /// Full reference counting (the default).
    #[default]
    RefCounted,
    /// The object is not reference counted and is only reclaimed when the
    /// whole block goes away: pure region allocation for this object.
    NoRefCount,
    /// Exactly one handle may reference the object; when that handle drops
    /// the object is freed. Cloning such a handle panics.
    Unique,
}

/// Counters describing a block's allocation behaviour; used by tests and the
/// benchmark harness to verify policy semantics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    pub capacity: usize,
    pub used: usize,
    pub active_objects: u32,
    pub allocations: u64,
    pub frees: u64,
    pub freelist_hits: u64,
    pub recycle_hits: u64,
    pub deep_copies: u64,
}

/// Backing storage for a block: owned while managed, shared for read views
/// of sealed pages.
enum BufStorage {
    Owned(AlignedBuf),
    Shared(std::sync::Arc<AlignedBuf>),
}

impl BufStorage {
    #[inline]
    fn ptr(&self) -> *mut u8 {
        match self {
            BufStorage::Owned(b) => b.ptr(),
            BufStorage::Shared(b) => b.ptr(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            BufStorage::Owned(b) => b.len(),
            BufStorage::Shared(b) => b.len(),
        }
    }
}

struct RawBlock {
    buf: BufStorage,
    used: u32,
    root: u32,
    policy: AllocPolicy,
    managed: bool,
    active_objects: u32,
    freelists: [u32; N_BUCKETS],
    recycle: HashMap<TypeCode, u32>,
    allocations: u64,
    frees: u64,
    freelist_hits: u64,
    recycle_hits: u64,
    deep_copies: u64,
}

/// One allocation block; always used through [`BlockRef`].
pub struct Block {
    inner: UnsafeCell<RawBlock>,
    id: u64,
}

/// Shared reference to an allocation block.
///
/// Cloning a `BlockRef` is cheap (an `Rc` clone). A block stays alive while
/// any `BlockRef` or [`Handle`] into it exists, which gives
/// the paper's "inactive, managed block" lifetime for free.
#[derive(Clone)]
pub struct BlockRef(pub(crate) Rc<Block>);

fn next_block_id() -> u64 {
    use std::cell::Cell;
    thread_local! { static NEXT: Cell<u64> = const { Cell::new(1) }; }
    // Thread id in the high bits keeps ids unique across threads.
    let tid = crate::hash::fnv1a(format!("{:?}", std::thread::current().id()).as_bytes());
    NEXT.with(|n| {
        let v = n.get();
        n.set(v + 1);
        (tid << 32) ^ v
    })
}

#[inline]
fn align_up(v: u32, a: u32) -> u32 {
    (v + a - 1) & !(a - 1)
}

#[inline]
fn bucket_of(size: u32) -> usize {
    (31 - size.max(1).leading_zeros()) as usize
}

impl BlockRef {
    /// Creates a managed block with `capacity` bytes of heap.
    pub fn new(capacity: usize, policy: AllocPolicy) -> Self {
        let capacity = capacity.max((BLOCK_HEADER_SIZE + OBJ_HEADER_SIZE) as usize);
        assert!(
            capacity < u32::MAX as usize,
            "block capacity must fit in u32"
        );
        let buf = AlignedBuf::zeroed(capacity);
        let raw = RawBlock {
            buf: BufStorage::Owned(buf),
            used: BLOCK_HEADER_SIZE,
            root: 0,
            policy,
            managed: true,
            active_objects: 0,
            freelists: [0; N_BUCKETS],
            recycle: HashMap::new(),
            allocations: 0,
            frees: 0,
            freelist_hits: 0,
            recycle_hits: 0,
            deep_copies: 0,
        };
        let b = BlockRef(Rc::new(Block {
            inner: UnsafeCell::new(raw),
            id: next_block_id(),
        }));
        b.write_u32(0, PAGE_MAGIC);
        b
    }

    /// Re-opens a sealed page as an *unmanaged* block: objects on it are not
    /// reference counted and are never individually freed (§6.4 type 3).
    /// The buffer is shared with the sealed page (and possibly other views).
    pub(crate) fn from_shared(buf: std::sync::Arc<AlignedBuf>, used: u32, root: u32) -> Self {
        let raw = RawBlock {
            buf: BufStorage::Shared(buf),
            used,
            root,
            policy: AllocPolicy::NoReuse,
            managed: false,
            active_objects: 0,
            freelists: [0; N_BUCKETS],
            recycle: HashMap::new(),
            allocations: 0,
            frees: 0,
            freelist_hits: 0,
            recycle_hits: 0,
            deep_copies: 0,
        };
        BlockRef(Rc::new(Block {
            inner: UnsafeCell::new(raw),
            id: next_block_id(),
        }))
    }

    #[inline]
    fn raw(&self) -> *mut RawBlock {
        self.0.inner.get()
    }

    #[inline]
    fn base(&self) -> *mut u8 {
        unsafe { (*self.raw()).buf.ptr() }
    }

    /// A per-process unique id, used to detect cross-block handle stores.
    #[inline]
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// Two refs are the same block iff they share the `Rc`.
    #[inline]
    pub fn same_block(&self, other: &BlockRef) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }

    #[inline]
    pub fn is_managed(&self) -> bool {
        unsafe { (*self.raw()).managed }
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        unsafe { (*self.raw()).buf.len() }
    }

    #[inline]
    pub fn used(&self) -> usize {
        unsafe { (*self.raw()).used as usize }
    }

    /// Bytes still available for bump allocation (free-list space excluded).
    #[inline]
    pub fn bump_free(&self) -> usize {
        self.capacity() - self.used()
    }

    pub fn stats(&self) -> BlockStats {
        let r = self.raw();
        unsafe {
            BlockStats {
                capacity: (*r).buf.len(),
                used: (*r).used as usize,
                active_objects: (*r).active_objects,
                allocations: (*r).allocations,
                frees: (*r).frees,
                freelist_hits: (*r).freelist_hits,
                recycle_hits: (*r).recycle_hits,
                deep_copies: (*r).deep_copies,
            }
        }
    }

    pub(crate) fn note_deep_copy(&self) {
        unsafe { (*self.raw()).deep_copies += 1 }
    }

    // ---------------------------------------------------------------- raw io

    /// Reads a `Copy` value at byte offset `off`.
    #[inline]
    pub fn read<T: Copy>(&self, off: u32) -> T {
        debug_assert!(off as usize + std::mem::size_of::<T>() <= self.capacity());
        unsafe { std::ptr::read_unaligned(self.base().add(off as usize) as *const T) }
    }

    /// Writes a `Copy` value at byte offset `off`.
    #[inline]
    pub fn write<T: Copy>(&self, off: u32, v: T) {
        debug_assert!(off as usize + std::mem::size_of::<T>() <= self.capacity());
        unsafe { std::ptr::write_unaligned(self.base().add(off as usize) as *mut T, v) }
    }

    #[inline]
    pub fn read_u32(&self, off: u32) -> u32 {
        self.read::<u32>(off)
    }

    #[inline]
    pub fn write_u32(&self, off: u32, v: u32) {
        self.write::<u32>(off, v)
    }

    /// Borrow `len` bytes starting at `off`.
    ///
    /// The returned slice aliases page memory; callers must not grow or free
    /// objects on this block while holding it (standard single-threaded
    /// discipline — the engine only holds such slices within one pipeline
    /// stage invocation).
    #[inline]
    pub fn bytes(&self, off: u32, len: usize) -> &[u8] {
        debug_assert!(off as usize + len <= self.capacity());
        unsafe { std::slice::from_raw_parts(self.base().add(off as usize), len) }
    }

    /// Copies bytes into page memory.
    #[inline]
    pub fn write_bytes(&self, off: u32, src: &[u8]) {
        debug_assert!(off as usize + src.len() <= self.capacity());
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.base().add(off as usize), src.len())
        }
    }

    /// Zeroes `len` bytes at `off` (recycled chunks are dirty; containers
    /// zero their tables before use).
    #[inline]
    pub fn zero_range(&self, off: u32, len: usize) {
        debug_assert!(off as usize + len <= self.capacity());
        unsafe { std::ptr::write_bytes(self.base().add(off as usize), 0, len) }
    }

    /// Copies `len` bytes from offset `src` to offset `dst` within the block.
    #[inline]
    pub fn copy_within(&self, src: u32, dst: u32, len: usize) {
        debug_assert!(src as usize + len <= self.capacity());
        debug_assert!(dst as usize + len <= self.capacity());
        unsafe {
            std::ptr::copy(
                self.base().add(src as usize),
                self.base().add(dst as usize),
                len,
            )
        }
    }

    /// Zero-copy view of `len` `f64`s at `off` (8-aligned by construction).
    #[inline]
    pub fn slice_f64(&self, off: u32, len: usize) -> &[f64] {
        debug_assert_eq!(off % 8, 0, "f64 view must be 8-aligned");
        debug_assert!(off as usize + len * 8 <= self.capacity());
        unsafe { std::slice::from_raw_parts(self.base().add(off as usize) as *const f64, len) }
    }

    /// Zero-copy view of `len` `i64`s at `off`.
    #[inline]
    pub fn slice_i64(&self, off: u32, len: usize) -> &[i64] {
        debug_assert_eq!(off % 8, 0, "i64 view must be 8-aligned");
        debug_assert!(off as usize + len * 8 <= self.capacity());
        unsafe { std::slice::from_raw_parts(self.base().add(off as usize) as *const i64, len) }
    }

    /// Mutable zero-copy view of `len` `f64`s at `off`. Callers must ensure
    /// no other view of the same range is alive (single-threaded engine
    /// discipline; kernels use this for in-place numeric work, mirroring
    /// lilLinAlg's `c_ptr()` trick in §8.3.1).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub fn slice_f64_mut(&self, off: u32, len: usize) -> &mut [f64] {
        debug_assert_eq!(off % 8, 0, "f64 view must be 8-aligned");
        debug_assert!(off as usize + len * 8 <= self.capacity());
        unsafe { std::slice::from_raw_parts_mut(self.base().add(off as usize) as *mut f64, len) }
    }

    // ------------------------------------------------------------ obj header
    //
    // Header layout (offsets relative to payload start - 24):
    //   +0  type_code   +4 payload size   +8 refcount   +12 flags
    //   +16 chunk size (total bytes incl. header)        +20 pad

    #[inline]
    pub fn obj_code(&self, off: u32) -> TypeCode {
        TypeCode(self.read_u32(off - 24))
    }

    #[inline]
    pub fn obj_size(&self, off: u32) -> u32 {
        self.read_u32(off - 20)
    }

    #[inline]
    #[allow(dead_code)]
    pub(crate) fn set_obj_size(&self, off: u32, size: u32) {
        self.write_u32(off - 20, size)
    }

    #[inline]
    pub fn obj_rc(&self, off: u32) -> u32 {
        self.read_u32(off - 16)
    }

    #[inline]
    pub fn obj_flags(&self, off: u32) -> u32 {
        self.read_u32(off - 12)
    }

    #[inline]
    fn obj_chunk(&self, off: u32) -> u32 {
        self.read_u32(off - 8)
    }

    /// Number of objects on this block reachable from some handle.
    #[inline]
    pub fn active_objects(&self) -> u32 {
        unsafe { (*self.raw()).active_objects }
    }

    // ------------------------------------------------------------ allocation

    /// Allocates `payload` bytes with an object header. Returns the payload
    /// offset. The object starts with refcount 0; callers immediately wrap it
    /// in a handle or stored reference.
    pub fn alloc(&self, payload: u32, code: TypeCode, flags: u32) -> PcResult<u32> {
        let total = OBJ_HEADER_SIZE + align_up(payload.max(1), ALIGN);
        let r = self.raw();
        unsafe {
            // Recycling policy: exact-type reuse for fixed-size objects.
            if (*r).policy == AllocPolicy::Recycling && flags & FLAG_VAR_SIZE == 0 {
                if let Some(head) = (*r).recycle.get(&code).copied() {
                    if head != 0 {
                        let next = self.read_u32(head);
                        (*r).recycle.insert(code, next);
                        (*r).recycle_hits += 1;
                        (*r).allocations += 1;
                        // head points at the chunk start; its total size was
                        // stashed at +4 when it was freed. Rebuild the header.
                        let chunk = self.read_u32(head + 4);
                        return Ok(self.init_header(head, payload, code, flags, chunk));
                    }
                }
            }
            // Lightweight reuse: scan the size-class free lists.
            if (*r).policy != AllocPolicy::NoReuse {
                let start = bucket_of(total);
                for b in start..N_BUCKETS {
                    let head = (*r).freelists[b];
                    if head != 0 {
                        let chunk_size = self.read_u32(head + 4);
                        if chunk_size >= total {
                            let next = self.read_u32(head);
                            (*r).freelists[b] = next;
                            (*r).freelist_hits += 1;
                            (*r).allocations += 1;
                            return Ok(self.init_header(head, payload, code, flags, chunk_size));
                        }
                        // Head chunk too small for this bucket's request;
                        // try the next bucket rather than scanning the list.
                    }
                }
            }
            // Bump allocation.
            let used = (*r).used;
            let cap = (*r).buf.len() as u32;
            if used + total > cap {
                return Err(PcError::BlockFull {
                    needed: total as usize,
                    free: (cap - used) as usize,
                });
            }
            (*r).used = used + total;
            (*r).allocations += 1;
            Ok(self.init_header(used, payload, code, flags, total))
        }
    }

    fn init_header(
        &self,
        chunk_start: u32,
        payload: u32,
        code: TypeCode,
        flags: u32,
        chunk: u32,
    ) -> u32 {
        let off = chunk_start + OBJ_HEADER_SIZE;
        self.write_u32(off - 24, code.0);
        self.write_u32(off - 20, payload);
        self.write_u32(off - 16, 0); // refcount
        self.write_u32(off - 12, flags);
        self.write_u32(off - 8, chunk);
        self.write_u32(off - 4, 0);
        off
    }

    /// Returns an object's space to the allocator according to the block
    /// policy. Does NOT run the type's drop logic — callers do that first.
    pub(crate) fn free_object(&self, off: u32) {
        let r = self.raw();
        unsafe {
            debug_assert_eq!(self.obj_flags(off) & FLAG_FREED, 0, "double free at {off}");
            self.write_u32(off - 12, self.obj_flags(off) | FLAG_FREED);
            (*r).frees += 1;
            let chunk_start = off - OBJ_HEADER_SIZE;
            let chunk = self.obj_chunk(off);
            match (*r).policy {
                AllocPolicy::NoReuse => {}
                AllocPolicy::Recycling if self.obj_flags(off) & FLAG_VAR_SIZE == 0 => {
                    let code = self.obj_code(off);
                    let head = (*r).recycle.get(&code).copied().unwrap_or(0);
                    self.write_u32(chunk_start, head);
                    // keep the chunk size retrievable after reuse
                    self.write_u32(chunk_start + 4, chunk);
                    (*r).recycle.insert(code, chunk_start);
                }
                _ => {
                    let b = bucket_of(chunk);
                    let head = (*r).freelists[b];
                    self.write_u32(chunk_start, head);
                    self.write_u32(chunk_start + 4, chunk);
                    (*r).freelists[b] = chunk_start;
                }
            }
        }
    }

    // --------------------------------------------------------- ref counting

    /// Increments an object's reference count (no-op on unmanaged blocks and
    /// no-refcount objects). Panics on unique objects: they cannot gain refs.
    pub fn inc_ref(&self, off: u32) {
        if off == 0 || !self.is_managed() {
            return;
        }
        let flags = self.obj_flags(off);
        if flags & FLAG_NO_REFCOUNT != 0 {
            return;
        }
        if flags & FLAG_UNIQUE != 0 && self.obj_rc(off) >= 1 {
            panic!("cannot create a second reference to a uniquely-owned PC object");
        }
        let rc = self.obj_rc(off);
        self.write_u32(off - 16, rc + 1);
        if rc == 0 {
            unsafe { (*self.raw()).active_objects += 1 }
        }
    }

    /// Decrements an object's reference count; at zero, runs the registered
    /// type's drop logic (releasing child references) and frees the space.
    pub fn dec_ref(&self, off: u32) {
        if off == 0 || !self.is_managed() {
            return;
        }
        let flags = self.obj_flags(off);
        if flags & (FLAG_NO_REFCOUNT | FLAG_FREED) != 0 {
            return;
        }
        let rc = self.obj_rc(off);
        debug_assert!(rc > 0, "refcount underflow at offset {off}");
        self.write_u32(off - 16, rc - 1);
        if rc == 1 {
            unsafe { (*self.raw()).active_objects -= 1 }
            let code = self.obj_code(off);
            if let Some(vt) = registry::lookup_vtable(code) {
                (vt.drop_obj)(self, off);
            }
            self.free_object(off);
        }
    }

    // ----------------------------------------------------------- object API

    /// Allocates and default-initializes a `T`, returning its handle.
    pub fn make_object<T: PcObjType>(&self) -> PcResult<Handle<T>> {
        self.make_object_with_policy(ObjectPolicy::RefCounted)
    }

    /// Allocates a `T` with a per-object policy (Appendix B).
    pub fn make_object_with_policy<T: PcObjType>(
        &self,
        policy: ObjectPolicy,
    ) -> PcResult<Handle<T>> {
        T::ensure_registered();
        let flags = match policy {
            ObjectPolicy::RefCounted => 0,
            ObjectPolicy::NoRefCount => FLAG_NO_REFCOUNT,
            ObjectPolicy::Unique => FLAG_UNIQUE,
        };
        let flags = flags | if T::VAR_SIZE { FLAG_VAR_SIZE } else { 0 };
        let off = self.alloc(T::init_size(), T::type_code(), flags)?;
        T::init_at(self, off)?;
        Ok(Handle::adopt(self.clone(), off))
    }

    // ------------------------------------------------------------- sealing

    /// Marks `root` as the block's root object — the entry point a receiver
    /// uses after the page is shipped (the paper's `sendData` transfers the
    /// occupied portion of the block; the root is how the other side finds
    /// the `Vector` of records on it).
    ///
    /// The root slot acts as a stored reference: it keeps the root object
    /// alive even after every user handle to it is dropped, which is exactly
    /// the state a filled output page is in right before it is sealed.
    pub fn set_root<T: PcObjType>(&self, root: &Handle<T>) {
        assert!(
            self.same_block(root.block()),
            "root must live on this block"
        );
        let old = self.root_offset();
        self.inc_ref(root.offset());
        if old != 0 {
            self.dec_ref(old);
        }
        unsafe { (*self.raw()).root = root.offset() }
    }

    pub(crate) fn root_offset(&self) -> u32 {
        unsafe { (*self.raw()).root }
    }

    /// A typed handle to the block's root object.
    pub fn root_handle<T: PcObjType>(&self) -> PcResult<Handle<T>> {
        let off = self.root_offset();
        if off == 0 {
            return Err(PcError::NoRoot);
        }
        let code = self.obj_code(off);
        if code != T::type_code() {
            return Err(PcError::TypeMismatch {
                expected: Box::leak(T::type_name().into_boxed_str()),
                found: code.0,
            });
        }
        Ok(Handle::from_stored(self.clone(), off))
    }

    /// Seals the block into a [`SealedPage`]: a `Send`, byte-movable page.
    ///
    /// Fails with [`PcError::BlockShared`] if other `BlockRef`s or `Handle`s
    /// still reference the block, and [`PcError::NoRoot`] if no root was set.
    pub fn try_seal(self) -> PcResult<SealedPage> {
        if self.root_offset() == 0 {
            return Err(PcError::NoRoot);
        }
        let block = Rc::try_unwrap(self.0).map_err(|_| PcError::BlockShared)?;
        let raw = block.inner.into_inner();
        let (used, root) = (raw.used, raw.root);
        match raw.buf {
            BufStorage::Owned(buf) => Ok(SealedPage::from_parts(buf, used, root)),
            BufStorage::Shared(_) => Err(PcError::InvalidPage(
                "cannot re-seal a shared page view".into(),
            )),
        }
    }
}

impl std::fmt::Debug for BlockRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockRef")
            .field("id", &self.id())
            .field("used", &self.used())
            .field("capacity", &self.capacity())
            .field("managed", &self.is_managed())
            .field("active_objects", &self.active_objects())
            .finish()
    }
}

/// RAII guard installing a fresh active allocation block for the current
/// thread and restoring the previous one on drop.
///
/// ```
/// use pc_object::{AllocScope, PcVec, make_object};
/// let scope = AllocScope::new(64 * 1024);
/// let v = make_object::<PcVec<i64>>().unwrap();
/// v.push(7).unwrap();
/// drop(scope); // previous active block (if any) is restored
/// assert_eq!(v.get(0), 7); // the block lives on while `v` references it
/// ```
pub struct AllocScope {
    block: BlockRef,
}

impl AllocScope {
    /// Creates a new block of `size` bytes and pushes it as active.
    pub fn new(size: usize) -> Self {
        Self::with_policy(size, AllocPolicy::LightweightReuse)
    }

    /// Creates a new block with an explicit allocation policy.
    pub fn with_policy(size: usize, policy: AllocPolicy) -> Self {
        let block = BlockRef::new(size, policy);
        crate::push_active_block(block.clone());
        AllocScope { block }
    }

    /// Installs an existing block as the active one.
    pub fn install(block: BlockRef) -> Self {
        crate::push_active_block(block.clone());
        AllocScope { block }
    }

    /// The scope's block.
    pub fn block(&self) -> &BlockRef {
        &self.block
    }
}

impl Drop for AllocScope {
    fn drop(&mut self) {
        let popped = crate::pop_active_block();
        debug_assert!(
            popped.map(|b| b.same_block(&self.block)).unwrap_or(false),
            "AllocScope dropped out of order"
        );
    }
}
