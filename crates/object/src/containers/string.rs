//! `PcString`: the page-resident string (PC's `String`).
//!
//! Strings are variable-length objects: `{ len: u32, bytes... }` inline in
//! the allocation. As §8.4.3 notes, PC strings are deliberately compact —
//! no cached hash value — so hashing and comparison always walk the bytes.

use crate::block::{BlockRef, FLAG_VAR_SIZE};
use crate::error::PcResult;
use crate::handle::Handle;
use crate::registry::TypeCode;
use crate::traits::{PcKey, PcObjType};

/// A page-resident immutable string.
///
/// ```
/// use pc_object::{AllocScope, PcString};
/// let _s = AllocScope::new(4096);
/// let name = PcString::make("ACME Corp").unwrap();
/// assert_eq!(name.as_str(), "ACME Corp");
/// ```
pub struct PcString(());

impl PcString {
    /// Allocates a string on the active block.
    pub fn make(s: &str) -> PcResult<Handle<PcString>> {
        let block = crate::current_block().ok_or(crate::error::PcError::NoActiveBlock)?;
        Self::make_on(&block, s)
    }

    /// Allocates a string on a specific block.
    pub fn make_on(block: &BlockRef, s: &str) -> PcResult<Handle<PcString>> {
        Self::ensure_registered();
        let payload = 4 + s.len() as u32;
        let off = block.alloc(payload, Self::type_code(), FLAG_VAR_SIZE)?;
        block.write_u32(off, s.len() as u32);
        block.write_bytes(off + 4, s.as_bytes());
        Ok(Handle::adopt(block.clone(), off))
    }
}

impl PcObjType for PcString {
    type View<'a> = &'a Handle<PcString>;

    const VAR_SIZE: bool = true;

    fn type_name() -> String {
        "PcString".to_string()
    }

    fn type_code() -> TypeCode {
        // Fixed well-known code so every worker resolves strings identically.
        TypeCode(0x5043_5354) // "PCST"
    }

    fn init_size() -> u32 {
        4
    }

    fn init_at(b: &BlockRef, off: u32) -> PcResult<()> {
        b.write_u32(off, 0);
        Ok(())
    }

    fn deep_copy_obj(src: &BlockRef, soff: u32, dst: &BlockRef) -> PcResult<u32> {
        let len = src.read_u32(soff);
        let off = dst.alloc(4 + len, Self::type_code(), FLAG_VAR_SIZE)?;
        dst.write_u32(off, len);
        dst.write_bytes(off + 4, src.bytes(soff + 4, len as usize));
        Ok(off)
    }

    fn drop_obj(_b: &BlockRef, _off: u32) {}

    fn make_view(h: &Handle<Self>) -> Self::View<'_> {
        h
    }
}

impl Handle<PcString> {
    /// Byte length of the string.
    #[inline]
    pub fn str_len(&self) -> usize {
        self.block().read_u32(self.offset()) as usize
    }

    /// The raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        self.block().bytes(self.offset() + 4, self.str_len())
    }

    /// The string contents. Panics if the page bytes are not valid UTF-8
    /// (possible only with a corrupted page).
    #[inline]
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(self.as_bytes()).expect("PcString holds invalid UTF-8")
    }

    /// Hash of the contents (computed on the fly — never cached, §8.4.3).
    #[inline]
    pub fn hash_bytes(&self) -> u64 {
        crate::hash::fnv1a(self.as_bytes())
    }
}

impl PcKey for Handle<PcString> {
    fn hash_val(&self) -> u64 {
        self.hash_bytes()
    }

    fn eq_stored(&self, b: &BlockRef, at: u32) -> bool {
        let (off, _) = b.read::<(u32, u32)>(at);
        if off == 0 {
            return false;
        }
        let len = b.read_u32(off) as usize;
        b.bytes(off + 4, len) == self.as_bytes()
    }

    fn stored_eq(a: &BlockRef, aat: u32, b: &BlockRef, bat: u32) -> bool {
        let (aoff, _) = a.read::<(u32, u32)>(aat);
        let (boff, _) = b.read::<(u32, u32)>(bat);
        if aoff == 0 || boff == 0 {
            return aoff == boff;
        }
        let alen = a.read_u32(aoff) as usize;
        let blen = b.read_u32(boff) as usize;
        alen == blen && a.bytes(aoff + 4, alen) == b.bytes(boff + 4, blen)
    }
}

impl PartialEq for Handle<PcString> {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Handle<PcString> {}
