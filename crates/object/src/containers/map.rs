//! `PcMap<K, V>`: the page-resident hash map (PC's `Map`).
//!
//! This is the container at the heart of PC's distributed aggregation
//! (§3, Appendix D.2): each worker thread pre-aggregates into `Map` objects
//! allocated on output pages, the pages are shuffled wholesale, and the
//! receiving side merges the maps — with zero serialization at any point.

use super::{alloc_array, free_array};
use crate::block::BlockRef;
use crate::error::PcResult;
use crate::handle::Handle;
use crate::traits::{stored_footprint, PcKey, PcObjType, PcValue};
use std::marker::PhantomData;

/// Open-addressing hash map stored on a page.
///
/// Payload layout: `{ len: u32, cap: u32, table: u32 }`; the table is a raw
/// array of `cap` entries, each `{ hash: u64 (MSB = occupied), key slot,
/// value slot }`, linear probed, grown at 70% load.
///
/// ```
/// use pc_object::{AllocScope, PcMap, make_object};
/// let _s = AllocScope::new(1 << 16);
/// let m = make_object::<PcMap<i64, f64>>().unwrap();
/// m.insert(3, 1.5).unwrap();
/// m.insert(3, 2.5).unwrap();
/// assert_eq!(m.get(&3), Some(2.5));
/// assert_eq!(m.len(), 1);
/// ```
pub struct PcMap<K: PcKey, V: PcValue>(PhantomData<fn() -> (K, V)>);

const OFF_LEN: u32 = 0;
const OFF_CAP: u32 = 4;
const OFF_TABLE: u32 = 8;

const OCCUPIED: u64 = 1 << 63;

#[inline]
fn entry_stride<K: PcKey, V: PcValue>() -> u32 {
    8 + stored_footprint::<K>() + stored_footprint::<V>()
}

impl<K: PcKey, V: PcValue> PcObjType for PcMap<K, V> {
    type View<'a>
        = &'a Handle<PcMap<K, V>>
    where
        K: 'a,
        V: 'a;

    fn type_name() -> String {
        format!("PcMap<{},{}>", K::value_tag(), V::value_tag())
    }

    fn init_size() -> u32 {
        12
    }

    fn init_at(b: &BlockRef, off: u32) -> PcResult<()> {
        b.zero_range(off, 12);
        Ok(())
    }

    fn deep_copy_obj(src: &BlockRef, soff: u32, dst: &BlockRef) -> PcResult<u32> {
        let cap = src.read_u32(soff + OFF_CAP);
        let stable = src.read_u32(soff + OFF_TABLE);
        let stride = entry_stride::<K, V>();
        let doff = dst.alloc(12, Self::type_code(), 0)?;
        Self::init_at(dst, doff)?;
        if cap == 0 {
            return Ok(doff);
        }
        let dtable = alloc_array(dst, cap * stride)?;
        for i in 0..cap {
            let se = stable + i * stride;
            let h = src.read::<u64>(se);
            if h & OCCUPIED != 0 {
                let de = dtable + i * stride;
                dst.write::<u64>(de, h);
                K::deep_copy_stored(src, se + 8, dst, de + 8)?;
                V::deep_copy_stored(
                    src,
                    se + 8 + stored_footprint::<K>(),
                    dst,
                    de + 8 + stored_footprint::<K>(),
                )?;
            }
        }
        dst.write_u32(doff + OFF_LEN, src.read_u32(soff + OFF_LEN));
        dst.write_u32(doff + OFF_CAP, cap);
        dst.write_u32(doff + OFF_TABLE, dtable);
        Ok(doff)
    }

    fn drop_obj(b: &BlockRef, off: u32) {
        let cap = b.read_u32(off + OFF_CAP);
        let table = b.read_u32(off + OFF_TABLE);
        if table == 0 {
            return;
        }
        let stride = entry_stride::<K, V>();
        if K::CONTAINS_HANDLES || V::CONTAINS_HANDLES {
            for i in 0..cap {
                let e = table + i * stride;
                if b.read::<u64>(e) & OCCUPIED != 0 {
                    K::drop_stored(b, e + 8);
                    V::drop_stored(b, e + 8 + stored_footprint::<K>());
                }
            }
        }
        free_array(b, table);
    }

    fn make_view(h: &Handle<Self>) -> Self::View<'_> {
        h
    }
}

impl<K: PcKey, V: PcValue> Handle<PcMap<K, V>> {
    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.block().read_u32(self.offset() + OFF_LEN) as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Table capacity in entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.block().read_u32(self.offset() + OFF_CAP) as usize
    }

    #[inline]
    fn table(&self) -> u32 {
        self.block().read_u32(self.offset() + OFF_TABLE)
    }

    #[inline]
    fn entry(&self, i: u32) -> u32 {
        self.table() + i * entry_stride::<K, V>()
    }

    /// Byte offset of an entry's key slot.
    #[inline]
    fn key_slot(e: u32) -> u32 {
        e + 8
    }

    /// Byte offset of an entry's value slot.
    #[inline]
    fn val_slot(e: u32) -> u32 {
        e + 8 + stored_footprint::<K>()
    }

    /// Finds the entry for `key`: returns `(entry_offset, occupied)`. The
    /// returned offset is the match when occupied, or the insertion point.
    fn probe(&self, h: u64, key: &K) -> (u32, bool) {
        let cap = self.capacity() as u32;
        debug_assert!(cap > 0);
        let marked = h | OCCUPIED;
        let b = self.block();
        let mut i = (h % cap as u64) as u32;
        loop {
            let e = self.entry(i);
            let stored = b.read::<u64>(e);
            if stored == 0 {
                return (e, false);
            }
            if stored == marked && key.eq_stored(b, Self::key_slot(e)) {
                return (e, true);
            }
            i += 1;
            if i == cap {
                i = 0;
            }
        }
    }

    fn grow(&self, want_entries: usize) -> PcResult<()> {
        let old_cap = self.capacity() as u32;
        let new_cap = (want_entries * 2).next_power_of_two().max(8) as u32;
        if new_cap <= old_cap {
            return Ok(());
        }
        let stride = entry_stride::<K, V>();
        let b = self.block();
        let new_table = alloc_array(b, new_cap * stride)?;
        let old_table = self.table();
        // Rehash by stored hash: whole entries move by byte copy — handle
        // slots hold page-relative offsets, so no refcount churn is needed.
        for i in 0..old_cap {
            let e = old_table + i * stride;
            let h = b.read::<u64>(e);
            if h & OCCUPIED == 0 {
                continue;
            }
            let mut j = ((h & !OCCUPIED) % new_cap as u64) as u32;
            loop {
                let ne = new_table + j * stride;
                if b.read::<u64>(ne) == 0 {
                    b.copy_within(e, ne, stride as usize);
                    break;
                }
                j += 1;
                if j == new_cap {
                    j = 0;
                }
            }
        }
        if old_table != 0 {
            free_array(b, old_table);
        }
        b.write_u32(self.offset() + OFF_CAP, new_cap);
        b.write_u32(self.offset() + OFF_TABLE, new_table);
        Ok(())
    }

    fn ensure_room(&self) -> PcResult<()> {
        let len = self.len();
        let cap = self.capacity();
        if cap == 0 || (len + 1) * 10 > cap * 7 {
            self.grow(len + 1)?;
        }
        Ok(())
    }

    /// Inserts or replaces; the old value's references are released.
    pub fn insert(&self, key: K, value: V) -> PcResult<()> {
        self.ensure_room()?;
        let h = key.hash_val() & !OCCUPIED;
        let (e, found) = self.probe(h, &key);
        let b = self.block();
        if found {
            V::drop_stored(b, Self::val_slot(e));
            value.store(b, Self::val_slot(e))?;
        } else {
            // Store key and value BEFORE publishing the slot: a BlockFull
            // fault mid-store must leave the map consistent (a torn entry
            // with garbage slot offsets would read out of bounds later).
            key.store(b, Self::key_slot(e))?;
            value.store(b, Self::val_slot(e))?;
            b.write::<u64>(e, h | OCCUPIED);
            b.write_u32(self.offset() + OFF_LEN, self.len() as u32 + 1);
        }
        Ok(())
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &K) -> Option<V> {
        if self.capacity() == 0 {
            return None;
        }
        let h = key.hash_val() & !OCCUPIED;
        let (e, found) = self.probe(h, key);
        if found {
            Some(V::load(self.block(), Self::val_slot(e)))
        } else {
            None
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        if self.capacity() == 0 {
            return false;
        }
        let h = key.hash_val() & !OCCUPIED;
        self.probe(h, key).1
    }

    /// The aggregation primitive: if `key` is absent, store `init()`;
    /// otherwise call `combine` with the block and the value-slot offset so
    /// the caller can fold in place (this is how PC's `AggregateComp`
    /// accumulates partial aggregates into per-partition maps).
    pub fn upsert(
        &self,
        key: K,
        init: impl FnOnce() -> PcResult<V>,
        combine: impl FnOnce(&BlockRef, u32) -> PcResult<()>,
    ) -> PcResult<()> {
        self.ensure_room()?;
        let h = key.hash_val() & !OCCUPIED;
        let (e, found) = self.probe(h, &key);
        let b = self.block();
        if found {
            combine(b, Self::val_slot(e))
        } else {
            // Publish only after key and value are fully stored (see
            // `insert` for why).
            key.store(b, Self::key_slot(e))?;
            init()?.store(b, Self::val_slot(e))?;
            b.write::<u64>(e, h | OCCUPIED);
            b.write_u32(self.offset() + OFF_LEN, self.len() as u32 + 1);
            Ok(())
        }
    }

    /// Hash-first upsert used by the aggregation engine: probes by a
    /// caller-computed `hash`, comparing stored keys with `matches`; on a
    /// miss the key is materialized by `make_key` (allocating on the map's
    /// own block) and the value by `init`. The slot is only marked occupied
    /// *after* key and value are fully stored, so a `BlockFull` fault in the
    /// middle leaves the map consistent and the operation retryable on a
    /// fresh page.
    pub fn upsert_by(
        &self,
        hash: u64,
        matches: impl Fn(&BlockRef, u32) -> bool,
        make_key: impl FnOnce(&BlockRef) -> PcResult<K>,
        init: impl FnOnce(&BlockRef) -> PcResult<V>,
        combine: impl FnOnce(&BlockRef, u32) -> PcResult<()>,
    ) -> PcResult<()> {
        self.ensure_room()?;
        let h = hash & !OCCUPIED;
        let b = self.block();
        let cap = self.capacity() as u32;
        let marked = h | OCCUPIED;
        let mut i = (h % cap as u64) as u32;
        loop {
            let e = self.entry(i);
            let stored = b.read::<u64>(e);
            if stored == 0 {
                // Miss: store key then value, then publish the slot.
                let key = make_key(b)?;
                key.store(b, Self::key_slot(e))?;
                let val = init(b)?;
                val.store(b, Self::val_slot(e))?;
                b.write::<u64>(e, marked);
                b.write_u32(self.offset() + OFF_LEN, self.len() as u32 + 1);
                return Ok(());
            }
            if stored == marked && matches(b, Self::key_slot(e)) {
                return combine(b, Self::val_slot(e));
            }
            i += 1;
            if i == cap {
                i = 0;
            }
        }
    }

    /// Raw slot access for merge loops: calls `f(block, key_slot, val_slot)`
    /// for every occupied entry.
    pub fn for_each_slot(
        &self,
        mut f: impl FnMut(&BlockRef, u32, u32) -> PcResult<()>,
    ) -> PcResult<()> {
        let cap = self.capacity() as u32;
        let b = self.block();
        for i in 0..cap {
            let e = self.entry(i);
            if b.read::<u64>(e) & OCCUPIED != 0 {
                f(b, Self::key_slot(e), Self::val_slot(e))?;
            }
        }
        Ok(())
    }

    /// Calls `f(key, value)` for every entry (slot order).
    pub fn for_each(&self, mut f: impl FnMut(K, V)) {
        let cap = self.capacity() as u32;
        let b = self.block();
        for i in 0..cap {
            let e = self.entry(i);
            if b.read::<u64>(e) & OCCUPIED != 0 {
                f(K::load(b, Self::key_slot(e)), V::load(b, Self::val_slot(e)));
            }
        }
    }

    /// Iterator over `(key, value)` pairs.
    pub fn iter(&self) -> PcMapIter<'_, K, V> {
        PcMapIter { map: self, i: 0 }
    }

    /// Removes a key, releasing its references. Returns whether it existed.
    ///
    /// Uses backward-shift deletion to keep probe chains intact.
    pub fn remove(&self, key: &K) -> bool {
        if self.capacity() == 0 {
            return false;
        }
        let h = key.hash_val() & !OCCUPIED;
        let (e, found) = self.probe(h, key);
        if !found {
            return false;
        }
        let b = self.block();
        K::drop_stored(b, Self::key_slot(e));
        V::drop_stored(b, Self::val_slot(e));
        let cap = self.capacity() as u32;
        let stride = entry_stride::<K, V>();
        let table = self.table();
        let mut hole = (e - table) / stride;
        let mut i = (hole + 1) % cap;
        loop {
            let ie = table + i * stride;
            let ih = b.read::<u64>(ie);
            if ih & OCCUPIED == 0 {
                break;
            }
            let home = ((ih & !OCCUPIED) % cap as u64) as u32;
            // Shift back if the element's home position lies outside
            // (hole, i] in circular order.
            let dist_home = (i + cap - home) % cap;
            let dist_hole = (i + cap - hole) % cap;
            if dist_home >= dist_hole {
                b.copy_within(ie, table + hole * stride, stride as usize);
                hole = i;
            }
            i = (i + 1) % cap;
        }
        b.write::<u64>(table + hole * stride, 0);
        b.write_u32(self.offset() + OFF_LEN, self.len() as u32 - 1);
        true
    }
}

/// Iterator over map entries.
pub struct PcMapIter<'a, K: PcKey, V: PcValue> {
    map: &'a Handle<PcMap<K, V>>,
    i: u32,
}

impl<K: PcKey, V: PcValue> Iterator for PcMapIter<'_, K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        let cap = self.map.capacity() as u32;
        let b = self.map.block();
        while self.i < cap {
            let e = self.map.entry(self.i);
            self.i += 1;
            if b.read::<u64>(e) & OCCUPIED != 0 {
                return Some((
                    K::load(b, Handle::<PcMap<K, V>>::key_slot(e)),
                    V::load(b, Handle::<PcMap<K, V>>::val_slot(e)),
                ));
            }
        }
        None
    }
}
