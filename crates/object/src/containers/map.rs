//! `PcMap<K, V>`: the page-resident hash map (PC's `Map`).
//!
//! This is the container at the heart of PC's distributed aggregation
//! (§3, Appendix D.2): each worker thread pre-aggregates into `Map` objects
//! allocated on output pages, the pages are shuffled wholesale, and the
//! receiving side merges the maps — with zero serialization at any point.

use super::{alloc_array, free_array};
use crate::block::BlockRef;
use crate::error::PcResult;
use crate::handle::Handle;
use crate::traits::{stored_footprint, PcKey, PcObjType, PcValue};
use std::marker::PhantomData;

/// Open-addressing hash map stored on a page.
///
/// Payload layout: `{ len: u32, cap: u32, table: u32 }`; the table is a raw
/// array of `cap` entries, each `{ hash: u64 (MSB = occupied), key slot,
/// value slot }`, linear probed, grown at 70% load. Capacities are always
/// powers of two, so every probe step is a mask (`h & (cap - 1)`) — no
/// integer division anywhere on the probe path.
///
/// ```
/// use pc_object::{AllocScope, PcMap, make_object};
/// let _s = AllocScope::new(1 << 16);
/// let m = make_object::<PcMap<i64, f64>>().unwrap();
/// m.insert(3, 1.5).unwrap();
/// m.insert(3, 2.5).unwrap();
/// assert_eq!(m.get(&3), Some(2.5));
/// assert_eq!(m.len(), 1);
/// ```
pub struct PcMap<K: PcKey, V: PcValue>(PhantomData<fn() -> (K, V)>);

const OFF_LEN: u32 = 0;
const OFF_CAP: u32 = 4;
const OFF_TABLE: u32 = 8;

const OCCUPIED: u64 = 1 << 63;

#[inline]
fn entry_stride<K: PcKey, V: PcValue>() -> u32 {
    8 + stored_footprint::<K>() + stored_footprint::<V>()
}

impl<K: PcKey, V: PcValue> PcObjType for PcMap<K, V> {
    type View<'a>
        = &'a Handle<PcMap<K, V>>
    where
        K: 'a,
        V: 'a;

    fn type_name() -> String {
        format!("PcMap<{},{}>", K::value_tag(), V::value_tag())
    }

    fn init_size() -> u32 {
        12
    }

    fn init_at(b: &BlockRef, off: u32) -> PcResult<()> {
        b.zero_range(off, 12);
        Ok(())
    }

    fn deep_copy_obj(src: &BlockRef, soff: u32, dst: &BlockRef) -> PcResult<u32> {
        let cap = src.read_u32(soff + OFF_CAP);
        let stable = src.read_u32(soff + OFF_TABLE);
        let stride = entry_stride::<K, V>();
        let doff = dst.alloc(12, Self::type_code(), 0)?;
        Self::init_at(dst, doff)?;
        if cap == 0 {
            return Ok(doff);
        }
        let dtable = alloc_array(dst, cap * stride)?;
        for i in 0..cap {
            let se = stable + i * stride;
            let h = src.read::<u64>(se);
            if h & OCCUPIED != 0 {
                let de = dtable + i * stride;
                dst.write::<u64>(de, h);
                K::deep_copy_stored(src, se + 8, dst, de + 8)?;
                V::deep_copy_stored(
                    src,
                    se + 8 + stored_footprint::<K>(),
                    dst,
                    de + 8 + stored_footprint::<K>(),
                )?;
            }
        }
        dst.write_u32(doff + OFF_LEN, src.read_u32(soff + OFF_LEN));
        dst.write_u32(doff + OFF_CAP, cap);
        dst.write_u32(doff + OFF_TABLE, dtable);
        Ok(doff)
    }

    fn drop_obj(b: &BlockRef, off: u32) {
        let cap = b.read_u32(off + OFF_CAP);
        let table = b.read_u32(off + OFF_TABLE);
        if table == 0 {
            return;
        }
        let stride = entry_stride::<K, V>();
        if K::CONTAINS_HANDLES || V::CONTAINS_HANDLES {
            for i in 0..cap {
                let e = table + i * stride;
                if b.read::<u64>(e) & OCCUPIED != 0 {
                    K::drop_stored(b, e + 8);
                    V::drop_stored(b, e + 8 + stored_footprint::<K>());
                }
            }
        }
        free_array(b, table);
    }

    fn make_view(h: &Handle<Self>) -> Self::View<'_> {
        h
    }
}

impl<K: PcKey, V: PcValue> Handle<PcMap<K, V>> {
    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.block().read_u32(self.offset() + OFF_LEN) as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Table capacity in entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.block().read_u32(self.offset() + OFF_CAP) as usize
    }

    #[inline]
    fn table(&self) -> u32 {
        self.block().read_u32(self.offset() + OFF_TABLE)
    }

    #[inline]
    fn entry(&self, i: u32) -> u32 {
        self.table() + i * entry_stride::<K, V>()
    }

    /// Byte offset of an entry's key slot.
    #[inline]
    fn key_slot(e: u32) -> u32 {
        e + 8
    }

    /// Byte offset of an entry's value slot.
    #[inline]
    fn val_slot(e: u32) -> u32 {
        e + 8 + stored_footprint::<K>()
    }

    /// Finds the entry for `key`: returns `(entry_offset, occupied)`. The
    /// returned offset is the match when occupied, or the insertion point.
    fn probe(&self, h: u64, key: &K) -> (u32, bool) {
        let cap = self.capacity() as u32;
        debug_assert!(cap > 0 && cap.is_power_of_two());
        let mask = cap - 1;
        let marked = h | OCCUPIED;
        let b = self.block();
        let mut i = h as u32 & mask;
        loop {
            let e = self.entry(i);
            let stored = b.read::<u64>(e);
            if stored == 0 {
                return (e, false);
            }
            if stored == marked && key.eq_stored(b, Self::key_slot(e)) {
                return (e, true);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&self, want_entries: usize) -> PcResult<()> {
        let old_cap = self.capacity() as u32;
        let new_cap = (want_entries * 2).next_power_of_two().max(8) as u32;
        if new_cap <= old_cap {
            return Ok(());
        }
        let stride = entry_stride::<K, V>();
        let b = self.block();
        let new_table = alloc_array(b, new_cap * stride)?;
        let old_table = self.table();
        // Rehash by stored hash: whole entries move by byte copy — handle
        // slots hold page-relative offsets, so no refcount churn is needed.
        let new_mask = new_cap - 1;
        for i in 0..old_cap {
            let e = old_table + i * stride;
            let h = b.read::<u64>(e);
            if h & OCCUPIED == 0 {
                continue;
            }
            let mut j = (h & !OCCUPIED) as u32 & new_mask;
            loop {
                let ne = new_table + j * stride;
                if b.read::<u64>(ne) == 0 {
                    b.copy_within(e, ne, stride as usize);
                    break;
                }
                j = (j + 1) & new_mask;
            }
        }
        if old_table != 0 {
            free_array(b, old_table);
        }
        b.write_u32(self.offset() + OFF_CAP, new_cap);
        b.write_u32(self.offset() + OFF_TABLE, new_table);
        Ok(())
    }

    fn ensure_room(&self) -> PcResult<()> {
        let len = self.len();
        let cap = self.capacity();
        if cap == 0 || (len + 1) * 10 > cap * 7 {
            self.grow(len + 1)?;
        }
        Ok(())
    }

    /// Pre-sizes the table so `additional` further inserts cannot trigger a
    /// growth/rehash mid-burst — the bulk entry point the aggregation sink
    /// calls before absorbing a partition's rows. A `BlockFull` error means
    /// the page cannot hold a table that large; callers may fall back to
    /// on-demand growth (distinct keys are often far fewer than rows).
    pub fn reserve(&self, additional: usize) -> PcResult<()> {
        let want = self.len() + additional;
        if self.capacity() * 7 < want.saturating_add(1) * 10 {
            self.grow(want)?;
        }
        Ok(())
    }

    /// Inserts or replaces; the old value's references are released.
    pub fn insert(&self, key: K, value: V) -> PcResult<()> {
        self.ensure_room()?;
        let h = key.hash_val() & !OCCUPIED;
        let (e, found) = self.probe(h, &key);
        let b = self.block();
        if found {
            V::drop_stored(b, Self::val_slot(e));
            value.store(b, Self::val_slot(e))?;
        } else {
            // Store key and value BEFORE publishing the slot: a BlockFull
            // fault mid-store must leave the map consistent (a torn entry
            // with garbage slot offsets would read out of bounds later).
            key.store(b, Self::key_slot(e))?;
            value.store(b, Self::val_slot(e))?;
            b.write::<u64>(e, h | OCCUPIED);
            b.write_u32(self.offset() + OFF_LEN, self.len() as u32 + 1);
        }
        Ok(())
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &K) -> Option<V> {
        if self.capacity() == 0 {
            return None;
        }
        let h = key.hash_val() & !OCCUPIED;
        let (e, found) = self.probe(h, key);
        if found {
            Some(V::load(self.block(), Self::val_slot(e)))
        } else {
            None
        }
    }

    /// Looks up a value by a caller-computed `hash` (the probe path of the
    /// partitioned join table, which derives the slot hash once per probe
    /// and routes it through partition selection, the tag filter, and the
    /// map probe without rehashing). `hash` must equal `key.hash_val()`.
    pub fn get_hashed(&self, hash: u64, key: &K) -> Option<V> {
        if self.capacity() == 0 {
            return None;
        }
        debug_assert_eq!(hash & !OCCUPIED, key.hash_val() & !OCCUPIED);
        let (e, found) = self.probe(hash & !OCCUPIED, key);
        if found {
            Some(V::load(self.block(), Self::val_slot(e)))
        } else {
            None
        }
    }

    /// Calls `f` with the stored slot hash of every occupied entry (the
    /// OCCUPIED marker bit is stripped). This is how probe-side tag filters
    /// are built at seal time: the hashes are read back verbatim from the
    /// table, so no key is ever rehashed or materialized.
    pub fn for_each_stored_hash(&self, mut f: impl FnMut(u64)) {
        let cap = self.capacity() as u32;
        let b = self.block();
        for i in 0..cap {
            let h = b.read::<u64>(self.entry(i));
            if h & OCCUPIED != 0 {
                f(h & !OCCUPIED);
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        if self.capacity() == 0 {
            return false;
        }
        let h = key.hash_val() & !OCCUPIED;
        self.probe(h, key).1
    }

    /// The aggregation primitive: if `key` is absent, store `init()`;
    /// otherwise call `combine` with the block and the value-slot offset so
    /// the caller can fold in place (this is how PC's `AggregateComp`
    /// accumulates partial aggregates into per-partition maps).
    pub fn upsert(
        &self,
        key: K,
        init: impl FnOnce() -> PcResult<V>,
        combine: impl FnOnce(&BlockRef, u32) -> PcResult<()>,
    ) -> PcResult<()> {
        self.ensure_room()?;
        let h = key.hash_val() & !OCCUPIED;
        let (e, found) = self.probe(h, &key);
        let b = self.block();
        if found {
            combine(b, Self::val_slot(e))
        } else {
            // Publish only after key and value are fully stored (see
            // `insert` for why).
            key.store(b, Self::key_slot(e))?;
            init()?.store(b, Self::val_slot(e))?;
            b.write::<u64>(e, h | OCCUPIED);
            b.write_u32(self.offset() + OFF_LEN, self.len() as u32 + 1);
            Ok(())
        }
    }

    /// Hash-first upsert used by the aggregation engine: probes by a
    /// caller-computed `hash`, comparing stored keys with `matches`; on a
    /// miss the key is materialized by `make_key` (allocating on the map's
    /// own block) and the value by `init`. The slot is only marked occupied
    /// *after* key and value are fully stored, so a `BlockFull` fault in the
    /// middle leaves the map consistent and the operation retryable on a
    /// fresh page.
    pub fn upsert_by(
        &self,
        hash: u64,
        matches: impl Fn(&BlockRef, u32) -> bool,
        make_key: impl FnOnce(&BlockRef) -> PcResult<K>,
        init: impl FnOnce(&BlockRef) -> PcResult<V>,
        combine: impl FnOnce(&BlockRef, u32) -> PcResult<()>,
    ) -> PcResult<()> {
        self.ensure_room()?;
        let h = hash & !OCCUPIED;
        let b = self.block();
        let cap = self.capacity() as u32;
        let mask = cap - 1;
        let marked = h | OCCUPIED;
        let mut i = h as u32 & mask;
        loop {
            let e = self.entry(i);
            let stored = b.read::<u64>(e);
            if stored == 0 {
                // Miss: store key then value, then publish the slot.
                let key = make_key(b)?;
                key.store(b, Self::key_slot(e))?;
                let val = init(b)?;
                val.store(b, Self::val_slot(e))?;
                b.write::<u64>(e, marked);
                b.write_u32(self.offset() + OFF_LEN, self.len() as u32 + 1);
                return Ok(());
            }
            if stored == marked && matches(b, Self::key_slot(e)) {
                return combine(b, Self::val_slot(e));
            }
            i = (i + 1) & mask;
        }
    }

    /// Pre-masking reference implementation of [`upsert_by`]: identical
    /// semantics, but the probe start is computed with an integer division
    /// (`hash % cap`) the way the row-at-a-time engine did before probing
    /// went mask-based. Kept only for differential tests and the
    /// vectorized-vs-eager aggregation benchmark; not a public API surface.
    ///
    /// [`upsert_by`]: Self::upsert_by
    #[doc(hidden)]
    pub fn upsert_by_modref(
        &self,
        hash: u64,
        matches: impl Fn(&BlockRef, u32) -> bool,
        make_key: impl FnOnce(&BlockRef) -> PcResult<K>,
        init: impl FnOnce(&BlockRef) -> PcResult<V>,
        combine: impl FnOnce(&BlockRef, u32) -> PcResult<()>,
    ) -> PcResult<()> {
        self.ensure_room()?;
        let h = hash & !OCCUPIED;
        let b = self.block();
        let cap = self.capacity() as u32;
        let marked = h | OCCUPIED;
        let mut i = (h % cap as u64) as u32;
        loop {
            let e = self.entry(i);
            let stored = b.read::<u64>(e);
            if stored == 0 {
                let key = make_key(b)?;
                key.store(b, Self::key_slot(e))?;
                let val = init(b)?;
                val.store(b, Self::val_slot(e))?;
                b.write::<u64>(e, marked);
                b.write_u32(self.offset() + OFF_LEN, self.len() as u32 + 1);
                return Ok(());
            }
            if stored == marked && matches(b, Self::key_slot(e)) {
                return combine(b, Self::val_slot(e));
            }
            i += 1;
            if i == cap {
                i = 0;
            }
        }
    }

    /// Grouped bulk upsert: folds a whole partition bucket of rows into the
    /// map in one call, so consecutive probes stay on this map's (hot) table
    /// instead of ping-ponging between partitions. `hashes[done..]` are the
    /// rows still to absorb; every per-row closure receives the row's index
    /// into `hashes` so callers can look up keys/records in their own
    /// scratch buffers.
    ///
    /// The capacity, mask, and block are hoisted out of the row loop — a row
    /// re-derives them only after a growth. `done` advances past each row as
    /// it completes, which makes the operation resumable: on `BlockFull` the
    /// caller seals the page, starts a fresh one, and calls again; completed
    /// rows are never re-applied. Slots publish only after key and value are
    /// fully stored (see [`upsert_by`]), so a mid-row fault leaves the map
    /// consistent.
    ///
    /// [`upsert_by`]: Self::upsert_by
    pub fn upsert_batch_by(
        &self,
        hashes: &[u64],
        done: &mut usize,
        mut matches: impl FnMut(usize, &BlockRef, u32) -> bool,
        mut make_key: impl FnMut(usize, &BlockRef) -> PcResult<K>,
        mut init: impl FnMut(usize, &BlockRef) -> PcResult<V>,
        mut combine: impl FnMut(usize, &BlockRef, u32) -> PcResult<()>,
    ) -> PcResult<()> {
        let b = self.block();
        let stride = entry_stride::<K, V>();
        let kfoot = stored_footprint::<K>();
        let n = hashes.len();
        // The table geometry (capacity, mask, table base, length) is hoisted
        // out of the row loop and re-derived only after a growth — the hot
        // hit path is: load hash, mask, read entry, compare, combine.
        'table: loop {
            let cap = self.capacity() as u32;
            if cap == 0 {
                if *done == n {
                    return Ok(());
                }
                self.grow(1)?;
                continue 'table;
            }
            let mask = cap - 1;
            let table = self.table();
            let mut len = self.len();
            while *done < n {
                let i = *done;
                let h = hashes[i] & !OCCUPIED;
                let marked = h | OCCUPIED;
                let mut idx = h as u32 & mask;
                loop {
                    let e = table + idx * stride;
                    let stored = b.read::<u64>(e);
                    // Hit first: pre-aggregation is combine-dominated.
                    if stored == marked && matches(i, b, e + 8) {
                        combine(i, b, e + 8 + kfoot)?;
                        break;
                    }
                    if stored == 0 {
                        // Miss: make room first (a growth rehashes and moves
                        // the insertion point), then re-probe and insert.
                        if (len + 1) * 10 > cap as usize * 7 {
                            self.grow(len + 1)?;
                            continue 'table;
                        }
                        let key = make_key(i, b)?;
                        key.store(b, e + 8)?;
                        let val = init(i, b)?;
                        val.store(b, e + 8 + kfoot)?;
                        b.write::<u64>(e, marked);
                        len += 1;
                        b.write_u32(self.offset() + OFF_LEN, len as u32);
                        break;
                    }
                    idx = (idx + 1) & mask;
                }
                *done = i + 1;
            }
            return Ok(());
        }
    }

    /// Page-at-a-time merge: folds every entry of `src` (a map of the same
    /// type, typically opened from a shuffled page) into this map. Stored
    /// entry hashes are reused verbatim (no per-entry rehash), keys are
    /// compared stored-to-stored, and a first-sighted key is adopted by deep
    /// copy of its key and value slots; `combine(dst_block, dst_val_slot,
    /// src_block, src_val_slot)` folds entries whose key already exists.
    ///
    /// `cursor` is the `src` slot index to resume from: on `BlockFull` the
    /// caller grows its block (or rolls to a bigger page) and calls again —
    /// entries before the cursor are never re-merged.
    pub fn merge_from(
        &self,
        src: &Handle<PcMap<K, V>>,
        cursor: &mut u32,
        mut combine: impl FnMut(&BlockRef, u32, &BlockRef, u32) -> PcResult<()>,
    ) -> PcResult<()> {
        let sb = src.block();
        let db = self.block();
        let scap = src.capacity() as u32;
        // One growth for the whole page where it fits; otherwise grow on
        // demand (the overlap between src and dst keys may be large).
        if *cursor == 0 && !src.is_empty() {
            match self.reserve(src.len()) {
                Err(crate::error::PcError::BlockFull { .. }) => {}
                r => r?,
            }
        }
        'entries: while *cursor < scap {
            let se = src.entry(*cursor);
            let stored = sb.read::<u64>(se);
            if stored & OCCUPIED == 0 {
                *cursor += 1;
                continue;
            }
            let h = stored & !OCCUPIED;
            'probe: loop {
                let cap = self.capacity() as u32;
                if cap == 0 {
                    self.grow(1)?;
                    continue 'probe;
                }
                let mask = cap - 1;
                let mut idx = h as u32 & mask;
                loop {
                    let e = self.entry(idx);
                    let dstored = db.read::<u64>(e);
                    if dstored == 0 {
                        let len = self.len();
                        if (len + 1) * 10 > cap as usize * 7 {
                            self.grow(len + 1)?;
                            continue 'probe;
                        }
                        // First sighting: adopt key and partial value by
                        // deep copy (crossing blocks per §6.4), then publish.
                        K::deep_copy_stored(sb, Self::key_slot(se), db, Self::key_slot(e))?;
                        V::deep_copy_stored(sb, Self::val_slot(se), db, Self::val_slot(e))?;
                        db.write::<u64>(e, stored);
                        db.write_u32(self.offset() + OFF_LEN, len as u32 + 1);
                        *cursor += 1;
                        continue 'entries;
                    }
                    if dstored == stored
                        && K::stored_eq(db, Self::key_slot(e), sb, Self::key_slot(se))
                    {
                        combine(db, Self::val_slot(e), sb, Self::val_slot(se))?;
                        *cursor += 1;
                        continue 'entries;
                    }
                    idx = (idx + 1) & mask;
                }
            }
        }
        Ok(())
    }

    /// Raw slot access for merge loops: calls `f(block, key_slot, val_slot)`
    /// for every occupied entry.
    pub fn for_each_slot(
        &self,
        mut f: impl FnMut(&BlockRef, u32, u32) -> PcResult<()>,
    ) -> PcResult<()> {
        let cap = self.capacity() as u32;
        let b = self.block();
        for i in 0..cap {
            let e = self.entry(i);
            if b.read::<u64>(e) & OCCUPIED != 0 {
                f(b, Self::key_slot(e), Self::val_slot(e))?;
            }
        }
        Ok(())
    }

    /// Like [`for_each_slot`], but also passes each entry's stored hash
    /// (OCCUPIED bit stripped). The aggregation finalizer uses the hash to
    /// emit groups in a canonical order independent of insertion history —
    /// out-of-core runs absorb rows wave by wave, so slot order alone would
    /// leak the spill schedule into the output bytes.
    ///
    /// [`for_each_slot`]: Self::for_each_slot
    pub fn for_each_slot_hashed(
        &self,
        mut f: impl FnMut(u64, &BlockRef, u32, u32) -> PcResult<()>,
    ) -> PcResult<()> {
        let cap = self.capacity() as u32;
        let b = self.block();
        for i in 0..cap {
            let e = self.entry(i);
            let h = b.read::<u64>(e);
            if h & OCCUPIED != 0 {
                f(h & !OCCUPIED, b, Self::key_slot(e), Self::val_slot(e))?;
            }
        }
        Ok(())
    }

    /// Calls `f(key, value)` for every entry (slot order).
    pub fn for_each(&self, mut f: impl FnMut(K, V)) {
        let cap = self.capacity() as u32;
        let b = self.block();
        for i in 0..cap {
            let e = self.entry(i);
            if b.read::<u64>(e) & OCCUPIED != 0 {
                f(K::load(b, Self::key_slot(e)), V::load(b, Self::val_slot(e)));
            }
        }
    }

    /// Iterator over `(key, value)` pairs.
    pub fn iter(&self) -> PcMapIter<'_, K, V> {
        PcMapIter { map: self, i: 0 }
    }

    /// Removes a key, releasing its references. Returns whether it existed.
    ///
    /// Uses backward-shift deletion to keep probe chains intact.
    pub fn remove(&self, key: &K) -> bool {
        if self.capacity() == 0 {
            return false;
        }
        let h = key.hash_val() & !OCCUPIED;
        let (e, found) = self.probe(h, key);
        if !found {
            return false;
        }
        let b = self.block();
        K::drop_stored(b, Self::key_slot(e));
        V::drop_stored(b, Self::val_slot(e));
        let cap = self.capacity() as u32;
        let mask = cap - 1;
        let stride = entry_stride::<K, V>();
        let table = self.table();
        let mut hole = (e - table) / stride;
        let mut i = (hole + 1) & mask;
        loop {
            let ie = table + i * stride;
            let ih = b.read::<u64>(ie);
            if ih & OCCUPIED == 0 {
                break;
            }
            let home = (ih & !OCCUPIED) as u32 & mask;
            // Shift back if the element's home position lies outside
            // (hole, i] in circular order.
            let dist_home = (i + cap - home) & mask;
            let dist_hole = (i + cap - hole) & mask;
            if dist_home >= dist_hole {
                b.copy_within(ie, table + hole * stride, stride as usize);
                hole = i;
            }
            i = (i + 1) & mask;
        }
        b.write::<u64>(table + hole * stride, 0);
        b.write_u32(self.offset() + OFF_LEN, self.len() as u32 - 1);
        true
    }
}

/// Iterator over map entries.
pub struct PcMapIter<'a, K: PcKey, V: PcValue> {
    map: &'a Handle<PcMap<K, V>>,
    i: u32,
}

impl<K: PcKey, V: PcValue> Iterator for PcMapIter<'_, K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        let cap = self.map.capacity() as u32;
        let b = self.map.block();
        while self.i < cap {
            let e = self.map.entry(self.i);
            self.i += 1;
            if b.read::<u64>(e) & OCCUPIED != 0 {
                return Some((
                    K::load(b, Handle::<PcMap<K, V>>::key_slot(e)),
                    V::load(b, Handle::<PcMap<K, V>>::val_slot(e)),
                ));
            }
        }
        None
    }
}
