//! `PcVec<T>`: the page-resident growable vector (PC's `Vector`).

use super::{alloc_array, free_array};
use crate::block::BlockRef;
use crate::error::PcResult;
use crate::handle::Handle;
use crate::traits::{stored_footprint, PcObjType, PcValue};
use std::marker::PhantomData;

/// A growable vector of `PcValue`s living on a page.
///
/// Payload layout: `{ len: u32, cap: u32, elems: u32 }` where `elems` is the
/// offset of a raw array on the same block holding `cap` fixed-width slots.
/// Growth allocates a new array on the same block and byte-copies the
/// occupied prefix — page-relative offsets inside stored handles remain
/// valid, so no per-element fix-up is ever needed.
///
/// ```
/// use pc_object::{AllocScope, PcVec, make_object};
/// let _s = AllocScope::new(1 << 16);
/// let v = make_object::<PcVec<i64>>().unwrap();
/// for i in 0..10 { v.push(i * i).unwrap(); }
/// assert_eq!(v.get(3), 9);
/// assert_eq!(v.iter().sum::<i64>(), 285);
/// ```
pub struct PcVec<T: PcValue>(PhantomData<fn() -> T>);

const OFF_LEN: u32 = 0;
const OFF_CAP: u32 = 4;
const OFF_ELEMS: u32 = 8;

impl<T: PcValue> PcObjType for PcVec<T> {
    type View<'a>
        = &'a Handle<PcVec<T>>
    where
        T: 'a;

    fn type_name() -> String {
        format!("PcVec<{}>", T::value_tag())
    }

    fn init_size() -> u32 {
        12
    }

    fn init_at(b: &BlockRef, off: u32) -> PcResult<()> {
        b.zero_range(off, 12);
        Ok(())
    }

    fn deep_copy_obj(src: &BlockRef, soff: u32, dst: &BlockRef) -> PcResult<u32> {
        let len = src.read_u32(soff + OFF_LEN);
        let selems = src.read_u32(soff + OFF_ELEMS);
        let stride = stored_footprint::<T>();
        let doff = dst.alloc(12, Self::type_code(), 0)?;
        Self::init_at(dst, doff)?;
        if len == 0 {
            return Ok(doff);
        }
        let delems = alloc_array(dst, len * stride)?;
        if T::CONTAINS_HANDLES {
            for i in 0..len {
                T::deep_copy_stored(src, selems + i * stride, dst, delems + i * stride)?;
            }
        } else {
            let bytes = src.bytes(selems, (len * stride) as usize);
            dst.write_bytes(delems, bytes);
        }
        dst.write_u32(doff + OFF_LEN, len);
        dst.write_u32(doff + OFF_CAP, len);
        dst.write_u32(doff + OFF_ELEMS, delems);
        Ok(doff)
    }

    fn drop_obj(b: &BlockRef, off: u32) {
        let len = b.read_u32(off + OFF_LEN);
        let elems = b.read_u32(off + OFF_ELEMS);
        if elems != 0 {
            if T::CONTAINS_HANDLES {
                let stride = stored_footprint::<T>();
                for i in 0..len {
                    T::drop_stored(b, elems + i * stride);
                }
            }
            free_array(b, elems);
        }
    }

    fn make_view(h: &Handle<Self>) -> Self::View<'_> {
        h
    }
}

impl<T: PcValue> Handle<PcVec<T>> {
    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.block().read_u32(self.offset() + OFF_LEN) as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocated element capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.block().read_u32(self.offset() + OFF_CAP) as usize
    }

    #[inline]
    fn elems(&self) -> u32 {
        self.block().read_u32(self.offset() + OFF_ELEMS)
    }

    #[inline]
    fn slot(&self, i: usize) -> u32 {
        self.elems() + (i as u32) * stored_footprint::<T>()
    }

    /// Ensures capacity for at least `want` elements.
    pub fn reserve(&self, want: usize) -> PcResult<()> {
        if want <= self.capacity() {
            return Ok(());
        }
        let b = self.block();
        let stride = stored_footprint::<T>();
        let new_cap = want.next_power_of_two().max(4) as u32;
        let new_elems = alloc_array(b, new_cap * stride)?;
        let old = self.elems();
        let len = self.len() as u32;
        if old != 0 {
            // Bulk byte copy: stored handles are page-relative, so moving
            // slots within the block needs no reference-count churn.
            b.copy_within(old, new_elems, (len * stride) as usize);
            free_array(b, old);
        }
        b.write_u32(self.offset() + OFF_CAP, new_cap);
        b.write_u32(self.offset() + OFF_ELEMS, new_elems);
        Ok(())
    }

    /// Appends a value. Fails with `BlockFull` when the page is out of room.
    pub fn push(&self, v: T) -> PcResult<()> {
        let len = self.len();
        if len == self.capacity() {
            self.reserve(len + 1)?;
        }
        v.store(self.block(), self.slot(len))?;
        self.block()
            .write_u32(self.offset() + OFF_LEN, (len + 1) as u32);
        Ok(())
    }

    /// Reads element `i`. Panics when out of bounds.
    pub fn get(&self, i: usize) -> T {
        assert!(
            i < self.len(),
            "PcVec index {i} out of bounds (len {})",
            self.len()
        );
        T::load(self.block(), self.slot(i))
    }

    /// Overwrites element `i`, releasing whatever it referenced.
    pub fn set(&self, i: usize, v: T) -> PcResult<()> {
        assert!(
            i < self.len(),
            "PcVec index {i} out of bounds (len {})",
            self.len()
        );
        T::drop_stored(self.block(), self.slot(i));
        v.store(self.block(), self.slot(i))
    }

    /// Truncates to `new_len` elements, releasing dropped references.
    pub fn truncate(&self, new_len: usize) {
        let len = self.len();
        if new_len >= len {
            return;
        }
        if T::CONTAINS_HANDLES {
            for i in new_len..len {
                T::drop_stored(self.block(), self.slot(i));
            }
        }
        self.block()
            .write_u32(self.offset() + OFF_LEN, new_len as u32);
    }

    /// Truncates to zero length, releasing element references.
    pub fn clear(&self) {
        if T::CONTAINS_HANDLES {
            let len = self.len();
            for i in 0..len {
                T::drop_stored(self.block(), self.slot(i));
            }
        }
        self.block().write_u32(self.offset() + OFF_LEN, 0);
    }

    /// Iterates elements by value.
    pub fn iter(&self) -> PcVecIter<'_, T> {
        PcVecIter {
            vec: self,
            i: 0,
            len: self.len(),
        }
    }
}

impl<T: PcObjType> Handle<PcVec<Handle<T>>> {
    /// Appends a group of untyped handles as one atomic unit — the bulk
    /// bucket-append of the join build sink. Capacity is reserved once for
    /// the whole group (no per-push doubling checks), cross-block handles
    /// deep-copy onto this vector's page per §6.4, and a fault anywhere in
    /// the group rolls the length back so no torn group (a partial
    /// `arity`-frame) is ever observable.
    pub fn push_group<'a, I>(&self, objs: I) -> PcResult<()>
    where
        I: IntoIterator<Item = &'a crate::AnyHandle>,
        I::IntoIter: ExactSizeIterator,
    {
        let it = objs.into_iter();
        let before = self.len();
        self.reserve(before + it.len())?;
        for h in it {
            if let Err(e) = self.push(h.typed_ref::<T>().clone()) {
                self.truncate(before);
                return Err(e);
            }
        }
        Ok(())
    }
}

/// Flat-element bulk operations (zero-copy views).
macro_rules! flat_views {
    ($t:ty, $slice:ident, $slice_mut:ident) => {
        impl Handle<PcVec<$t>> {
            /// Zero-copy read view of the elements.
            #[inline]
            pub fn as_slice(&self) -> &[$t] {
                let len = self.len();
                if len == 0 {
                    return &[];
                }
                self.block().$slice(self.elems(), len)
            }

            /// Zero-copy mutable view (see `BlockRef::slice_f64_mut` for the
            /// aliasing discipline).
            #[inline]
            pub fn as_mut_slice(&self) -> &mut [$t] {
                let len = self.len();
                if len == 0 {
                    return &mut [];
                }
                self.block().$slice_mut(self.elems(), len)
            }

            /// Bulk append.
            pub fn extend_from_slice(&self, src: &[$t]) -> PcResult<()> {
                let len = self.len();
                self.reserve(len + src.len())?;
                let b = self.block();
                let base = self.slot(len);
                let bytes = unsafe {
                    std::slice::from_raw_parts(
                        src.as_ptr() as *const u8,
                        std::mem::size_of_val(src),
                    )
                };
                b.write_bytes(base, bytes);
                b.write_u32(self.offset() + OFF_LEN, (len + src.len()) as u32);
                Ok(())
            }
        }
    };
}

flat_views!(f64, slice_f64, slice_f64_mut);

impl Handle<PcVec<i64>> {
    /// Zero-copy read view of the elements.
    #[inline]
    pub fn as_slice(&self) -> &[i64] {
        let len = self.len();
        if len == 0 {
            return &[];
        }
        self.block().slice_i64(self.elems(), len)
    }

    /// Bulk append.
    pub fn extend_from_slice(&self, src: &[i64]) -> PcResult<()> {
        let len = self.len();
        self.reserve(len + src.len())?;
        let b = self.block();
        let base = self.slot(len);
        let bytes = unsafe {
            std::slice::from_raw_parts(src.as_ptr() as *const u8, std::mem::size_of_val(src))
        };
        b.write_bytes(base, bytes);
        b.write_u32(self.offset() + OFF_LEN, (len + src.len()) as u32);
        Ok(())
    }
}

/// Iterator over a `PcVec`'s elements (loaded by value).
pub struct PcVecIter<'a, T: PcValue> {
    vec: &'a Handle<PcVec<T>>,
    i: usize,
    len: usize,
}

impl<T: PcValue> Iterator for PcVecIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.i >= self.len {
            return None;
        }
        let v = self.vec.get(self.i);
        self.i += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.i;
        (rem, Some(rem))
    }
}

impl<T: PcValue> ExactSizeIterator for PcVecIter<'_, T> {}
