//! Built-in container objects: [`PcVec`], [`PcMap`], [`PcString`].
//!
//! These are the generic, page-resident analogues of PC's `Vector`, `Map`
//! and `String` (§6.1). Their storage lives entirely on the owning block:
//! a container object holds the offset of a *raw array* allocation on the
//! same block, so a sealed page carries the container and its contents as
//! one contiguous range of bytes.

mod map;
mod string;
mod vec;

pub use map::PcMap;
pub use string::PcString;
pub use vec::PcVec;

use crate::block::{BlockRef, FLAG_NO_REFCOUNT, FLAG_VAR_SIZE};
use crate::error::PcResult;
use crate::registry::TypeCode;

/// Type code for headerless raw array allocations backing containers.
pub(crate) const RAW_ARRAY_CODE: TypeCode = TypeCode(0x5043_5241); // "PCRA"

/// Allocates a zeroed raw array of `bytes` on `b`. Raw arrays are owned by
/// exactly one container, are not reference counted, and are variable-length
/// (hence never recycled — Appendix B).
pub(crate) fn alloc_array(b: &BlockRef, bytes: u32) -> PcResult<u32> {
    let off = b.alloc(bytes, RAW_ARRAY_CODE, FLAG_NO_REFCOUNT | FLAG_VAR_SIZE)?;
    b.zero_range(off, bytes as usize);
    Ok(off)
}

/// Frees a raw array previously allocated with [`alloc_array`].
pub(crate) fn free_array(b: &BlockRef, off: u32) {
    if off != 0 && b.is_managed() {
        b.free_object(off);
    }
}
