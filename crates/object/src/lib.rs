//! # pc-object — the PlinyCompute object model
//!
//! A Rust implementation of the PC object model described in §3, §6 and
//! Appendix B of *PlinyCompute: A Platform for High-Performance, Distributed,
//! Data-Intensive Tool Development* (Zou et al., SIGMOD 2018).
//!
//! The object model follows the **page-as-a-heap** principle: all objects are
//! allocated in place on a block of memory (a page), referenced through
//! offset-based [`Handle`]s, and a populated block can be *sealed* and moved
//! to disk, across threads, or byte-copied over a simulated network with
//! **zero serialization or deserialization cost** — the block's bytes are the
//! one and only representation of the data.
//!
//! ## Quick tour
//!
//! ```
//! use pc_object::{AllocScope, PcVec, Handle, make_object};
//!
//! // One megabyte allocation block; all make_object calls target it.
//! let _scope = AllocScope::new(1024 * 1024);
//! let v: Handle<PcVec<f64>> = make_object().unwrap();
//! for i in 0..100 {
//!     v.push(i as f64).unwrap();
//! }
//! assert_eq!(v.len(), 100);
//! assert_eq!(v.get(42), 42.0);
//! ```
//!
//! ## Components
//!
//! * [`block`] — the raw page heap: bump allocation with per-size-class free
//!   lists, object headers carrying reference counts, the three allocation
//!   policies of Appendix B.
//! * [`handle`] — user-side [`Handle<T>`] smart pointers and untyped
//!   [`AnyHandle`]s; stored handles are `{offset, type_code}` pairs that stay
//!   valid when the whole page moves.
//! * [`registry`] — the process-wide type catalog mapping type codes to
//!   "vtables" (deep copy, drop, describe), the analogue of PC's `.so`
//!   shipping and `getVTablePtr()` lookup.
//! * [`containers`] — [`PcVec`], [`PcMap`], [`PcString`]: the built-in
//!   generic container objects.
//! * [`page`] — [`SealedPage`]: a detached, `Send`, byte-movable page.
//! * [`pc_object!`](crate::pc_object) — declare user object types with
//!   handle-aware fields (the analogue of deriving from PC's `Object`).

pub mod anyobj;
pub mod block;
pub mod budget;
pub mod containers;
pub mod error;
pub mod handle;
pub mod hash;
pub mod page;
pub mod registry;
pub mod traits;

#[macro_use]
mod macros;

pub use anyobj::AnyObj;
pub use block::{AllocPolicy, AllocScope, BlockRef, BlockStats, ObjectPolicy};
pub use budget::{MemoryBudget, MemoryGrant, PageSpiller, PressureSpec};
pub use containers::{PcMap, PcString, PcVec};
pub use error::{PcError, PcResult};
pub use handle::{AnyHandle, Handle};
pub use page::SealedPage;
pub use registry::{
    ensure_builtins_registered, lookup_vtable, register_type, TypeCode, TypeVTable,
};
pub use traits::{Flat, PcKey, PcObjType, PcValue};

use std::cell::RefCell;

thread_local! {
    static ACTIVE_BLOCK: RefCell<Vec<BlockRef>> = const { RefCell::new(Vec::new()) };
}

/// Returns the thread's current active allocation block, if any.
pub fn current_block() -> Option<BlockRef> {
    ACTIVE_BLOCK.with(|b| b.borrow().last().cloned())
}

/// Pushes `block` as the thread's active allocation block.
///
/// The previously active block (if any) becomes *inactive, managed*: it stays
/// alive for as long as handles reference objects on it. Prefer
/// [`AllocScope`] for RAII management.
pub fn push_active_block(block: BlockRef) {
    ACTIVE_BLOCK.with(|b| b.borrow_mut().push(block));
}

/// Pops the active allocation block, restoring the previous one.
pub fn pop_active_block() -> Option<BlockRef> {
    ACTIVE_BLOCK.with(|b| b.borrow_mut().pop())
}

/// Allocates a fresh block of `size` bytes and makes it the active block.
///
/// This is the analogue of the paper's `makeObjectAllocatorBlock(blockSize)`.
pub fn make_object_allocator_block(size: usize) -> BlockRef {
    let block = BlockRef::new(size, AllocPolicy::LightweightReuse);
    push_active_block(block.clone());
    block
}

/// Allocates a default-initialized object of type `T` on the active block.
///
/// The analogue of the paper's `makeObject<T>()`. Fails with
/// [`PcError::BlockFull`] when the active page cannot fit the object — the
/// execution engine treats that fault as "page full" and rolls a new page.
pub fn make_object<T: PcObjType>() -> PcResult<Handle<T>> {
    let block = current_block().ok_or(PcError::NoActiveBlock)?;
    block.make_object::<T>()
}

/// Allocates an object with an explicit per-object policy (Appendix B):
/// `ObjectPolicy::NoRefCount` or `ObjectPolicy::Unique`.
pub fn make_object_with_policy<T: PcObjType>(policy: ObjectPolicy) -> PcResult<Handle<T>> {
    let block = current_block().ok_or(PcError::NoActiveBlock)?;
    block.make_object_with_policy::<T>(policy)
}
