//! `AnyObj`: the type-erased object type used by the execution engine.
//!
//! The engine frequently stores handles to objects whose static type it does
//! not know — join hash tables hold `Vector<Object>` in the paper's terms
//! (Appendix D.3). `Handle<AnyObj>` is the Rust analogue: a stored handle
//! whose deep-copy and drop behaviour dispatch through the type-code
//! registry, exactly like PC's vTable fixup on dereference (§6.3).

use crate::block::BlockRef;
use crate::error::{PcError, PcResult};
use crate::handle::{AnyHandle, Handle};
use crate::registry::{self, TypeCode};
use crate::traits::PcObjType;

/// A type-erased PC object. Never constructed directly — only pointed to.
pub struct AnyObj(());

impl PcObjType for AnyObj {
    type View<'a> = &'a Handle<AnyObj>;

    fn type_name() -> String {
        "AnyObj".to_string()
    }

    fn type_code() -> TypeCode {
        TypeCode(0x5043_414F) // "PCAO"; only used for registry identity
    }

    fn init_size() -> u32 {
        0
    }

    fn init_at(_b: &BlockRef, _off: u32) -> PcResult<()> {
        Err(PcError::Catalog(
            "AnyObj cannot be constructed; it is a pointee-only type".into(),
        ))
    }

    /// Deep copy dispatches on the *target's* header type code through the
    /// registry — dynamic dispatch via the catalog.
    fn deep_copy_obj(src: &BlockRef, soff: u32, dst: &BlockRef) -> PcResult<u32> {
        let code = src.obj_code(soff);
        let vt = registry::require_vtable(code)?;
        (vt.deep_copy)(src, soff, dst)
    }

    fn drop_obj(b: &BlockRef, off: u32) {
        let code = b.obj_code(off);
        if let Some(vt) = registry::lookup_vtable(code) {
            (vt.drop_obj)(b, off);
        }
    }

    fn make_view(h: &Handle<Self>) -> Self::View<'_> {
        h
    }
}

impl Handle<AnyObj> {
    /// Re-types an erased handle (no check; the engine verified the column
    /// type at batch boundaries).
    pub fn assume<T: PcObjType>(&self) -> Handle<T> {
        AnyHandle::new(self.block().clone(), self.offset()).downcast_unchecked()
    }
}

impl AnyHandle {
    /// Views this handle as a `Handle<AnyObj>` for storage in containers.
    pub fn as_any_obj(&self) -> Handle<AnyObj> {
        self.downcast_unchecked::<AnyObj>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{make_object, AllocScope, PcMap, PcVec};

    #[test]
    fn erased_handles_store_and_deep_copy_by_header_code() {
        let _s = AllocScope::new(1 << 18);
        let v = make_object::<PcVec<f64>>().unwrap();
        v.extend_from_slice(&[1.0, 2.0]).unwrap();

        // A join-table shape: Map<u64, Vector<AnyObj>>.
        let table = make_object::<PcMap<u64, Handle<PcVec<Handle<AnyObj>>>>>().unwrap();
        let bucket = make_object::<PcVec<Handle<AnyObj>>>().unwrap();
        bucket.push(v.erase().as_any_obj()).unwrap();
        table.insert(42u64, bucket).unwrap();

        // Deep copy the whole table to another block; the erased element must
        // be copied through the registry dispatch.
        let dst = crate::BlockRef::new(1 << 18, crate::AllocPolicy::LightweightReuse);
        let copy = table.deep_copy_to(&dst).unwrap();
        let bucket = copy.get(&42u64).unwrap();
        assert_eq!(bucket.len(), 1);
        let vec2: Handle<PcVec<f64>> = bucket.get(0).assume();
        assert_eq!(vec2.as_slice(), &[1.0, 2.0]);
        assert!(vec2.block().same_block(&dst));
    }
}
