//! Error types for the PC object model.

use std::fmt;

/// Result alias used throughout the object model.
pub type PcResult<T> = Result<T, PcError>;

/// Errors raised by the PC object model.
///
/// `BlockFull` is not really an error in the paper's design: it is the
/// "out-of-memory fault" that tells the execution engine the current output
/// page is full and a new one must be rolled (§6.1, Appendix C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcError {
    /// The active allocation block cannot fit the requested allocation.
    BlockFull { needed: usize, free: usize },
    /// No active allocation block is installed on this thread.
    NoActiveBlock,
    /// A handle was downcast to the wrong type.
    TypeMismatch { expected: &'static str, found: u32 },
    /// A type code was encountered whose type was never registered with the
    /// catalog (the analogue of a missing `.so` in PC).
    TypeNotRegistered(u32),
    /// A sealed page failed validation when being opened.
    InvalidPage(String),
    /// The block is still referenced and cannot be sealed.
    BlockShared,
    /// The block has no root object set; sealing would ship unreachable data.
    NoRoot,
    /// Attempted to dereference a null handle.
    NullHandle,
    /// Catalog-level error (duplicate registration, code collision).
    Catalog(String),
    /// A worker node's backend died (detected by the cluster transport).
    /// Recoverable: the master replays the dead worker's stages from
    /// surviving append-only inputs.
    WorkerDead(usize),
    /// Inter-node transport failure (deadline exceeded, channel torn down,
    /// undeliverable frame). Recoverable by stage replay.
    Transport(String),
    /// A memory reservation against a [`MemoryBudget`](crate::MemoryBudget)
    /// could not be satisfied. Like `BlockFull`, this is backpressure rather
    /// than failure: the operator that sees it spills a partition (or retries
    /// after releasing a grant) instead of aborting.
    MemoryPressure { wanted: usize, available: usize },
    /// A compiled TCAP plan failed static verification and was refused by
    /// the executor before planning. The payload is the verifier's rendered
    /// diagnostics (rustc-style, with `TVnnnn` codes).
    PlanRejected(String),
}

impl fmt::Display for PcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcError::BlockFull { needed, free } => {
                write!(f, "allocation block full: need {needed} bytes, {free} free")
            }
            PcError::NoActiveBlock => write!(f, "no active allocation block on this thread"),
            PcError::TypeMismatch { expected, found } => {
                write!(
                    f,
                    "type mismatch: expected {expected}, found type code {found:#x}"
                )
            }
            PcError::TypeNotRegistered(code) => {
                write!(f, "type code {code:#x} is not registered with the catalog")
            }
            PcError::InvalidPage(why) => write!(f, "invalid page: {why}"),
            PcError::BlockShared => write!(f, "block is still referenced and cannot be sealed"),
            PcError::NoRoot => write!(f, "block has no root object"),
            PcError::NullHandle => write!(f, "null handle dereference"),
            PcError::Catalog(why) => write!(f, "catalog error: {why}"),
            PcError::WorkerDead(w) => write!(f, "worker {w} died"),
            PcError::Transport(why) => write!(f, "transport error: {why}"),
            PcError::MemoryPressure { wanted, available } => {
                write!(
                    f,
                    "memory pressure: wanted {wanted} bytes, {available} available in budget"
                )
            }
            PcError::PlanRejected(diags) => {
                write!(f, "plan rejected by the TCAP verifier:\n{diags}")
            }
        }
    }
}

impl std::error::Error for PcError {}
