//! The baseline's serialization layer (its "Kryo").
//!
//! A compact, hand-rolled binary codec. Every stage boundary and every
//! shuffle in the baseline engine pays one encode and one decode per record
//! — the cost the PC object model eliminates by construction.

/// Binary-serializable record. `Sync` is required so shared (cached)
/// partitions can be read by several partition tasks concurrently.
pub trait Codec: Clone + Send + Sync + 'static {
    fn encode(&self, out: &mut Vec<u8>);
    fn decode(inp: &mut &[u8]) -> Self;

    fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::new();
        self.encode(&mut v);
        v
    }
}

#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[inline]
pub fn get_u32(inp: &mut &[u8]) -> u32 {
    let (head, rest) = inp.split_at(4);
    *inp = rest;
    u32::from_le_bytes(head.try_into().unwrap())
}

macro_rules! codec_prim {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn decode(inp: &mut &[u8]) -> Self {
                const N: usize = std::mem::size_of::<$t>();
                let (head, rest) = inp.split_at(N);
                *inp = rest;
                <$t>::from_le_bytes(head.try_into().unwrap())
            }
        }
    )*};
}

codec_prim!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(inp: &mut &[u8]) -> Self {
        let v = inp[0] != 0;
        *inp = &inp[1..];
        v
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.len() as u32);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(inp: &mut &[u8]) -> Self {
        let n = get_u32(inp) as usize;
        let (head, rest) = inp.split_at(n);
        *inp = rest;
        String::from_utf8(head.to_vec()).expect("codec: invalid utf8")
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.len() as u32);
        for x in self {
            x.encode(out);
        }
    }
    fn decode(inp: &mut &[u8]) -> Self {
        let n = get_u32(inp) as usize;
        (0..n).map(|_| T::decode(inp)).collect()
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(inp: &mut &[u8]) -> Self {
        (A::decode(inp), B::decode(inp))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(inp: &mut &[u8]) -> Self {
        (A::decode(inp), B::decode(inp), C::decode(inp))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(inp: &mut &[u8]) -> Self {
        let tag = inp[0];
        *inp = &inp[1..];
        if tag == 0 {
            None
        } else {
            Some(T::decode(inp))
        }
    }
}

/// Encodes a whole partition: count-prefixed records.
pub fn encode_partition<T: Codec>(records: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 16 + 4);
    put_u32(&mut out, records.len() as u32);
    for r in records {
        r.encode(&mut out);
    }
    out
}

/// Decodes a whole partition.
pub fn decode_partition<T: Codec>(mut bytes: &[u8]) -> Vec<T> {
    let n = get_u32(&mut bytes) as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(T::decode(&mut bytes));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v: Vec<(String, Vec<i64>)> = vec![
            ("a".into(), vec![1, 2, 3]),
            ("bb".into(), vec![]),
            ("".into(), vec![-5]),
        ];
        let bytes = encode_partition(&v);
        let back: Vec<(String, Vec<i64>)> = decode_partition(&bytes);
        assert_eq!(v, back);
    }

    #[test]
    fn roundtrip_floats_and_options() {
        let v: Vec<Option<(f64, bool)>> = vec![None, Some((1.5, true)), Some((-0.0, false))];
        let bytes = encode_partition(&v);
        let back: Vec<Option<(f64, bool)>> = decode_partition(&bytes);
        assert_eq!(v, back);
    }
}
