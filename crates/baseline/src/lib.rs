//! # pc-baseline — a managed-runtime dataflow engine (the Spark stand-in)
//!
//! The paper benchmarks PlinyCompute against Apache Spark and attributes
//! Spark's costs to its managed runtime: object (de)serialization at stage
//! and shuffle boundaries, per-record boxed-object allocation, and generic
//! record-at-a-time dispatch. Since Spark itself is a closed substrate for
//! this reproduction, this crate implements a *real, working* local
//! dataflow engine with exactly those cost characteristics:
//!
//! * data at rest between stages is **serialized bytes** (our "Kryo" — the
//!   [`Codec`] trait); every transformation deserializes its input
//!   partition, computes over owned boxed values, and re-serializes its
//!   output (unless explicitly `cache()`d, the "in-RAM deserialized RDD"
//!   configuration of Table 3);
//! * shuffles (`reduce_by_key`, `join`) always serialize, as Spark's do;
//! * the knobs the paper's Spark expert had to turn exist here too:
//!   [`SparkConfig::broadcast_join_hint`] and [`SparkConfig::persist_hint`]
//!   (Table 4's tuning ladder), plus a `Dataset` wrapper that pays an RDD
//!   conversion before iterative work (Table 6's observation).
//!
//! The costs are real — real codecs, real allocation churn, real hash
//! shuffles — not injected sleeps.

pub mod codec;
pub mod dataset;
pub mod rdd;

pub use codec::Codec;
pub use dataset::Dataset;
pub use rdd::{Rdd, SparkConfig, SparkLike, StorageLevel};
