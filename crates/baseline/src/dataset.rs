//! The `Dataset` API wrapper (Table 6).
//!
//! §8.5.3 observes that Spark mllib's Dataset-based k-means reads data
//! through the Dataset API but then *converts to an RDD* for iterative
//! processing — a conversion that dominates at the largest scales. This
//! wrapper reproduces that shape: a `Dataset` holds relationally-encoded
//! (serialized) rows; `to_rdd()` pays a full decode + re-materialization.

use crate::codec::{decode_partition, encode_partition, Codec};
use crate::rdd::{Rdd, SparkLike};

/// A relational, binary-encoded collection (Spark's Dataset/Dataframe).
pub struct Dataset<T: Codec> {
    eng: SparkLike,
    parts: Vec<Vec<u8>>,
    _pd: std::marker::PhantomData<fn() -> T>,
}

impl<T: Codec> Dataset<T> {
    /// Ingests data through the "Parquet" path: rows are immediately
    /// relationally encoded.
    pub fn from_rows(eng: &SparkLike, data: Vec<T>) -> Self {
        let n = eng.config.partitions.max(1);
        let mut parts: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        for (i, x) in data.into_iter().enumerate() {
            parts[i % n].push(x);
        }
        Dataset {
            eng: eng.clone(),
            parts: parts.iter().map(|p| encode_partition(p)).collect(),
            _pd: std::marker::PhantomData,
        }
    }

    pub fn count(&self) -> usize {
        self.parts
            .iter()
            .map(|p| decode_partition::<T>(p).len())
            .sum()
    }

    /// The conversion Spark mllib performs before iterating: fully decode
    /// every partition and re-materialize as an RDD. This is the Table 6
    /// "Dataset API" penalty.
    pub fn to_rdd(&self) -> Rdd<T> {
        let rows: Vec<T> = self
            .parts
            .iter()
            .flat_map(|p| decode_partition::<T>(p))
            .collect();
        self.eng.parallelize(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdd::{SparkConfig, StorageLevel};

    #[test]
    fn dataset_roundtrips_through_rdd() {
        let eng = SparkLike::new(SparkConfig {
            partitions: 2,
            storage: StorageLevel::Deserialized,
            ..Default::default()
        });
        let ds = Dataset::from_rows(&eng, (0i64..50).collect::<Vec<_>>());
        assert_eq!(ds.count(), 50);
        let mut v = ds.to_rdd().collect();
        v.sort_unstable();
        assert_eq!(v, (0..50).collect::<Vec<_>>());
    }
}
