//! The RDD-style engine: lazy-ish partitioned collections with serialized
//! stage boundaries, parallel partition processing, hash shuffles, and the
//! tuning hints of Table 4.

use crate::codec::{decode_partition, encode_partition, Codec};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How stage outputs are stored between transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageLevel {
    /// Serialized bytes (Spark reading/writing its block store; every stage
    /// pays encode+decode). The "hot HDFS" configuration of Table 3.
    Serialized,
    /// Deserialized objects held in RAM (Spark after `.cache()`): stages
    /// still materialize fresh boxed values, but skip the codec.
    Deserialized,
}

/// Engine configuration — the knobs the paper's Spark expert tuned.
#[derive(Debug, Clone)]
pub struct SparkConfig {
    pub partitions: usize,
    pub storage: StorageLevel,
    /// Force broadcast joins (Table 4's "join hint").
    pub broadcast_join_hint: bool,
    /// Persist iteration-invariant join results (Table 4's "forced persist").
    pub persist_hint: bool,
}

impl Default for SparkConfig {
    fn default() -> Self {
        SparkConfig {
            partitions: 4,
            storage: StorageLevel::Serialized,
            broadcast_join_hint: false,
            persist_hint: false,
        }
    }
}

/// Engine handle: configuration plus cost accounting.
#[derive(Clone)]
pub struct SparkLike {
    pub config: SparkConfig,
    stats: Arc<EngineStats>,
}

#[derive(Default)]
struct EngineStats {
    bytes_serialized: AtomicU64,
    bytes_shuffled: AtomicU64,
    records_processed: AtomicU64,
}

impl SparkLike {
    pub fn new(config: SparkConfig) -> Self {
        SparkLike {
            config,
            stats: Arc::new(EngineStats::default()),
        }
    }

    pub fn bytes_serialized(&self) -> u64 {
        self.stats.bytes_serialized.load(Ordering::Relaxed)
    }

    pub fn bytes_shuffled(&self) -> u64 {
        self.stats.bytes_shuffled.load(Ordering::Relaxed)
    }

    pub fn records_processed(&self) -> u64 {
        self.stats.records_processed.load(Ordering::Relaxed)
    }

    /// Distributes a collection over the configured partitions.
    pub fn parallelize<T: Codec>(&self, data: Vec<T>) -> Rdd<T> {
        let n = self.config.partitions.max(1);
        let mut parts: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        for (i, x) in data.into_iter().enumerate() {
            parts[i % n].push(x);
        }
        Rdd::from_vecs(self.clone(), parts, self.config.storage)
    }
}

/// One partition of an RDD.
enum Partition<T> {
    Ser(Vec<u8>),
    Deser(Arc<Vec<T>>),
}

impl<T: Codec> Partition<T> {
    fn read(&self, eng: &SparkLike) -> Vec<T> {
        match self {
            Partition::Ser(bytes) => {
                eng.stats
                    .bytes_serialized
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                decode_partition(bytes)
            }
            Partition::Deser(v) => v.as_ref().clone(),
        }
    }
}

/// A partitioned, immutable collection.
pub struct Rdd<T: Codec> {
    eng: SparkLike,
    parts: Vec<Arc<Partition<T>>>,
}

impl<T: Codec> Clone for Rdd<T> {
    fn clone(&self) -> Self {
        Rdd {
            eng: self.eng.clone(),
            parts: self.parts.clone(),
        }
    }
}

fn key_hash<K: Hash>(k: &K) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    k.hash(&mut h);
    h.finish()
}

impl<T: Codec> Rdd<T> {
    fn from_vecs(eng: SparkLike, parts: Vec<Vec<T>>, storage: StorageLevel) -> Self {
        let parts = parts
            .into_iter()
            .map(|v| {
                Arc::new(match storage {
                    StorageLevel::Serialized => {
                        let bytes = encode_partition(&v);
                        eng.stats
                            .bytes_serialized
                            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                        Partition::Ser(bytes)
                    }
                    StorageLevel::Deserialized => Partition::Deser(Arc::new(v)),
                })
            })
            .collect();
        Rdd { eng, parts }
    }

    pub fn num_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Runs `f` over each partition in parallel, producing a new RDD stored
    /// at the engine's storage level (the per-stage codec cost).
    pub fn map_partitions<U: Codec>(&self, f: impl Fn(Vec<T>) -> Vec<U> + Send + Sync) -> Rdd<U> {
        let eng = &self.eng;
        let outs: Vec<Vec<U>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .parts
                .iter()
                .map(|p| {
                    let f = &f;
                    s.spawn(move || {
                        let input = p.read(eng);
                        eng.stats
                            .records_processed
                            .fetch_add(input.len() as u64, Ordering::Relaxed);
                        f(input)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("partition task"))
                .collect()
        });
        Rdd::from_vecs(self.eng.clone(), outs, self.eng.config.storage)
    }

    pub fn map<U: Codec>(&self, f: impl Fn(T) -> U + Send + Sync) -> Rdd<U> {
        self.map_partitions(|v| v.into_iter().map(&f).collect())
    }

    pub fn filter(&self, f: impl Fn(&T) -> bool + Send + Sync) -> Rdd<T> {
        self.map_partitions(|v| v.into_iter().filter(|x| f(x)).collect())
    }

    pub fn flat_map<U: Codec>(&self, f: impl Fn(T) -> Vec<U> + Send + Sync) -> Rdd<U> {
        self.map_partitions(|v| v.into_iter().flat_map(&f).collect())
    }

    /// Pins the RDD in RAM as deserialized objects (`.cache()` /
    /// `.persist()` — Table 4's third rung).
    pub fn cache(&self) -> Rdd<T> {
        let vecs: Vec<Vec<T>> = self.parts.iter().map(|p| p.read(&self.eng)).collect();
        Rdd::from_vecs(self.eng.clone(), vecs, StorageLevel::Deserialized)
    }

    /// Gathers every record to the driver.
    pub fn collect(&self) -> Vec<T> {
        let mut out = Vec::new();
        for p in &self.parts {
            out.extend(p.read(&self.eng));
        }
        out
    }

    pub fn count(&self) -> usize {
        self.parts.iter().map(|p| p.read(&self.eng).len()).sum()
    }

    /// Tree-reduce to the driver.
    pub fn reduce(&self, f: impl Fn(T, T) -> T + Send + Sync) -> Option<T> {
        self.collect().into_iter().reduce(f)
    }
}

impl<K, V> Rdd<(K, V)>
where
    K: Codec + Hash + Eq,
    V: Codec,
{
    /// Hash shuffle + per-key fold. The shuffle always serializes (as
    /// Spark's does), regardless of storage level.
    pub fn reduce_by_key(&self, f: impl Fn(V, V) -> V + Send + Sync) -> Rdd<(K, V)> {
        let n = self.parts.len();
        let eng = &self.eng;
        // Map side: partition each record by key hash and serialize.
        let shuffled: Vec<Vec<Vec<u8>>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .parts
                .iter()
                .map(|p| {
                    s.spawn(move || {
                        let mut buckets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
                        for kv in p.read(eng) {
                            let b = (key_hash(&kv.0) % n as u64) as usize;
                            buckets[b].push(kv);
                        }
                        buckets
                            .into_iter()
                            .map(|b| encode_partition(&b))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("map side"))
                .collect()
        });
        for bl in shuffled.iter().flatten() {
            eng.stats
                .bytes_shuffled
                .fetch_add(bl.len() as u64, Ordering::Relaxed);
        }
        // Reduce side.
        let reduced: Vec<Vec<(K, V)>> = std::thread::scope(|s| {
            let shuffled = &shuffled;
            let handles: Vec<_> = (0..n)
                .map(|r| {
                    let f = &f;
                    s.spawn(move || {
                        let mut table: HashMap<K, V> = HashMap::new();
                        for m in shuffled {
                            for (k, v) in decode_partition::<(K, V)>(&m[r]) {
                                match table.remove(&k) {
                                    None => {
                                        table.insert(k, v);
                                    }
                                    Some(old) => {
                                        table.insert(k, f(old, v));
                                    }
                                }
                            }
                        }
                        table.into_iter().collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("reduce side"))
                .collect()
        });
        Rdd::from_vecs(self.eng.clone(), reduced, self.eng.config.storage)
    }

    /// Equi-join. Honors the broadcast hint: with it, the (assumed small)
    /// right side is collected to the driver and shipped to every partition;
    /// without it, both sides hash-shuffle.
    pub fn join<W: Codec>(&self, other: &Rdd<(K, W)>) -> Rdd<(K, (V, W))> {
        if self.eng.config.broadcast_join_hint {
            let small: Vec<(K, W)> = other.collect();
            let bytes = encode_partition(&small);
            // Broadcast: one copy per partition over the "network".
            self.eng
                .stats
                .bytes_shuffled
                .fetch_add((bytes.len() * self.parts.len()) as u64, Ordering::Relaxed);
            let table: Arc<HashMap<K, Vec<W>>> = Arc::new({
                let mut t: HashMap<K, Vec<W>> = HashMap::new();
                for (k, w) in decode_partition::<(K, W)>(&bytes) {
                    t.entry(k).or_default().push(w);
                }
                t
            });
            let table2 = table.clone();
            return self.map_partitions(move |v| {
                let mut out = Vec::new();
                for (k, x) in v {
                    if let Some(ws) = table2.get(&k) {
                        for w in ws {
                            out.push((k.clone(), (x.clone(), w.clone())));
                        }
                    }
                }
                out
            });
        }
        // Shuffle join: repartition both sides by key hash.
        let n = self.parts.len();
        let left = self.shuffle_by_key();
        let right = other.shuffle_by_key();
        let joined: Vec<Vec<(K, (V, W))>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|r| {
                    let l = &left[r];
                    let rt = &right[r];
                    s.spawn(move || {
                        let mut table: HashMap<K, Vec<W>> = HashMap::new();
                        for (k, w) in decode_partition::<(K, W)>(rt) {
                            table.entry(k).or_default().push(w);
                        }
                        let mut out = Vec::new();
                        for (k, v) in decode_partition::<(K, V)>(l) {
                            if let Some(ws) = table.get(&k) {
                                for w in ws {
                                    out.push((k.clone(), (v.clone(), w.clone())));
                                }
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("join task"))
                .collect()
        });
        Rdd::from_vecs(self.eng.clone(), joined, self.eng.config.storage)
    }

    /// Map-side repartition by key hash; returns per-target serialized
    /// blobs (merged across source partitions).
    fn shuffle_by_key(&self) -> Vec<Vec<u8>> {
        let n = self.parts.len();
        let eng = &self.eng;
        let merged: Vec<Mutex<Vec<(K, V)>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|s| {
            let merged = &merged;
            let handles: Vec<_> = self
                .parts
                .iter()
                .map(|p| {
                    s.spawn(move || {
                        let mut buckets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
                        for kv in p.read(eng) {
                            let b = (key_hash(&kv.0) % n as u64) as usize;
                            buckets[b].push(kv);
                        }
                        for (b, bucket) in buckets.into_iter().enumerate() {
                            merged[b].lock().extend(bucket);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("shuffle task");
            }
        });
        merged
            .into_iter()
            .map(|m| {
                let blob = encode_partition(&m.into_inner());
                eng.stats
                    .bytes_shuffled
                    .fetch_add(blob.len() as u64, Ordering::Relaxed);
                blob
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eng(storage: StorageLevel) -> SparkLike {
        SparkLike::new(SparkConfig {
            partitions: 3,
            storage,
            ..Default::default()
        })
    }

    #[test]
    fn map_filter_collect_roundtrip() {
        let e = eng(StorageLevel::Serialized);
        let r = e.parallelize((0i64..100).collect());
        let out = r.map(|x| x * 2).filter(|x| *x % 3 == 0).collect();
        let mut want: Vec<i64> = (0..100).map(|x| x * 2).filter(|x| x % 3 == 0).collect();
        let mut got = out;
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(
            e.bytes_serialized() > 0,
            "serialized storage must run the codec"
        );
    }

    #[test]
    fn cached_rdd_skips_codec_on_read() {
        let e = eng(StorageLevel::Serialized);
        let r = e.parallelize((0i64..1000).collect()).cache();
        let before = e.bytes_serialized();
        let _ = r.map(|x| x + 1).count();
        // The map's *input* read was codec-free; only the output re-encoded.
        assert!(
            e.bytes_serialized() > before,
            "stage output still serializes"
        );
    }

    #[test]
    fn reduce_by_key_matches_hashmap() {
        let e = eng(StorageLevel::Serialized);
        let data: Vec<(i64, i64)> = (0..500).map(|i| (i % 7, i)).collect();
        let mut want: HashMap<i64, i64> = HashMap::new();
        for (k, v) in &data {
            *want.entry(*k).or_insert(0) += v;
        }
        let r = e.parallelize(data).reduce_by_key(|a, b| a + b);
        let got: HashMap<i64, i64> = r.collect().into_iter().collect();
        assert_eq!(got, want);
        assert!(e.bytes_shuffled() > 0);
    }

    #[test]
    fn join_shuffle_and_broadcast_agree() {
        let data_l: Vec<(i64, i64)> = (0..200).map(|i| (i % 10, i)).collect();
        let data_r: Vec<(i64, String)> = (0..10).map(|i| (i, format!("g{i}"))).collect();

        let run = |hint: bool| {
            let e = SparkLike::new(SparkConfig {
                partitions: 3,
                storage: StorageLevel::Serialized,
                broadcast_join_hint: hint,
                persist_hint: false,
            });
            let l = e.parallelize(data_l.clone());
            let r = e.parallelize(data_r.clone());
            let mut out = l.join(&r).collect();
            out.sort_by_key(|(k, (v, _))| (*k, *v));
            out
        };
        assert_eq!(run(false), run(true));
        assert_eq!(run(false).len(), 200);
    }
}
