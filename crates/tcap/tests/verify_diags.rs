//! Golden-file snapshots of the verifier's rendered diagnostics.
//!
//! `tests/verify_diags/` holds one minimal TCAP program per diagnostic
//! code (`TVnnnn.tcap`) next to the exact rendering the verifier must
//! produce for it (`TVnnnn.expected`). The harness parses each program,
//! verifies it, and compares the rendering byte-for-byte — so any change
//! to a message, note, span, or the rustc-style frame shows up as a
//! reviewable diff in the `.expected` file, not as a silent drift.
//!
//! To regenerate after an intentional wording change:
//!
//! ```text
//! UPDATE_EXPECT=1 cargo test -p pc-tcap --test verify_diags
//! ```

use std::path::{Path, PathBuf};

use pc_tcap::parse::parse_program;
use pc_tcap::verify;

/// Every code the verifier can emit. A `.tcap` trigger program must exist
/// for each — deleting one from the corpus fails the suite.
const ALL_CODES: &[&str] = &[
    "TV0001", "TV0002", "TV0003", "TV0004", "TV0005", "TV0006", "TV0007", "TV0008", "TV0009",
    "TV0101", "TV0102", "TV0103", "TV0104", "TV0105", "TV0106", "TV0201", "TV0202",
];

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/verify_diags")
}

fn update_mode() -> bool {
    std::env::var("UPDATE_EXPECT")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Renders one trigger program and checks it against its `.expected` file.
/// Returns an error description instead of panicking so the caller can
/// report every drifted snapshot at once.
fn check_one(code: &str) -> Result<(), String> {
    let dir = corpus_dir();
    let tcap_path = dir.join(format!("{code}.tcap"));
    let expected_path = dir.join(format!("{code}.expected"));

    let src = std::fs::read_to_string(&tcap_path).map_err(|e| {
        format!(
            "{code}: missing trigger program {}: {e}",
            tcap_path.display()
        )
    })?;
    let prog = parse_program(&src).map_err(|e| format!("{code}: trigger does not parse: {e}"))?;
    let report = verify::verify(&prog);

    // The program must actually trigger the code it documents.
    if !report.has_code(code) {
        return Err(format!(
            "{code}: trigger program no longer emits it; got {:?}\n{}",
            report.codes(),
            report.render()
        ));
    }
    let rendered = report.render();

    if update_mode() {
        std::fs::write(&expected_path, &rendered)
            .map_err(|e| format!("{code}: cannot write {}: {e}", expected_path.display()))?;
        return Ok(());
    }

    let expected = std::fs::read_to_string(&expected_path).map_err(|_| {
        format!(
            "{code}: no golden file; run with UPDATE_EXPECT=1 to create {}",
            expected_path.display()
        )
    })?;
    if rendered != expected {
        return Err(format!(
            "{code}: rendering drifted from the golden file.\n\
             --- expected ({}) ---\n{expected}\n--- got ---\n{rendered}\n\
             (UPDATE_EXPECT=1 regenerates if the change is intentional)",
            expected_path.display()
        ));
    }
    Ok(())
}

#[test]
fn every_diagnostic_code_has_a_golden_rendering() {
    let failures: Vec<String> = ALL_CODES
        .iter()
        .filter_map(|code| check_one(code).err())
        .collect();
    assert!(
        failures.is_empty(),
        "{} snapshot failure(s):\n\n{}",
        failures.len(),
        failures.join("\n\n")
    );
}

#[test]
fn corpus_has_no_stray_files() {
    // Every file in the directory must belong to a known code: orphaned
    // snapshots (e.g. from a renamed code) rot silently otherwise.
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir exists") {
        let name = entry.expect("readable entry").file_name();
        let name = name.to_string_lossy();
        let stem = name
            .strip_suffix(".tcap")
            .or_else(|| name.strip_suffix(".expected"));
        match stem {
            Some(code) => assert!(
                ALL_CODES.contains(&code),
                "stray snapshot for unknown code: {name}"
            ),
            None => panic!("unexpected file in verify_diags corpus: {name}"),
        }
    }
}

#[test]
fn error_codes_render_as_errors_and_warnings_as_warnings() {
    for code in ALL_CODES {
        let src = std::fs::read_to_string(corpus_dir().join(format!("{code}.tcap")))
            .expect("trigger exists");
        let report = verify::verify(&parse_program(&src).expect("parses"));
        let is_warning_code = code.starts_with("TV02");
        if is_warning_code {
            assert!(
                report.is_clean(),
                "{code} is a lint and must not fail verification:\n{}",
                report.render()
            );
            assert!(
                report.warnings().count() > 0,
                "{code}: no warnings reported"
            );
        } else {
            assert!(
                !report.is_clean(),
                "{code} is an error and must fail verification"
            );
        }
    }
}
