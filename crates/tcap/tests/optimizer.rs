//! Optimizer tests built directly from the two worked examples of §7.

use pc_tcap::ir::{meta_get, TcapOp};
use pc_tcap::{optimize, parse_program};

/// §7's first example: `getSalary() > 50000 && getSalary() < 100000`
/// compiles to two `method_call` APPLYs on the same object column; the
/// second must be removed as redundant.
const REDUNDANT_CALL: &str = r#"
In(emp) <= INPUT('db', 'emps', 'Sel_43', []);
JK2_1(emp,mt1) <= APPLY(In(emp), In(emp), 'Sel_43', 'method_call_1',
    [('type', 'methodCall'), ('methodName', 'getSalary')]);
JK2_2(emp,bl1) <= APPLY(JK2_1(mt1), JK2_1(emp), 'Sel_43', 'gt_1',
    [('type', 'const_comparison'), ('op', 'gt')]);
JK2_3(emp,bl1,mt2) <= APPLY(JK2_2(emp), JK2_2(emp,bl1), 'Sel_43', 'method_call_2',
    [('type', 'methodCall'), ('methodName', 'getSalary')]);
JK2_4(emp,bl1,bl2) <= APPLY(JK2_3(mt2), JK2_3(emp,bl1), 'Sel_43', 'lt_1',
    [('type', 'const_comparison'), ('op', 'lt')]);
JK2_5(emp,bl3) <= APPLY(JK2_4(bl1,bl2), JK2_4(emp), 'Sel_43', 'and_1',
    [('type', 'bool_and')]);
JK2_6(emp) <= FILTER(JK2_5(bl3), JK2_5(emp), 'Sel_43', []);
"#;

#[test]
fn redundant_method_call_is_eliminated() {
    let mut prog = parse_program(REDUNDANT_CALL).unwrap();
    let report = optimize(&mut prog);
    assert_eq!(report.redundant_applies_removed, 1);

    // Exactly one method_call APPLY must remain.
    let method_calls = prog
        .stmts
        .iter()
        .filter(|s| {
            matches!(&s.op, TcapOp::Apply { meta, .. }
                if meta_get(meta, "type") == Some("methodCall"))
        })
        .count();
    assert_eq!(method_calls, 1, "optimized program:\n{prog}");

    // The paper's optimized shape has 6 statements (INPUT + 5).
    assert_eq!(prog.stmts.len(), 6, "optimized program:\n{prog}");

    // The `lt` comparison must now consume mt1 — the carried result of the
    // first call.
    let lt = prog
        .stmts
        .iter()
        .find(|s| matches!(&s.op, TcapOp::Apply { meta, .. } if meta_get(meta, "op") == Some("lt")))
        .expect("lt comparison survives");
    match &lt.op {
        TcapOp::Apply { input, .. } => assert_eq!(input.cols, vec!["mt1"]),
        _ => unreachable!(),
    }
}

#[test]
fn redundant_elimination_is_idempotent() {
    let mut prog = parse_program(REDUNDANT_CALL).unwrap();
    optimize(&mut prog);
    let once = prog.clone();
    let report = optimize(&mut prog);
    assert_eq!(report.redundant_applies_removed, 0);
    assert_eq!(prog, once);
}

/// §7's second example: a join of Emp and Sup where
/// `emp.getSalary() > 50000` can be evaluated before the join.
const PUSHDOWN: &str = r#"
InSup(sup) <= INPUT('db', 'sups', 'Join_42', []);
InEmp(emp) <= INPUT('db', 'emps', 'Join_42', []);
JK2_1(sup,mt1) <= APPLY(InSup(sup), InSup(sup), 'Join_42', 'att_access_1',
    [('type', 'attAccess'), ('attName', 'name')]);
JK2_2(sup,hash1) <= HASH(JK2_1(mt1), JK2_1(sup), 'Join_42', []);
JK2_3(emp,mt2) <= APPLY(InEmp(emp), InEmp(emp), 'Join_42', 'method_call_1',
    [('type', 'methodCall'), ('methodName', 'getSupervisor')]);
JK2_4(emp,hash2) <= HASH(JK2_3(mt2), JK2_3(emp), 'Join_42', []);
JK2_5(sup,emp) <= JOIN(JK2_2(hash1), JK2_2(sup), JK2_4(hash2), JK2_4(emp), 'Join_42', []);
JK2_6(sup,emp,mt3) <= APPLY(JK2_5(emp), JK2_5(sup,emp), 'Join_42', 'method_call_2',
    [('type', 'methodCall'), ('methodName', 'getSalary')]);
JK2_7(sup,emp,bool1) <= APPLY(JK2_6(mt3), JK2_6(sup,emp), 'Join_42', 'gt_1',
    [('type', 'const_comparison'), ('op', 'gt')]);
JK2_8(sup,emp,bool1,mt4) <= APPLY(JK2_7(emp), JK2_7(sup,emp,bool1), 'Join_42', 'method_call_3',
    [('type', 'methodCall'), ('methodName', 'getSupervisor')]);
JK2_9(sup,emp,bool1,mt4,mt5) <= APPLY(JK2_8(sup), JK2_8(sup,emp,bool1,mt4), 'Join_42', 'att_access_2',
    [('type', 'attAccess'), ('attName', 'name')]);
JK2_10(sup,emp,bool1,bool2) <= APPLY(JK2_9(mt4,mt5), JK2_9(sup,emp,bool1), 'Join_42', 'eq_1',
    [('type', 'equalityCheck')]);
JK2_11(sup,emp,bool3) <= APPLY(JK2_10(bool1,bool2), JK2_10(sup,emp), 'Join_42', 'and_1',
    [('type', 'bool_and')]);
JK2_12(sup,emp) <= FILTER(JK2_11(bool3), JK2_11(sup,emp), 'Join_42', []);
"#;

#[test]
fn single_input_conjunct_is_pushed_below_the_join() {
    let mut prog = parse_program(PUSHDOWN).unwrap();
    let report = optimize(&mut prog);
    assert!(
        report.selections_pushed_down >= 1,
        "report: {report:?}\n{prog}"
    );

    // A FILTER must now exist *before* the join in topological order, on the
    // employee side.
    let join_pos = prog
        .stmts
        .iter()
        .position(|s| matches!(s.op, TcapOp::Join { .. }))
        .expect("join survives");
    let pushed_filter = prog.stmts[..join_pos]
        .iter()
        .position(|s| matches!(s.op, TcapOp::Filter { .. }))
        .expect("a FILTER must be evaluated before the join");
    let _ = pushed_filter;

    // The salary comparison must happen before the join too.
    let salary_call = prog
        .stmts
        .iter()
        .position(|s| {
            matches!(&s.op, TcapOp::Apply { meta, .. }
                if meta_get(meta, "methodName") == Some("getSalary"))
        })
        .expect("salary call survives");
    assert!(
        salary_call < join_pos,
        "salary call must be pre-join:\n{prog}"
    );

    // The bool_and is gone: only one residual predicate remains after the join.
    let ands = prog
        .stmts
        .iter()
        .filter(|s| matches!(&s.op, TcapOp::Apply { meta, .. } if meta_get(meta, "type") == Some("bool_and")))
        .count();
    assert_eq!(ands, 0, "bool_and should collapse:\n{prog}");
}

#[test]
fn pushdown_keeps_a_runnable_dag() {
    let mut prog = parse_program(PUSHDOWN).unwrap();
    optimize(&mut prog);
    // Every referenced list must have a producer, and every referenced
    // column must be in its producer's output declaration.
    for s in &prog.stmts {
        for list in s.op.input_lists() {
            let producer = prog
                .producer(list)
                .unwrap_or_else(|| panic!("dangling list {list} in:\n{prog}"));
            let _ = producer;
        }
    }
    let check_cols = |list: &str, cols: &[String]| {
        let p = prog.producer(list).unwrap();
        for c in cols {
            assert!(
                p.output.cols.contains(c),
                "column {c} not produced by {list} in:\n{prog}"
            );
        }
    };
    for s in &prog.stmts {
        match &s.op {
            TcapOp::Apply { input, copy, .. }
            | TcapOp::FlatMap { input, copy, .. }
            | TcapOp::Hash { input, copy, .. } => {
                check_cols(&input.list, &input.cols);
                check_cols(&copy.list, &copy.cols);
            }
            TcapOp::Filter { bool_col, copy, .. } => {
                check_cols(&bool_col.list, &bool_col.cols);
                check_cols(&copy.list, &copy.cols);
            }
            TcapOp::Join {
                lhs_hash,
                lhs_copy,
                rhs_hash,
                rhs_copy,
                ..
            } => {
                check_cols(&lhs_hash.list, &lhs_hash.cols);
                check_cols(&lhs_copy.list, &lhs_copy.cols);
                check_cols(&rhs_hash.list, &rhs_hash.cols);
                check_cols(&rhs_copy.list, &rhs_copy.cols);
            }
            TcapOp::Aggregate { key, value, .. } => {
                check_cols(&key.list, &key.cols);
                check_cols(&value.list, &value.cols);
            }
            TcapOp::Output { input, .. } => check_cols(&input.list, &input.cols),
            TcapOp::Input { .. } => {}
        }
    }
}

#[test]
fn dead_columns_are_pruned_with_output_sinks() {
    let src = r#"
In(emp) <= INPUT('db', 'emps', 'Sel_1', []);
A(emp,x) <= APPLY(In(emp), In(emp), 'Sel_1', 'm1', [('type', 'methodCall'), ('methodName', 'getX')]);
B(emp,x,y) <= APPLY(A(emp), A(emp,x), 'Sel_1', 'm2', [('type', 'methodCall'), ('methodName', 'getY')]);
Out() <= OUTPUT(B(y), 'db', 'out', 'Writer_1', []);
"#;
    let mut prog = parse_program(src).unwrap();
    let report = optimize(&mut prog);
    // `x` is carried into B but never used downstream → pruned. `emp` in B
    // is also unused by the OUTPUT → pruned.
    assert!(report.dead_columns_pruned >= 2, "report {report:?}\n{prog}");
    let b = prog.producer("B").unwrap();
    assert!(!b.output.cols.contains(&"x".to_string()), "{prog}");
}

#[test]
fn unreachable_statements_are_removed() {
    let src = r#"
In(emp) <= INPUT('db', 'emps', 'Sel_1', []);
Dead(emp,z) <= APPLY(In(emp), In(emp), 'Sel_1', 'm3', [('type', 'methodCall'), ('methodName', 'getZ')]);
A(emp,x) <= APPLY(In(emp), In(emp), 'Sel_1', 'm1', [('type', 'methodCall'), ('methodName', 'getX')]);
Out() <= OUTPUT(A(x), 'db', 'out', 'Writer_1', []);
"#;
    let mut prog = parse_program(src).unwrap();
    let report = optimize(&mut prog);
    assert!(report.dead_statements_removed >= 1);
    assert!(prog.producer("Dead").is_none());
}
