//! Property tests: print→parse is the identity on arbitrary well-formed
//! TCAP programs, and the optimizer is idempotent and validity-preserving.

use pc_tcap::ir::{ColRef, TcapOp, TcapProgram, TcapStmt, VecListDecl};
use pc_tcap::{optimize, parse_program};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

fn meta() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(("[a-zA-Z]{1,8}", "[a-zA-Z0-9_<>=]{0,10}"), 0..3)
        .prop_map(|v| v.into_iter().collect())
}

/// Builds a random but *well-formed* linear program: each statement reads
/// the previous statement's output list and existing columns.
fn program() -> impl Strategy<Value = TcapProgram> {
    (
        ident(),
        proptest::collection::vec((ident(), meta(), any::<bool>()), 1..8),
    )
        .prop_map(|(src_col, steps)| {
            let mut stmts = vec![TcapStmt {
                output: VecListDecl {
                    name: "In_0".into(),
                    cols: vec![src_col.clone()],
                },
                op: TcapOp::Input {
                    db: "db".into(),
                    set: "set".into(),
                    computation: "Reader_0".into(),
                    meta: vec![],
                },
            }];
            let mut cur_list = "In_0".to_string();
            let mut cur_cols = vec![src_col];
            for (i, (col, m, is_filter)) in steps.into_iter().enumerate() {
                let name = format!("W_{}", i + 1);
                if is_filter && cur_cols.len() > 1 {
                    let bool_col = cur_cols.last().unwrap().clone();
                    let keep: Vec<String> = cur_cols[..cur_cols.len() - 1].to_vec();
                    stmts.push(TcapStmt {
                        output: VecListDecl {
                            name: name.clone(),
                            cols: keep.clone(),
                        },
                        op: TcapOp::Filter {
                            bool_col: ColRef {
                                list: cur_list.clone(),
                                cols: vec![bool_col],
                            },
                            copy: ColRef {
                                list: cur_list.clone(),
                                cols: keep.clone(),
                            },
                            computation: format!("Comp_{i}"),
                            meta: m,
                        },
                    });
                    cur_cols = keep;
                } else {
                    let new_col = format!("{col}{}", i + 1);
                    let mut out_cols = cur_cols.clone();
                    out_cols.push(new_col.clone());
                    stmts.push(TcapStmt {
                        output: VecListDecl {
                            name: name.clone(),
                            cols: out_cols.clone(),
                        },
                        op: TcapOp::Apply {
                            input: ColRef {
                                list: cur_list.clone(),
                                cols: vec![cur_cols[0].clone()],
                            },
                            copy: ColRef {
                                list: cur_list.clone(),
                                cols: cur_cols.clone(),
                            },
                            computation: format!("Comp_{i}"),
                            stage: format!("stage_{i}"),
                            meta: m,
                        },
                    });
                    cur_cols = out_cols;
                }
                cur_list = name;
            }
            stmts.push(TcapStmt {
                output: VecListDecl {
                    name: "Out_z".into(),
                    cols: vec![],
                },
                op: TcapOp::Output {
                    input: ColRef {
                        list: cur_list,
                        cols: vec![cur_cols[0].clone()],
                    },
                    db: "db".into(),
                    set: "out".into(),
                    computation: "Writer_z".into(),
                    meta: vec![],
                },
            });
            TcapProgram { stmts }
        })
}

/// Every referenced list has a producer and every referenced column exists
/// in its producer's declaration.
fn is_well_formed(prog: &TcapProgram) -> bool {
    for s in &prog.stmts {
        for list in s.op.input_lists() {
            let Some(p) = prog.producer(list) else {
                return false;
            };
            let refs: Vec<&ColRef> = match &s.op {
                TcapOp::Apply { input, copy, .. }
                | TcapOp::FlatMap { input, copy, .. }
                | TcapOp::Hash { input, copy, .. } => vec![input, copy],
                TcapOp::Filter { bool_col, copy, .. } => vec![bool_col, copy],
                TcapOp::Join {
                    lhs_hash,
                    lhs_copy,
                    rhs_hash,
                    rhs_copy,
                    ..
                } => {
                    vec![lhs_hash, lhs_copy, rhs_hash, rhs_copy]
                }
                TcapOp::Aggregate { key, value, .. } => vec![key, value],
                TcapOp::Output { input, .. } => vec![input],
                TcapOp::Input { .. } => vec![],
            };
            for r in refs {
                if r.list == *list && !r.cols.iter().all(|c| p.output.cols.contains(c)) {
                    return false;
                }
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_roundtrip(prog in program()) {
        let printed = prog.to_string();
        let parsed = parse_program(&printed).unwrap();
        prop_assert_eq!(prog, parsed);
    }

    #[test]
    fn optimizer_preserves_well_formedness(prog in program()) {
        prop_assert!(is_well_formed(&prog));
        let mut p = prog.clone();
        optimize(&mut p);
        prop_assert!(is_well_formed(&p), "optimizer broke:\n{}\ninto:\n{}", prog, p);
    }

    #[test]
    fn optimizer_is_idempotent(prog in program()) {
        let mut once = prog.clone();
        optimize(&mut once);
        let mut twice = once.clone();
        let report = optimize(&mut twice);
        prop_assert_eq!(once, twice, "second pass changed the program: {:?}", report);
    }
}
