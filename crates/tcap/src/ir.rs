//! The TCAP statement and program representation.

use std::fmt;

/// A vector-list declaration: the left-hand side of a statement,
/// e.g. `WDNm_1(dep,emp,sup,nm1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecListDecl {
    pub name: String,
    pub cols: Vec<String>,
}

impl VecListDecl {
    pub fn new(name: impl Into<String>, cols: &[&str]) -> Self {
        VecListDecl {
            name: name.into(),
            cols: cols.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// A reference to (a subset of) the columns of a named vector list,
/// e.g. `In(dep)` or `WDNm_1(dep,emp,sup,nm1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColRef {
    pub list: String,
    pub cols: Vec<String>,
}

impl ColRef {
    pub fn new(list: impl Into<String>, cols: &[&str]) -> Self {
        ColRef {
            list: list.into(),
            cols: cols.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Key-value metadata attached to a TCAP operation. "Only informational and
/// does not affect execution... but vital during optimization" (§5.2).
pub type Meta = Vec<(String, String)>;

/// Looks up a metadata key.
pub fn meta_get<'a>(meta: &'a Meta, key: &str) -> Option<&'a str> {
    meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

/// One TCAP operation (the right-hand side of a statement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcapOp {
    /// Reads a stored set into the initial vector list.
    /// `In(emp) <= INPUT('mydb', 'myset', 'Reader_1', []);`
    Input {
        db: String,
        set: String,
        computation: String,
        meta: Meta,
    },
    /// Applies a compiled pipeline stage to `input` columns, appending one
    /// new column; `copy` columns are shallow-copied through.
    Apply {
        input: ColRef,
        copy: ColRef,
        computation: String,
        stage: String,
        meta: Meta,
    },
    /// Keeps only the rows whose `bool_col` is true.
    Filter {
        bool_col: ColRef,
        copy: ColRef,
        computation: String,
        meta: Meta,
    },
    /// Hashes the given column(s) into a new hash column (join key prep).
    Hash {
        input: ColRef,
        copy: ColRef,
        computation: String,
        meta: Meta,
    },
    /// Equi-join on two hash columns; emits the union of both copy lists.
    Join {
        lhs_hash: ColRef,
        lhs_copy: ColRef,
        rhs_hash: ColRef,
        rhs_copy: ColRef,
        computation: String,
        meta: Meta,
    },
    /// Applies a set-valued stage: each input row yields zero or more output
    /// rows; `copy` columns are replicated accordingly (lowering of
    /// `MultiSelectionComp`; an op-set extension documented in DESIGN.md).
    FlatMap {
        input: ColRef,
        copy: ColRef,
        computation: String,
        stage: String,
        meta: Meta,
    },
    /// Aggregates `value` by `key` (the pipe sink of an `AggregateComp`).
    Aggregate {
        key: ColRef,
        value: ColRef,
        computation: String,
        meta: Meta,
    },
    /// Writes a column of objects to a stored set.
    Output {
        input: ColRef,
        db: String,
        set: String,
        computation: String,
        meta: Meta,
    },
}

impl TcapOp {
    /// Name of the `Computation` object this op was compiled from.
    pub fn computation(&self) -> &str {
        match self {
            TcapOp::Input { computation, .. }
            | TcapOp::Apply { computation, .. }
            | TcapOp::Filter { computation, .. }
            | TcapOp::Hash { computation, .. }
            | TcapOp::Join { computation, .. }
            | TcapOp::FlatMap { computation, .. }
            | TcapOp::Aggregate { computation, .. }
            | TcapOp::Output { computation, .. } => computation,
        }
    }

    /// The operation's metadata map.
    pub fn meta(&self) -> &Meta {
        match self {
            TcapOp::Input { meta, .. }
            | TcapOp::Apply { meta, .. }
            | TcapOp::Filter { meta, .. }
            | TcapOp::Hash { meta, .. }
            | TcapOp::Join { meta, .. }
            | TcapOp::FlatMap { meta, .. }
            | TcapOp::Aggregate { meta, .. }
            | TcapOp::Output { meta, .. } => meta,
        }
    }

    /// Names of the vector lists this op consumes.
    pub fn input_lists(&self) -> Vec<&str> {
        match self {
            TcapOp::Input { .. } => vec![],
            TcapOp::Apply { input, copy, .. }
            | TcapOp::FlatMap { input, copy, .. }
            | TcapOp::Hash { input, copy, .. } => {
                let mut v = vec![input.list.as_str()];
                if copy.list != input.list {
                    v.push(copy.list.as_str());
                }
                v
            }
            TcapOp::Filter { bool_col, copy, .. } => {
                let mut v = vec![bool_col.list.as_str()];
                if copy.list != bool_col.list {
                    v.push(copy.list.as_str());
                }
                v
            }
            TcapOp::Join {
                lhs_hash, rhs_hash, ..
            } => {
                vec![lhs_hash.list.as_str(), rhs_hash.list.as_str()]
            }
            TcapOp::Aggregate { key, value, .. } => {
                let mut v = vec![key.list.as_str()];
                if value.list != key.list {
                    v.push(value.list.as_str());
                }
                v
            }
            TcapOp::Output { input, .. } => vec![input.list.as_str()],
        }
    }
}

/// One TCAP statement: `output <= OP(...);`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcapStmt {
    pub output: VecListDecl,
    pub op: TcapOp,
}

/// A complete TCAP program: an ordered list of statements forming a DAG.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TcapProgram {
    pub stmts: Vec<TcapStmt>,
}

impl TcapProgram {
    pub fn new(stmts: Vec<TcapStmt>) -> Self {
        TcapProgram { stmts }
    }

    /// Finds the statement producing list `name`.
    pub fn producer(&self, name: &str) -> Option<&TcapStmt> {
        self.stmts.iter().find(|s| s.output.name == name)
    }

    /// Index of the statement producing list `name`.
    pub fn producer_index(&self, name: &str) -> Option<usize> {
        self.stmts.iter().position(|s| s.output.name == name)
    }

    /// All statements consuming list `name`.
    pub fn consumers(&self, name: &str) -> Vec<usize> {
        self.stmts
            .iter()
            .enumerate()
            .filter(|(_, s)| s.op.input_lists().contains(&name))
            .map(|(i, _)| i)
            .collect()
    }

    /// Mints a list name not yet used in the program.
    pub fn fresh_name(&self, prefix: &str) -> String {
        let mut i = 1;
        loop {
            let candidate = format!("{prefix}_{i}");
            if self.producer(&candidate).is_none() {
                return candidate;
            }
            i += 1;
        }
    }
}

// ----------------------------------------------------------------- printing

fn fmt_cols(f: &mut fmt::Formatter<'_>, cols: &[String]) -> fmt::Result {
    write!(f, "(")?;
    for (i, c) in cols.iter().enumerate() {
        if i > 0 {
            write!(f, ",")?;
        }
        write!(f, "{c}")?;
    }
    write!(f, ")")
}

impl fmt::Display for VecListDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        fmt_cols(f, &self.cols)
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.list)?;
        fmt_cols(f, &self.cols)
    }
}

fn fmt_meta(f: &mut fmt::Formatter<'_>, meta: &Meta) -> fmt::Result {
    write!(f, "[")?;
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "('{k}', '{v}')")?;
    }
    write!(f, "]")
}

impl fmt::Display for TcapStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <= ", self.output)?;
        match &self.op {
            TcapOp::Input {
                db,
                set,
                computation,
                meta,
            } => {
                write!(f, "INPUT('{db}', '{set}', '{computation}', ")?;
                fmt_meta(f, meta)?;
            }
            TcapOp::Apply {
                input,
                copy,
                computation,
                stage,
                meta,
            } => {
                write!(f, "APPLY({input}, {copy}, '{computation}', '{stage}', ")?;
                fmt_meta(f, meta)?;
            }
            TcapOp::Filter {
                bool_col,
                copy,
                computation,
                meta,
            } => {
                write!(f, "FILTER({bool_col}, {copy}, '{computation}', ")?;
                fmt_meta(f, meta)?;
            }
            TcapOp::Hash {
                input,
                copy,
                computation,
                meta,
            } => {
                write!(f, "HASH({input}, {copy}, '{computation}', ")?;
                fmt_meta(f, meta)?;
            }
            TcapOp::Join {
                lhs_hash,
                lhs_copy,
                rhs_hash,
                rhs_copy,
                computation,
                meta,
            } => {
                write!(
                    f,
                    "JOIN({lhs_hash}, {lhs_copy}, {rhs_hash}, {rhs_copy}, '{computation}', "
                )?;
                fmt_meta(f, meta)?;
            }
            TcapOp::FlatMap {
                input,
                copy,
                computation,
                stage,
                meta,
            } => {
                write!(f, "FLATMAP({input}, {copy}, '{computation}', '{stage}', ")?;
                fmt_meta(f, meta)?;
            }
            TcapOp::Aggregate {
                key,
                value,
                computation,
                meta,
            } => {
                write!(f, "AGGREGATE({key}, {value}, '{computation}', ")?;
                fmt_meta(f, meta)?;
            }
            TcapOp::Output {
                input,
                db,
                set,
                computation,
                meta,
            } => {
                write!(f, "OUTPUT({input}, '{db}', '{set}', '{computation}', ")?;
                fmt_meta(f, meta)?;
            }
        }
        write!(f, ");")
    }
}

impl fmt::Display for TcapProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.stmts {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}
