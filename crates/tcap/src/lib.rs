//! # pc-tcap — the TCAP intermediate language
//!
//! TCAP ("tee-cap") is the functional, relational-algebra-like domain
//! specific language that PlinyCompute compiles all user computations into
//! (§5.2, §7). A TCAP program is a DAG of statements, each producing a named
//! *vector list* from the vector lists of earlier statements:
//!
//! ```text
//! WDNm_1(dep,emp,sup,nm1) <= APPLY(In(dep), In(dep,emp,sup), 'Join_2212',
//!     'att_acc_1', [('type', 'attAccess'), ('attName', 'deptName')]);
//! WBl_1(dep,emp,sup,bl) <= APPLY(WDNm_1(nm1), WDNm_1(dep,emp,sup), 'Join_2212',
//!     '==_3', [('type', 'equalityCheck')]);
//! Flt_1(dep,emp,sup) <= FILTER(WBl_1(bl), WBl_1(dep,emp,sup), 'Join_2212', []);
//! ```
//!
//! This crate provides:
//!
//! * [`ir`] — the statement/operation types and [`TcapProgram`];
//! * [`parse`] — a parser for the paper's concrete syntax;
//! * printing via `Display`, matching the paper's syntax token for token;
//! * [`analyze`] — DAG structure, ancestor queries, and column provenance;
//! * [`optimize`](crate::optimize()) — the rule-based optimizer of §7 (redundant-method-call
//!   elimination, selection push-down past joins, dead-column pruning),
//!   fired iteratively to a fixpoint. The original system implements these
//!   rules in Prolog; the semantics here follow the paper's §7 examples.
//! * [`verify`](crate::verify()) — the multi-pass static verifier: well-formedness,
//!   type flow, and liveness lints with stable `TVnnnn` error codes and
//!   rustc-style rendered diagnostics. The optimizer asserts
//!   verify-cleanliness after every rule application (debug-default), and
//!   the executors verify every plan before accepting it.
//! * [`mutate`] — the seeded plan mutator behind the verifier's mutation
//!   gauntlet (~11 classes of deliberately-broken rewrites, each with the
//!   `TV` code the verifier must raise).

pub mod analyze;
pub mod ir;
pub mod mutate;
pub mod optimize;
pub mod parse;
pub mod verify;

pub use analyze::{CycleError, Provenance, TcapGraph};
pub use ir::{ColRef, TcapOp, TcapProgram, TcapStmt, VecListDecl};
pub use mutate::{mutate, Mutation, MutationKind, ALL_MUTATIONS};
pub use optimize::{optimize, optimize_with, OptimizerReport, OptimizerRule};
pub use parse::{parse_program, ParseError};
pub use verify::{verify, ColType, Diagnostic, Severity, VerifyReport};
