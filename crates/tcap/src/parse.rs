//! Parser for TCAP's concrete syntax (the exact notation of §5.2 and §7).
//!
//! The grammar is:
//!
//! ```text
//! program  := stmt*
//! stmt     := decl '<=' op ';'
//! decl     := IDENT '(' [IDENT (',' IDENT)*] ')'
//! op       := OPNAME '(' arg (',' arg)* ')'
//! arg      := decl | STRING | meta
//! meta     := '[' [pair (',' pair)*] ']'
//! pair     := '(' STRING ',' STRING ')'
//! STRING   := '\'' ... '\''
//! ```
//!
//! Comments run from `/*` to `*/` or from `--` to end of line.

use crate::ir::{ColRef, Meta, TcapOp, TcapProgram, TcapStmt, VecListDecl};
use std::fmt;

/// A TCAP parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TCAP parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Arrow, // <=
    Semi,
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let end = src[i..].find("*/").map(|p| i + p + 2).ok_or(ParseError {
                    pos: i,
                    message: "unterminated comment".into(),
                })?;
                i = end;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::RParen));
                i += 1;
            }
            '[' => {
                toks.push((i, Tok::LBracket));
                i += 1;
            }
            ']' => {
                toks.push((i, Tok::RBracket));
                i += 1;
            }
            ',' => {
                toks.push((i, Tok::Comma));
                i += 1;
            }
            ';' => {
                toks.push((i, Tok::Semi));
                i += 1;
            }
            '<' if bytes.get(i + 1) == Some(&b'=') => {
                toks.push((i, Tok::Arrow));
                i += 2;
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError {
                        pos: i,
                        message: "unterminated string".into(),
                    });
                }
                toks.push((i, Tok::Str(src[start..j].to_string())));
                i = j + 1;
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((start, Tok::Ident(src[start..i].to_string())));
            }
            other => {
                return Err(ParseError {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks.get(self.i).map(|(p, _)| *p).unwrap_or(usize::MAX)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            pos: self.pos(),
            message: message.into(),
        })
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        match self.toks.get(self.i) {
            Some((_, t)) if *t == want => {
                self.i += 1;
                Ok(())
            }
            Some((p, t)) => Err(ParseError {
                pos: *p,
                message: format!("expected {want:?}, found {t:?}"),
            }),
            None => Err(ParseError {
                pos: usize::MAX,
                message: format!("expected {want:?}, found EOF"),
            }),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.toks.get(self.i).cloned() {
            Some((_, Tok::Ident(s))) => {
                self.i += 1;
                Ok(s)
            }
            _ => self.err("expected identifier"),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        match self.toks.get(self.i).cloned() {
            Some((_, Tok::Str(s))) => {
                self.i += 1;
                Ok(s)
            }
            _ => self.err("expected quoted string"),
        }
    }

    /// `name(col, col, ...)`
    fn col_ref(&mut self) -> Result<ColRef, ParseError> {
        let list = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut cols = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                cols.push(self.ident()?);
                if self.peek() == Some(&Tok::Comma) {
                    self.i += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(ColRef { list, cols })
    }

    fn meta(&mut self) -> Result<Meta, ParseError> {
        self.expect(Tok::LBracket)?;
        let mut meta = Vec::new();
        if self.peek() != Some(&Tok::RBracket) {
            loop {
                self.expect(Tok::LParen)?;
                let k = self.string()?;
                self.expect(Tok::Comma)?;
                let v = self.string()?;
                self.expect(Tok::RParen)?;
                meta.push((k, v));
                if self.peek() == Some(&Tok::Comma) {
                    self.i += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RBracket)?;
        Ok(meta)
    }

    fn comma(&mut self) -> Result<(), ParseError> {
        self.expect(Tok::Comma)
    }

    fn stmt(&mut self) -> Result<TcapStmt, ParseError> {
        let decl = self.col_ref()?;
        let output = VecListDecl {
            name: decl.list,
            cols: decl.cols,
        };
        self.expect(Tok::Arrow)?;
        let opname = self.ident()?;
        self.expect(Tok::LParen)?;
        let op = match opname.as_str() {
            "INPUT" => {
                let db = self.string()?;
                self.comma()?;
                let set = self.string()?;
                self.comma()?;
                let computation = self.string()?;
                self.comma()?;
                let meta = self.meta()?;
                TcapOp::Input {
                    db,
                    set,
                    computation,
                    meta,
                }
            }
            "APPLY" | "FLATMAP" => {
                let input = self.col_ref()?;
                self.comma()?;
                let copy = self.col_ref()?;
                self.comma()?;
                let computation = self.string()?;
                self.comma()?;
                let stage = self.string()?;
                self.comma()?;
                let meta = self.meta()?;
                if opname == "APPLY" {
                    TcapOp::Apply {
                        input,
                        copy,
                        computation,
                        stage,
                        meta,
                    }
                } else {
                    TcapOp::FlatMap {
                        input,
                        copy,
                        computation,
                        stage,
                        meta,
                    }
                }
            }
            "FILTER" => {
                let bool_col = self.col_ref()?;
                self.comma()?;
                let copy = self.col_ref()?;
                self.comma()?;
                let computation = self.string()?;
                self.comma()?;
                let meta = self.meta()?;
                TcapOp::Filter {
                    bool_col,
                    copy,
                    computation,
                    meta,
                }
            }
            "HASH" => {
                let input = self.col_ref()?;
                self.comma()?;
                let copy = self.col_ref()?;
                self.comma()?;
                let computation = self.string()?;
                self.comma()?;
                let meta = self.meta()?;
                TcapOp::Hash {
                    input,
                    copy,
                    computation,
                    meta,
                }
            }
            "JOIN" => {
                let lhs_hash = self.col_ref()?;
                self.comma()?;
                let lhs_copy = self.col_ref()?;
                self.comma()?;
                let rhs_hash = self.col_ref()?;
                self.comma()?;
                let rhs_copy = self.col_ref()?;
                self.comma()?;
                let computation = self.string()?;
                self.comma()?;
                let meta = self.meta()?;
                TcapOp::Join {
                    lhs_hash,
                    lhs_copy,
                    rhs_hash,
                    rhs_copy,
                    computation,
                    meta,
                }
            }
            "AGGREGATE" => {
                let key = self.col_ref()?;
                self.comma()?;
                let value = self.col_ref()?;
                self.comma()?;
                let computation = self.string()?;
                self.comma()?;
                let meta = self.meta()?;
                TcapOp::Aggregate {
                    key,
                    value,
                    computation,
                    meta,
                }
            }
            "OUTPUT" => {
                let input = self.col_ref()?;
                self.comma()?;
                let db = self.string()?;
                self.comma()?;
                let set = self.string()?;
                self.comma()?;
                let computation = self.string()?;
                self.comma()?;
                let meta = self.meta()?;
                TcapOp::Output {
                    input,
                    db,
                    set,
                    computation,
                    meta,
                }
            }
            other => return self.err(format!("unknown TCAP operation {other}")),
        };
        self.expect(Tok::RParen)?;
        self.expect(Tok::Semi)?;
        Ok(TcapStmt { output, op })
    }
}

/// Parses a TCAP program from its concrete syntax.
pub fn parse_program(src: &str) -> Result<TcapProgram, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, i: 0 };
    let mut stmts = Vec::new();
    while p.peek().is_some() {
        stmts.push(p.stmt()?);
    }
    Ok(TcapProgram { stmts })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECTION_5_2: &str = r#"
WDNm_1(dep,emp,sup,nm1) <= APPLY(In(dep), In(dep,emp,sup), 'Join_2212', 'att_acc_1',
    [('type', 'attAccess'), ('attName', 'deptName')]);
WDNm_2(dep,emp,sup,nm1,nm2) <= APPLY(WDNm_1(emp), WDNm_1(dep,emp,sup,nm1), 'Join_2212',
    'method_call_2', [('type', 'methodCall'), ('methodName', 'getDeptName')]);
WBl_1(dep,emp,sup,bl) <= APPLY(WDNm_2(nm1,nm2), WDNm_2(dep,emp,sup), 'Join_2212', '==_3',
    [('type', 'equalityCheck')]);
Flt_1(dep,emp,sup) <= FILTER(WBl_1(bl), WBl_1(dep,emp,sup), 'Join_2212', []);
"#;

    #[test]
    fn parses_the_papers_section_5_2_example() {
        let prog = parse_program(SECTION_5_2).unwrap();
        assert_eq!(prog.stmts.len(), 4);
        assert_eq!(prog.stmts[0].output.name, "WDNm_1");
        assert_eq!(prog.stmts[0].output.cols, vec!["dep", "emp", "sup", "nm1"]);
        match &prog.stmts[0].op {
            TcapOp::Apply {
                input, stage, meta, ..
            } => {
                assert_eq!(input.list, "In");
                assert_eq!(input.cols, vec!["dep"]);
                assert_eq!(stage, "att_acc_1");
                assert_eq!(crate::ir::meta_get(meta, "attName"), Some("deptName"));
            }
            other => panic!("expected APPLY, got {other:?}"),
        }
        match &prog.stmts[3].op {
            TcapOp::Filter { bool_col, .. } => assert_eq!(bool_col.cols, vec!["bl"]),
            other => panic!("expected FILTER, got {other:?}"),
        }
    }

    #[test]
    fn print_parse_roundtrip() {
        let prog = parse_program(SECTION_5_2).unwrap();
        let printed = prog.to_string();
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn comments_are_skipped() {
        let src = "/* additional code here */\n-- line comment\nIn(emp) <= INPUT('db', 'set', 'Reader_1', []);";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.stmts.len(), 1);
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_program("Bogus(x) <= NOPE(In(x), 'a', []);").unwrap_err();
        assert!(err.message.contains("unknown TCAP operation"));
    }
}
