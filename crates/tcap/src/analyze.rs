//! Structural analysis over TCAP programs: the statement DAG, reachability
//! (the "is ancestor of" relation the §7 rules quantify over), and column
//! provenance (which base input columns a computed column depends on —
//! what the push-down rule calls "refers to values that depend only on one
//! of the join inputs").

use crate::ir::{TcapOp, TcapProgram};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// The statement-level DAG of a TCAP program.
#[derive(Debug, Clone)]
pub struct TcapGraph {
    /// For each statement, the indices of statements producing its inputs.
    pub preds: Vec<Vec<usize>>,
    /// For each statement, the indices of statements consuming its output.
    pub succs: Vec<Vec<usize>>,
}

impl TcapGraph {
    pub fn build(prog: &TcapProgram) -> Self {
        let n = prog.stmts.len();
        let by_name: HashMap<&str, usize> = prog
            .stmts
            .iter()
            .enumerate()
            .map(|(i, s)| (s.output.name.as_str(), i))
            .collect();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (i, s) in prog.stmts.iter().enumerate() {
            for list in s.op.input_lists() {
                if let Some(&j) = by_name.get(list) {
                    preds[i].push(j);
                    succs[j].push(i);
                }
            }
        }
        TcapGraph { preds, succs }
    }

    /// Does statement `a`'s output (transitively) feed statement `b`?
    pub fn is_ancestor(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let mut seen = vec![false; self.succs.len()];
        let mut q = VecDeque::from([a]);
        while let Some(x) = q.pop_front() {
            for &s in &self.succs[x] {
                if s == b {
                    return true;
                }
                if !seen[s] {
                    seen[s] = true;
                    q.push_back(s);
                }
            }
        }
        false
    }

    /// A topological order of statement indices, or the set of statements
    /// stuck on a cycle. (Kahn's algorithm: anything never reaching
    /// in-degree zero is part of — or downstream of — a cycle.)
    pub fn topo_order(&self) -> Result<Vec<usize>, CycleError> {
        let n = self.preds.len();
        let mut indeg: Vec<usize> = self.preds.iter().map(|p| p.len()).collect();
        let mut q: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        while let Some(i) = q.pop_front() {
            order.push(i);
            placed[i] = true;
            for &s in &self.succs[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    q.push_back(s);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(CycleError {
                stuck: (0..n).filter(|&i| !placed[i]).collect(),
            })
        }
    }

    /// Whether the statement graph contains a dependency cycle.
    pub fn has_cycle(&self) -> bool {
        self.topo_order().is_err()
    }
}

/// The statement graph is cyclic: `stuck` lists every statement that could
/// not be topologically ordered (cycle members and their descendants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    pub stuck: Vec<usize>,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dependency cycle through statements {:?}", self.stuck)
    }
}

/// The identity of a column: the statement that created it plus its name at
/// creation. Shallow copies through APPLY/FILTER/HASH/JOIN preserve identity.
pub type ColId = (usize, String);

/// Column identity and dependency analysis.
#[derive(Debug, Clone, Default)]
pub struct Provenance {
    /// `(list, col)` → identity of the value flowing in that column.
    pub id: HashMap<(String, String), ColId>,
    /// For computed columns: the set of *base* (INPUT-created) columns the
    /// value transitively depends on.
    pub deps: HashMap<ColId, BTreeSet<ColId>>,
    /// Identities created by INPUT statements (the base objects).
    pub base: BTreeSet<ColId>,
}

impl Provenance {
    pub fn build(prog: &TcapProgram) -> Self {
        let mut p = Provenance::default();
        for (i, s) in prog.stmts.iter().enumerate() {
            let out = &s.output;
            match &s.op {
                TcapOp::Input { .. } => {
                    for c in &out.cols {
                        let cid: ColId = (i, c.clone());
                        p.base.insert(cid.clone());
                        p.deps.insert(cid.clone(), BTreeSet::from([cid.clone()]));
                        p.id.insert((out.name.clone(), c.clone()), cid);
                    }
                }
                TcapOp::Apply { input, copy, .. } | TcapOp::FlatMap { input, copy, .. } => {
                    p.copy_ids(&copy.list, &copy.cols, &out.name);
                    // The appended column(s): everything in the output decl
                    // beyond the copied columns.
                    let mut dep_set = BTreeSet::new();
                    for c in &input.cols {
                        if let Some(cid) = p.id.get(&(input.list.clone(), c.clone())) {
                            if let Some(ds) = p.deps.get(cid) {
                                dep_set.extend(ds.iter().cloned());
                            }
                        }
                    }
                    for c in out.cols.iter().filter(|c| !copy.cols.contains(c)) {
                        let cid: ColId = (i, c.clone());
                        p.deps.insert(cid.clone(), dep_set.clone());
                        p.id.insert((out.name.clone(), c.clone()), cid);
                    }
                }
                TcapOp::Hash { input, copy, .. } => {
                    p.copy_ids(&copy.list, &copy.cols, &out.name);
                    let mut dep_set = BTreeSet::new();
                    for c in &input.cols {
                        if let Some(cid) = p.id.get(&(input.list.clone(), c.clone())) {
                            if let Some(ds) = p.deps.get(cid) {
                                dep_set.extend(ds.iter().cloned());
                            }
                        }
                    }
                    for c in out.cols.iter().filter(|c| !copy.cols.contains(c)) {
                        let cid: ColId = (i, c.clone());
                        p.deps.insert(cid.clone(), dep_set.clone());
                        p.id.insert((out.name.clone(), c.clone()), cid);
                    }
                }
                TcapOp::Filter { copy, .. } => {
                    p.copy_ids(&copy.list, &copy.cols, &out.name);
                }
                TcapOp::Join {
                    lhs_copy, rhs_copy, ..
                } => {
                    p.copy_ids(&lhs_copy.list, &lhs_copy.cols, &out.name);
                    p.copy_ids(&rhs_copy.list, &rhs_copy.cols, &out.name);
                }
                TcapOp::Aggregate { .. } => {
                    for c in &out.cols {
                        let cid: ColId = (i, c.clone());
                        p.deps.insert(cid.clone(), BTreeSet::new());
                        p.id.insert((out.name.clone(), c.clone()), cid);
                    }
                }
                TcapOp::Output { .. } => {}
            }
        }
        p
    }

    fn copy_ids(&mut self, src_list: &str, cols: &[String], dst_list: &str) {
        for c in cols {
            if let Some(cid) = self.id.get(&(src_list.to_string(), c.clone())).cloned() {
                self.id.insert((dst_list.to_string(), c.clone()), cid);
            }
        }
    }

    /// The base input columns that `(list, col)` transitively depends on.
    pub fn base_deps(&self, list: &str, col: &str) -> BTreeSet<ColId> {
        self.id
            .get(&(list.to_string(), col.to_string()))
            .and_then(|cid| self.deps.get(cid))
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    const PROG: &str = r#"
In(emp) <= INPUT('db', 'emps', 'Reader_1', []);
JK2_1(emp,mt1) <= APPLY(In(emp), In(emp), 'Sel_43', 'method_call_1',
    [('type', 'methodCall'), ('methodName', 'getSalary')]);
JK2_2(emp,bl1) <= APPLY(JK2_1(mt1), JK2_1(emp), 'Sel_43', 'gt_1',
    [('type', 'const_comparison'), ('op', 'gt')]);
JK2_6(emp) <= FILTER(JK2_2(bl1), JK2_2(emp), 'Sel_43', []);
"#;

    #[test]
    fn graph_edges_and_ancestry() {
        let prog = parse_program(PROG).unwrap();
        let g = TcapGraph::build(&prog);
        assert!(g.is_ancestor(0, 3));
        assert!(g.is_ancestor(1, 2));
        assert!(!g.is_ancestor(3, 0));
        assert_eq!(g.topo_order(), Ok(vec![0, 1, 2, 3]));
        assert!(!g.has_cycle());
    }

    #[test]
    fn cycles_are_detected_not_tolerated() {
        // JK2_1 reads JK2_2's output and vice versa: a two-statement cycle.
        let prog = parse_program(
            r#"
In(emp) <= INPUT('db', 'emps', 'Reader_1', []);
JK2_1(emp,mt1) <= APPLY(JK2_2(emp), JK2_2(emp), 'Sel_43', 'method_call_1',
    [('type', 'methodCall'), ('methodName', 'getSalary')]);
JK2_2(emp,bl1) <= APPLY(JK2_1(mt1), JK2_1(emp), 'Sel_43', 'gt_1',
    [('type', 'const_comparison'), ('op', 'gt')]);
"#,
        )
        .unwrap();
        let g = TcapGraph::build(&prog);
        assert!(g.has_cycle());
        let err = g.topo_order().unwrap_err();
        assert_eq!(err.stuck, vec![1, 2]);
    }

    #[test]
    fn copied_columns_keep_identity() {
        let prog = parse_program(PROG).unwrap();
        let p = Provenance::build(&prog);
        // `emp` in the final FILTER output is the very same column created
        // by the INPUT statement.
        assert_eq!(
            p.id[&("JK2_6".into(), "emp".into())],
            (0usize, "emp".to_string())
        );
        // `bl1` depends (via mt1) on the base emp column.
        let deps = p.base_deps("JK2_2", "bl1");
        assert_eq!(deps, BTreeSet::from([(0usize, "emp".to_string())]));
    }
}
