//! Static verification of TCAP programs.
//!
//! The paper's safety argument for TCAP is that the IR "retains enough
//! information to allow for program analysis"; this module is that analysis
//! turned into a gatekeeper. [`verify`] runs three passes over a
//! [`TcapProgram`] and returns structured, rustc-style diagnostics:
//!
//! 1. **Well-formedness** (`TV00xx`, errors) — every referenced vector list
//!    has a producer, every referenced column is declared by that producer,
//!    list names and declared columns are unique, each operation's output
//!    declaration matches its shape (an `APPLY` appends exactly one column,
//!    a `FILTER` appends none, a `JOIN` emits exactly the union of its copy
//!    lists, …), and the statement graph is acyclic.
//! 2. **Type flow** (`TV01xx`, errors) — a column-type lattice
//!    ([`ColType`]: object / boolean / hash / numeric / unknown) is seeded at
//!    `INPUT` statements and propagated through copies and kernel
//!    applications using the operation metadata the compiler emits
//!    (`equalityCheck`, `bool_and`, `hashOne`, …). Mismatches the executor
//!    would only discover at runtime — filtering on a non-boolean column,
//!    joining on a non-hash column, hashing a raw object — are rejected
//!    here, before a single page is pinned. Opaque kernels (`methodCall`,
//!    `attAccess`, `native`) produce `Unknown`, which unifies with
//!    everything: the verifier never rejects a plan it cannot prove wrong.
//! 3. **Liveness lints** (`TV02xx`, warnings) — columns computed but never
//!    consumed and statements no `OUTPUT` sink depends on. These are
//!    advisory: the optimizer's dead-column rule removes them, so a warning
//!    after optimization usually indicates a rule that stopped early.
//!
//! Every diagnostic carries a stable code, the statement index it anchors to
//! (TCAP statements print one per line, so statement *i* is line *i + 1*),
//! and renders with a source snippet — making the output snapshot-testable
//! (see `tests/verify_diags/`).
//!
//! Verification is wired into the real execution paths: the optimizer
//! asserts verify-cleanliness after every rule application (debug-default,
//! overridable via `PC_VERIFY_RULES=0|1`), and `pc-core`/`pc-cluster` verify
//! each compiled plan before accepting it.

use crate::analyze::TcapGraph;
use crate::ir::{meta_get, ColRef, TcapOp, TcapProgram};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

// ------------------------------------------------------------- diagnostics

/// How bad a [`Diagnostic`] is: errors reject the plan, warnings do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The plan is rejected; executing it would panic or corrupt results.
    Error,
    /// Advisory lint; the plan still runs.
    Warning,
}

/// One verifier finding: a stable code, a severity, the statement it anchors
/// to, and a human message (plus optional notes). Rendering mimics rustc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable error code, e.g. `"TV0001"`. `TV00xx` = well-formedness,
    /// `TV01xx` = type flow, `TV02xx` = liveness lints.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Index of the statement the diagnostic anchors to (line = index + 1).
    pub stmt: usize,
    /// One-line description of the defect.
    pub message: String,
    /// Optional `= note:` lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    fn error(code: &'static str, stmt: usize, message: String) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            stmt,
            message,
            notes: Vec::new(),
        }
    }

    fn warning(code: &'static str, stmt: usize, message: String) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            stmt,
            message,
            notes: Vec::new(),
        }
    }

    fn note(mut self, n: impl Into<String>) -> Self {
        self.notes.push(n.into());
        self
    }

    /// Renders this diagnostic rustc-style against the program's printed
    /// source (one statement per line).
    pub fn render(&self, lines: &[String]) -> String {
        let head = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let line_no = self.stmt + 1;
        let width = line_no.to_string().len();
        let gutter = " ".repeat(width);
        let mut out = format!("{head}[{}]: {}\n", self.code, self.message);
        out.push_str(&format!("{gutter}--> tcap:{line_no}\n"));
        out.push_str(&format!("{gutter} |\n"));
        let src = lines.get(self.stmt).map(String::as_str).unwrap_or("");
        out.push_str(&format!("{line_no} | {src}\n"));
        out.push_str(&format!("{gutter} |\n"));
        for n in &self.notes {
            out.push_str(&format!("{gutter} = note: {n}\n"));
        }
        out
    }
}

/// The result of [`verify`]: all diagnostics plus the printed program they
/// anchor into.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// All findings, sorted by (statement, code).
    pub diags: Vec<Diagnostic>,
    /// The program's printed statements, one per line (the "source file"
    /// spans refer into).
    pub lines: Vec<String>,
}

impl VerifyReport {
    /// True when the report carries no errors (warnings are permitted).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.severity == Severity::Error)
    }

    /// The warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// The distinct codes present, in report order.
    pub fn codes(&self) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for d in &self.diags {
            if !seen.contains(&d.code) {
                seen.push(d.code);
            }
        }
        seen
    }

    /// Whether any diagnostic carries `code`.
    pub fn has_code(&self, code: &str) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Renders every diagnostic, rustc-style, followed by a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.render(&self.lines));
            out.push('\n');
        }
        let errs = self.errors().count();
        let warns = self.warnings().count();
        match (errs, warns) {
            (0, 0) => out.push_str("plan verifies clean\n"),
            (0, w) => out.push_str(&format!("plan verifies clean ({w} warning(s))\n")),
            (e, 0) => out.push_str(&format!("plan rejected: {e} error(s)\n")),
            (e, w) => out.push_str(&format!("plan rejected: {e} error(s), {w} warning(s)\n")),
        }
        out
    }

    /// `Ok(report)` when clean of errors, `Err(rendered diagnostics)` when
    /// not — the form the executor acceptance paths consume.
    pub fn into_result(self) -> Result<VerifyReport, String> {
        if self.is_clean() {
            Ok(self)
        } else {
            Err(self.render())
        }
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

// -------------------------------------------------------------- type lattice

/// The verifier's column-type lattice. `Unknown` is the top element: opaque
/// kernels (`methodCall`/`attAccess`/`native`) produce it, and it unifies
/// with every requirement — the verifier only rejects provable mismatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// A column of stored objects (INPUT, FLATMAP, AGGREGATE results).
    Obj,
    /// A boolean column (comparisons, boolean connectives).
    Bool,
    /// A hash column (HASH output; the only legal join key).
    Hash,
    /// A numeric scalar (arithmetic output).
    Num,
    /// Statically unknowable (opaque kernel output).
    Unknown,
}

impl ColType {
    fn name(self) -> &'static str {
        match self {
            ColType::Obj => "object",
            ColType::Bool => "boolean",
            ColType::Hash => "hash",
            ColType::Num => "numeric",
            ColType::Unknown => "unknown",
        }
    }
}

/// The result type an APPLY's kernel produces, keyed on its `type` metadata.
fn apply_result_type(meta_ty: Option<&str>) -> ColType {
    match meta_ty {
        Some("equalityCheck")
        | Some("comparison")
        | Some("const_comparison")
        | Some("bool_and")
        | Some("bool_or")
        | Some("bool_not") => ColType::Bool,
        Some("arithmetic") => ColType::Num,
        Some("hashOne") => ColType::Hash,
        Some("multiSelect") => ColType::Obj,
        _ => ColType::Unknown,
    }
}

/// The input arity an APPLY's kernel requires, keyed on its `type` metadata
/// (`None` = unconstrained: method calls take any number of arguments).
fn apply_arity(meta_ty: Option<&str>) -> Option<usize> {
    match meta_ty {
        Some("equalityCheck")
        | Some("comparison")
        | Some("arithmetic")
        | Some("bool_and")
        | Some("bool_or") => Some(2),
        Some("bool_not") | Some("const_comparison") | Some("hashOne") => Some(1),
        _ => None,
    }
}

// ------------------------------------------------------------------ verify

/// Runs all verifier passes over `prog` and returns the full report.
pub fn verify(prog: &TcapProgram) -> VerifyReport {
    let lines: Vec<String> = prog.stmts.iter().map(|s| s.to_string()).collect();
    let mut diags = Vec::new();

    check_names(prog, &mut diags);
    check_refs(prog, &mut diags);
    check_shapes(prog, &mut diags);
    let acyclic = check_cycles(prog, &mut diags);
    if acyclic {
        check_types(prog, &mut diags);
    }
    check_liveness(prog, &mut diags);

    diags.sort_by_key(|d| (d.stmt, d.code));
    VerifyReport { diags, lines }
}

/// Convenience for acceptance paths: `Err(rendered errors)` on rejection.
pub fn require_clean(prog: &TcapProgram) -> Result<(), String> {
    verify(prog).into_result().map(|_| ())
}

/// Whether `optimize` should assert verify-cleanliness after every rule
/// application. Defaults to on in debug builds (so every `cargo test` run
/// checks each rewrite at its birthplace) and off in release builds;
/// `PC_VERIFY_RULES=1|0` overrides either way.
pub fn post_rule_checks_enabled() -> bool {
    match std::env::var("PC_VERIFY_RULES") {
        Ok(v) if v == "0" => false,
        Ok(v) if v == "1" => true,
        _ => cfg!(debug_assertions),
    }
}

// --------------------------------------------------- pass 1: names and refs

fn check_names(prog: &TcapProgram, diags: &mut Vec<Diagnostic>) {
    let mut first_def: HashMap<&str, usize> = HashMap::new();
    for (i, s) in prog.stmts.iter().enumerate() {
        if let Some(&prev) = first_def.get(s.output.name.as_str()) {
            diags.push(
                Diagnostic::error(
                    "TV0002",
                    i,
                    format!("vector list `{}` is defined more than once", s.output.name),
                )
                .note(format!("first defined at tcap:{}", prev + 1)),
            );
        } else {
            first_def.insert(s.output.name.as_str(), i);
        }
        let mut seen_cols: BTreeSet<&str> = BTreeSet::new();
        for c in &s.output.cols {
            if !seen_cols.insert(c.as_str()) {
                diags.push(Diagnostic::error(
                    "TV0004",
                    i,
                    format!(
                        "column `{c}` appears more than once in the declaration of `{}`",
                        s.output.name
                    ),
                ));
            }
        }
    }
}

/// Every [`ColRef`] an operation reads, labelled for diagnostics.
fn op_refs(op: &TcapOp) -> Vec<(&'static str, &ColRef)> {
    match op {
        TcapOp::Input { .. } => vec![],
        TcapOp::Apply { input, copy, .. }
        | TcapOp::FlatMap { input, copy, .. }
        | TcapOp::Hash { input, copy, .. } => vec![("input", input), ("copy", copy)],
        TcapOp::Filter { bool_col, copy, .. } => vec![("condition", bool_col), ("copy", copy)],
        TcapOp::Join {
            lhs_hash,
            lhs_copy,
            rhs_hash,
            rhs_copy,
            ..
        } => vec![
            ("lhs hash", lhs_hash),
            ("lhs copy", lhs_copy),
            ("rhs hash", rhs_hash),
            ("rhs copy", rhs_copy),
        ],
        TcapOp::Aggregate { key, value, .. } => vec![("key", key), ("value", value)],
        TcapOp::Output { input, .. } => vec![("input", input)],
    }
}

fn op_name(op: &TcapOp) -> &'static str {
    match op {
        TcapOp::Input { .. } => "INPUT",
        TcapOp::Apply { .. } => "APPLY",
        TcapOp::Filter { .. } => "FILTER",
        TcapOp::Hash { .. } => "HASH",
        TcapOp::Join { .. } => "JOIN",
        TcapOp::FlatMap { .. } => "FLATMAP",
        TcapOp::Aggregate { .. } => "AGGREGATE",
        TcapOp::Output { .. } => "OUTPUT",
    }
}

fn check_refs(prog: &TcapProgram, diags: &mut Vec<Diagnostic>) {
    for (i, s) in prog.stmts.iter().enumerate() {
        let mut missing_lists: BTreeSet<&str> = BTreeSet::new();
        for (role, r) in op_refs(&s.op) {
            let Some(producer) = prog.producer(&r.list) else {
                // Report each undefined list once per statement.
                if missing_lists.insert(r.list.as_str()) {
                    diags.push(
                        Diagnostic::error(
                            "TV0001",
                            i,
                            format!(
                                "{} reads from undefined vector list `{}`",
                                op_name(&s.op),
                                r.list
                            ),
                        )
                        .note(format!("no statement produces `{}`", r.list)),
                    );
                }
                continue;
            };
            for c in &r.cols {
                if !producer.output.cols.contains(c) {
                    diags.push(
                        Diagnostic::error(
                            "TV0003",
                            i,
                            format!(
                                "{} {role} references column `{c}` which `{}` does not declare",
                                op_name(&s.op),
                                r.list
                            ),
                        )
                        .note(format!(
                            "`{}` declares ({})",
                            r.list,
                            producer.output.cols.join(",")
                        )),
                    );
                }
            }
        }
    }
}

// --------------------------------------------------------- pass 2: shapes

fn check_shapes(prog: &TcapProgram, diags: &mut Vec<Diagnostic>) {
    for (i, s) in prog.stmts.iter().enumerate() {
        let out = &s.output;
        match &s.op {
            TcapOp::Apply { copy, .. }
            | TcapOp::FlatMap { copy, .. }
            | TcapOp::Hash { copy, .. } => {
                for c in &copy.cols {
                    if !out.cols.contains(c) {
                        diags.push(Diagnostic::error(
                            "TV0007",
                            i,
                            format!(
                                "{} copies column `{c}` but `{}` does not declare it",
                                op_name(&s.op),
                                out.name
                            ),
                        ));
                    }
                }
                let created: Vec<&String> =
                    out.cols.iter().filter(|c| !copy.cols.contains(c)).collect();
                if created.len() != 1 {
                    diags.push(
                        Diagnostic::error(
                            "TV0006",
                            i,
                            format!(
                                "{} must append exactly one new column to `{}`, found {}",
                                op_name(&s.op),
                                out.name,
                                created.len()
                            ),
                        )
                        .note("output declaration = copied columns + the kernel's result column"),
                    );
                }
            }
            TcapOp::Filter { copy, .. } => {
                for c in &copy.cols {
                    if !out.cols.contains(c) {
                        diags.push(Diagnostic::error(
                            "TV0007",
                            i,
                            format!(
                                "FILTER copies column `{c}` but `{}` does not declare it",
                                out.name
                            ),
                        ));
                    }
                }
                for c in out.cols.iter().filter(|c| !copy.cols.contains(c)) {
                    diags.push(
                        Diagnostic::error(
                            "TV0006",
                            i,
                            format!(
                                "FILTER appends no columns but `{}` declares `{c}`",
                                out.name
                            ),
                        )
                        .note("a FILTER's output is exactly its copied columns"),
                    );
                }
            }
            TcapOp::Join {
                lhs_hash,
                lhs_copy,
                rhs_hash,
                rhs_copy,
                ..
            } => {
                // Copy lists must read the same vector lists as the hash
                // refs: the executor resolves copy slots against the hash
                // side inputs, and the statement graph only edges on the
                // hash lists — a divergent copy list would dodge both.
                for (side, h, c) in [("lhs", lhs_hash, lhs_copy), ("rhs", rhs_hash, rhs_copy)] {
                    if c.list != h.list {
                        diags.push(
                            Diagnostic::error(
                                "TV0009",
                                i,
                                format!(
                                    "JOIN {side} copy reads `{}` but its hash reads `{}`",
                                    c.list, h.list
                                ),
                            )
                            .note("a join side's copy list must match its hash list"),
                        );
                    }
                }
                for c in lhs_copy.cols.iter().filter(|c| rhs_copy.cols.contains(*c)) {
                    diags.push(
                        Diagnostic::error(
                            "TV0008",
                            i,
                            format!("JOIN copies column `{c}` from both sides"),
                        )
                        .note("join sides must carry disjoint column names"),
                    );
                }
                for c in lhs_copy.cols.iter().chain(rhs_copy.cols.iter()) {
                    if !out.cols.contains(c) {
                        diags.push(Diagnostic::error(
                            "TV0007",
                            i,
                            format!(
                                "JOIN copies column `{c}` but `{}` does not declare it",
                                out.name
                            ),
                        ));
                    }
                }
                for c in out
                    .cols
                    .iter()
                    .filter(|c| !lhs_copy.cols.contains(c) && !rhs_copy.cols.contains(c))
                {
                    diags.push(
                        Diagnostic::error(
                            "TV0006",
                            i,
                            format!("JOIN appends no columns but `{}` declares `{c}`", out.name),
                        )
                        .note("a JOIN's output is the union of its two copy lists"),
                    );
                }
            }
            TcapOp::Aggregate { .. } => {
                if out.cols.len() != 1 {
                    diags.push(Diagnostic::error(
                        "TV0006",
                        i,
                        format!(
                            "AGGREGATE must declare exactly one output column on `{}`, found {}",
                            out.name,
                            out.cols.len()
                        ),
                    ));
                }
            }
            TcapOp::Output { .. } => {
                if !out.cols.is_empty() {
                    diags.push(
                        Diagnostic::error(
                            "TV0006",
                            i,
                            format!(
                                "OUTPUT is a sink but `{}` declares ({})",
                                out.name,
                                out.cols.join(",")
                            ),
                        )
                        .note("an OUTPUT statement's declaration must be empty"),
                    );
                }
            }
            TcapOp::Input { .. } => {}
        }
    }
}

// --------------------------------------------------------- pass 3: cycles

fn check_cycles(prog: &TcapProgram, diags: &mut Vec<Diagnostic>) -> bool {
    let g = TcapGraph::build(prog);
    match g.topo_order() {
        Ok(_) => true,
        Err(cycle) => {
            let lists: Vec<String> = cycle
                .stuck
                .iter()
                .map(|&i| format!("`{}`", prog.stmts[i].output.name))
                .collect();
            let anchor = cycle.stuck.first().copied().unwrap_or(0);
            diags.push(
                Diagnostic::error(
                    "TV0005",
                    anchor,
                    "statement graph contains a dependency cycle".to_string(),
                )
                .note(format!(
                    "statements stuck on the cycle: {}",
                    lists.join(", ")
                )),
            );
            false
        }
    }
}

// ------------------------------------------------------- pass 4: type flow

fn check_types(prog: &TcapProgram, diags: &mut Vec<Diagnostic>) {
    // Process in topological order so types flow forward even when the
    // textual order is shuffled (the graph is known acyclic here).
    let g = TcapGraph::build(prog);
    let order = match g.topo_order() {
        Ok(o) => o,
        Err(_) => return,
    };

    // (list, col) -> type
    let mut ty: HashMap<(String, String), ColType> = HashMap::new();
    let lookup = |ty: &HashMap<(String, String), ColType>, r: &ColRef, c: &str| -> ColType {
        ty.get(&(r.list.clone(), c.to_string()))
            .copied()
            .unwrap_or(ColType::Unknown)
    };
    let inherit =
        |ty: &mut HashMap<(String, String), ColType>, src: &ColRef, dst: &str, cols: &[String]| {
            for c in cols {
                let t = ty
                    .get(&(src.list.clone(), c.clone()))
                    .copied()
                    .unwrap_or(ColType::Unknown);
                ty.insert((dst.to_string(), c.clone()), t);
            }
        };

    for &i in &order {
        let s = &prog.stmts[i];
        let out_name = s.output.name.clone();
        match &s.op {
            TcapOp::Input { .. } => {
                for c in &s.output.cols {
                    ty.insert((out_name.clone(), c.clone()), ColType::Obj);
                }
            }
            TcapOp::Apply {
                input, copy, meta, ..
            } => {
                let meta_ty = meta_get(meta, "type");
                if let Some(want) = apply_arity(meta_ty) {
                    if input.cols.len() != want {
                        diags.push(
                            Diagnostic::error(
                                "TV0103",
                                i,
                                format!(
                                    "kernel of type `{}` takes {want} input column(s), found {}",
                                    meta_ty.unwrap_or("?"),
                                    input.cols.len()
                                ),
                            )
                            .note(format!("inputs: ({})", input.cols.join(","))),
                        );
                    }
                }
                match meta_ty {
                    Some("bool_and") | Some("bool_or") | Some("bool_not") => {
                        for c in &input.cols {
                            let t = lookup(&ty, input, c);
                            if t != ColType::Bool && t != ColType::Unknown {
                                diags.push(Diagnostic::error(
                                    "TV0104",
                                    i,
                                    format!(
                                        "boolean connective `{}` applied to {} column `{c}`",
                                        meta_ty.unwrap_or("?"),
                                        t.name()
                                    ),
                                ));
                            }
                        }
                    }
                    Some("arithmetic") => {
                        for c in &input.cols {
                            let t = lookup(&ty, input, c);
                            if t == ColType::Obj || t == ColType::Bool {
                                diags.push(Diagnostic::error(
                                    "TV0106",
                                    i,
                                    format!("arithmetic applied to {} column `{c}`", t.name()),
                                ));
                            }
                        }
                    }
                    Some("comparison") | Some("const_comparison") => {
                        for c in &input.cols {
                            let t = lookup(&ty, input, c);
                            if t == ColType::Obj {
                                diags.push(
                                    Diagnostic::error(
                                        "TV0106",
                                        i,
                                        format!("comparison applied to object column `{c}`"),
                                    )
                                    .note("extract a scalar attribute first"),
                                );
                            }
                        }
                    }
                    _ => {}
                }
                inherit(&mut ty, copy, &out_name, &copy.cols);
                let result = apply_result_type(meta_ty);
                for c in s.output.cols.iter().filter(|c| !copy.cols.contains(c)) {
                    ty.insert((out_name.clone(), c.clone()), result);
                }
            }
            TcapOp::Hash { input, copy, .. } => {
                if input.cols.len() != 1 {
                    diags.push(Diagnostic::error(
                        "TV0103",
                        i,
                        format!(
                            "HASH takes exactly one input column, found {}",
                            input.cols.len()
                        ),
                    ));
                }
                for c in &input.cols {
                    if lookup(&ty, input, c) == ColType::Obj {
                        diags.push(
                            Diagnostic::error(
                                "TV0105",
                                i,
                                format!("cannot hash object column `{c}`"),
                            )
                            .note("extract a key first (the hash kernel rejects raw objects)"),
                        );
                    }
                }
                inherit(&mut ty, copy, &out_name, &copy.cols);
                for c in s.output.cols.iter().filter(|c| !copy.cols.contains(c)) {
                    ty.insert((out_name.clone(), c.clone()), ColType::Hash);
                }
            }
            TcapOp::FlatMap { copy, .. } => {
                inherit(&mut ty, copy, &out_name, &copy.cols);
                for c in s.output.cols.iter().filter(|c| !copy.cols.contains(c)) {
                    ty.insert((out_name.clone(), c.clone()), ColType::Obj);
                }
            }
            TcapOp::Filter { bool_col, copy, .. } => {
                if bool_col.cols.len() != 1 {
                    diags.push(Diagnostic::error(
                        "TV0103",
                        i,
                        format!(
                            "FILTER takes exactly one condition column, found {}",
                            bool_col.cols.len()
                        ),
                    ));
                }
                for c in &bool_col.cols {
                    let t = lookup(&ty, bool_col, c);
                    if t != ColType::Bool && t != ColType::Unknown {
                        diags.push(
                            Diagnostic::error(
                                "TV0101",
                                i,
                                format!("FILTER condition `{c}` is a {} column", t.name()),
                            )
                            .note("the condition must be boolean"),
                        );
                    }
                }
                inherit(&mut ty, copy, &out_name, &copy.cols);
            }
            TcapOp::Join {
                lhs_hash,
                lhs_copy,
                rhs_hash,
                rhs_copy,
                ..
            } => {
                for r in [lhs_hash, rhs_hash] {
                    if r.cols.len() != 1 {
                        diags.push(Diagnostic::error(
                            "TV0103",
                            i,
                            format!(
                                "JOIN takes exactly one hash column per side, found {}",
                                r.cols.len()
                            ),
                        ));
                    }
                    for c in &r.cols {
                        let t = lookup(&ty, r, c);
                        if t != ColType::Hash && t != ColType::Unknown {
                            diags.push(
                                Diagnostic::error(
                                    "TV0102",
                                    i,
                                    format!("JOIN key `{c}` is a {} column", t.name()),
                                )
                                .note("join keys must be HASH results"),
                            );
                        }
                    }
                }
                inherit(&mut ty, lhs_copy, &out_name, &lhs_copy.cols);
                inherit(&mut ty, rhs_copy, &out_name, &rhs_copy.cols);
            }
            TcapOp::Aggregate { key, value, .. } => {
                for (role, r) in [("key", key), ("value", value)] {
                    if r.cols.len() != 1 {
                        diags.push(Diagnostic::error(
                            "TV0103",
                            i,
                            format!(
                                "AGGREGATE takes exactly one {role} column, found {}",
                                r.cols.len()
                            ),
                        ));
                    }
                }
                for c in &s.output.cols {
                    ty.insert((out_name.clone(), c.clone()), ColType::Obj);
                }
            }
            TcapOp::Output { input, .. } => {
                if input.cols.len() != 1 {
                    diags.push(Diagnostic::error(
                        "TV0103",
                        i,
                        format!(
                            "OUTPUT writes exactly one column, found {}",
                            input.cols.len()
                        ),
                    ));
                }
            }
        }
    }
}

// ----------------------------------------------------- pass 5: liveness

fn check_liveness(prog: &TcapProgram, diags: &mut Vec<Diagnostic>) {
    // Dead created columns: a kernel result no consumer ever reads, on a
    // list that *does* have consumers (fully-unconsumed statements are
    // TV0202's business).
    let mut referenced: BTreeSet<(String, String)> = BTreeSet::new();
    for s in &prog.stmts {
        for (_, r) in op_refs(&s.op) {
            for c in &r.cols {
                referenced.insert((r.list.clone(), c.clone()));
            }
        }
    }
    for (i, s) in prog.stmts.iter().enumerate() {
        let copy_cols: &[String] = match &s.op {
            TcapOp::Apply { copy, .. }
            | TcapOp::FlatMap { copy, .. }
            | TcapOp::Hash { copy, .. } => &copy.cols,
            _ => continue,
        };
        if prog.consumers(&s.output.name).is_empty() {
            continue;
        }
        for c in s.output.cols.iter().filter(|c| !copy_cols.contains(c)) {
            if !referenced.contains(&(s.output.name.clone(), c.clone())) {
                diags.push(
                    Diagnostic::warning(
                        "TV0201",
                        i,
                        format!(
                            "column `{c}` of `{}` is computed but never consumed",
                            s.output.name
                        ),
                    )
                    .note("the dead-column optimizer rule would remove it"),
                );
            }
        }
    }

    // Unreachable statements: nothing an OUTPUT depends on (only meaningful
    // when the program has sinks; §7-style fragments have none).
    if !prog
        .stmts
        .iter()
        .any(|s| matches!(s.op, TcapOp::Output { .. }))
    {
        return;
    }
    let g = TcapGraph::build(prog);
    let mut live = vec![false; prog.stmts.len()];
    let mut stack: Vec<usize> = prog
        .stmts
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.op, TcapOp::Output { .. }))
        .map(|(i, _)| i)
        .collect();
    while let Some(i) = stack.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        for &p in &g.preds[i] {
            stack.push(p);
        }
    }
    for (i, s) in prog.stmts.iter().enumerate() {
        if !live[i] {
            diags.push(
                Diagnostic::warning(
                    "TV0202",
                    i,
                    format!("no OUTPUT depends on statement `{}`", s.output.name),
                )
                .note("dead statements are pruned by the optimizer"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    const CLEAN: &str = "\
In(emp) <= INPUT('db', 'emps', 'Sel_1', []);
W_1(emp,mt1) <= APPLY(In(emp), In(emp), 'Sel_1', 'method_call_1', [('type', 'methodCall'), ('methodName', 'getSalary')]);
W_2(emp,bl1) <= APPLY(W_1(mt1), W_1(emp), 'Sel_1', 'gtc_1', [('type', 'const_comparison'), ('op', 'gt')]);
Flt_1(emp) <= FILTER(W_2(bl1), W_2(emp), 'Sel_1', []);
Out_1() <= OUTPUT(Flt_1(emp), 'db', 'out', 'Writer_1', []);
";

    #[test]
    fn clean_program_verifies_clean() {
        let prog = parse_program(CLEAN).unwrap();
        let report = verify(&prog);
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.diags.len(), 0, "{}", report.render());
    }

    #[test]
    fn undefined_list_is_tv0001() {
        let mut prog = parse_program(CLEAN).unwrap();
        if let TcapOp::Filter { bool_col, .. } = &mut prog.stmts[3].op {
            bool_col.list = "Nope".into();
        }
        let report = verify(&prog);
        assert!(report.has_code("TV0001"), "{}", report.render());
        assert!(!report.is_clean());
    }

    #[test]
    fn unknown_column_is_tv0003() {
        let mut prog = parse_program(CLEAN).unwrap();
        if let TcapOp::Apply { input, .. } = &mut prog.stmts[2].op {
            input.cols = vec!["ghost".into()];
        }
        let report = verify(&prog);
        assert!(report.has_code("TV0003"), "{}", report.render());
    }

    #[test]
    fn cycle_is_tv0005() {
        let mut prog = parse_program(CLEAN).unwrap();
        // W_1 reads W_2's output: a two-statement cycle.
        if let TcapOp::Apply { input, copy, .. } = &mut prog.stmts[1].op {
            input.list = "W_2".into();
            copy.list = "W_2".into();
        }
        let report = verify(&prog);
        assert!(report.has_code("TV0005"), "{}", report.render());
    }

    #[test]
    fn filter_on_numeric_column_is_tv0101() {
        let mut prog = parse_program(CLEAN).unwrap();
        // Retype the comparison kernel as arithmetic: bl1 becomes numeric.
        if let TcapOp::Apply { meta, .. } = &mut prog.stmts[2].op {
            meta.retain(|(k, _)| k != "type");
            meta.push(("type".into(), "arithmetic".into()));
        }
        let report = verify(&prog);
        // The retype also breaks arithmetic arity (1 input), so TV0103 may
        // fire too — TV0101 is what we require.
        assert!(report.has_code("TV0101"), "{}", report.render());
    }

    #[test]
    fn hashing_an_object_is_tv0105() {
        let prog = parse_program(
            "\
In(emp) <= INPUT('db', 'emps', 'J_1', []);
H_1(emp,hash1) <= HASH(In(emp), In(emp), 'J_1', [('type', 'hashOne')]);
",
        )
        .unwrap();
        let report = verify(&prog);
        assert!(report.has_code("TV0105"), "{}", report.render());
    }

    #[test]
    fn dead_column_and_unreachable_stmt_are_warnings_only() {
        let prog = parse_program(
            "\
In(emp) <= INPUT('db', 'emps', 'Sel_1', []);
W_1(emp,mt1) <= APPLY(In(emp), In(emp), 'Sel_1', 'm_1', [('type', 'methodCall'), ('methodName', 'getAge')]);
W_2(emp,mt2) <= APPLY(W_1(emp), W_1(emp), 'Sel_1', 'm_2', [('type', 'methodCall'), ('methodName', 'getName')]);
Out_1() <= OUTPUT(W_2(emp), 'db', 'out', 'Writer_1', []);
Spur(emp) <= FILTER(W_2(mt2), W_2(emp), 'Sel_2', []);
",
        )
        .unwrap();
        let report = verify(&prog);
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.has_code("TV0201"), "{}", report.render());
        assert!(report.has_code("TV0202"), "{}", report.render());
    }

    #[test]
    fn rendering_is_rustc_shaped() {
        let mut prog = parse_program(CLEAN).unwrap();
        if let TcapOp::Filter { bool_col, .. } = &mut prog.stmts[3].op {
            bool_col.list = "Nope".into();
        }
        let r = verify(&prog).render();
        assert!(r.contains("error[TV0001]"), "{r}");
        assert!(r.contains("--> tcap:4"), "{r}");
        assert!(r.contains("4 | Flt_1(emp) <= FILTER(Nope(bl1)"), "{r}");
    }
}
