//! Seeded plan mutation for the verifier's gauntlet.
//!
//! A verifier is only worth its keep if it actually catches broken rewrites,
//! so this module plays the adversary: [`mutate`] applies one of ~11 classes
//! of deliberately-broken transformations — the kinds of bugs an optimizer
//! rule or plan generator could realistically introduce — to a well-formed
//! program, and names the `TV` error code the verifier is expected to raise.
//! The gauntlet (`tests/verifier_gauntlet.rs`, `repro verify`) applies these
//! over every workload's lowered plan and asserts a ≥95% rejection rate with
//! the expected code, and zero false positives on the unmutated plans.
//!
//! Site selection is a pure function of the seed (the same SplitMix64-style
//! mixer as the transport/budget chaos layers), so a surviving mutant
//! replays exactly from its seed.

use crate::ir::{ColRef, TcapOp, TcapProgram};

/// SplitMix64-style mixer: one seed convention across the chaos suites.
fn mix(seed: u64, n: u64, salt: u64) -> u64 {
    let mut z =
        seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const MUTATE_SALT: u64 = 0x00C0_FFEE;

/// Picks index `mix(seed, n) % len`.
fn pick(seed: u64, n: u64, len: usize) -> usize {
    (mix(seed, n, MUTATE_SALT) % len.max(1) as u64) as usize
}

/// The classes of deliberately-broken rewrites the gauntlet applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Point one column reference at a list nothing produces.
    RenameListRef,
    /// Rename one referenced column to a name its list does not declare.
    RenameColRef,
    /// Give a statement the output name of an earlier statement.
    DuplicateListName,
    /// Declare one output column twice.
    DuplicateOutputCol,
    /// Delete a statement whose output has consumers.
    DropStmt,
    /// Rewire a statement to read its own output.
    IntroduceCycle,
    /// Duplicate a kernel input: arity no longer matches the kernel.
    KernelArity,
    /// Change a boolean kernel's metadata type to `arithmetic`, so the
    /// downstream FILTER condition is no longer boolean.
    RetypeOutput,
    /// Drop a copied column from a statement's output declaration.
    DropOutputCol,
    /// Retarget a HASH at a raw object column.
    HashObject,
    /// Retarget one JOIN key at a non-hash column of the same list.
    RewireJoinKey,
}

/// All mutation classes, in gauntlet order.
pub const ALL_MUTATIONS: &[MutationKind] = &[
    MutationKind::RenameListRef,
    MutationKind::RenameColRef,
    MutationKind::DuplicateListName,
    MutationKind::DuplicateOutputCol,
    MutationKind::DropStmt,
    MutationKind::IntroduceCycle,
    MutationKind::KernelArity,
    MutationKind::RetypeOutput,
    MutationKind::DropOutputCol,
    MutationKind::HashObject,
    MutationKind::RewireJoinKey,
];

impl MutationKind {
    /// The error code the verifier must raise for this class of breakage.
    pub fn expected_code(self) -> &'static str {
        match self {
            MutationKind::RenameListRef => "TV0001",
            MutationKind::RenameColRef => "TV0003",
            MutationKind::DuplicateListName => "TV0002",
            MutationKind::DuplicateOutputCol => "TV0004",
            MutationKind::DropStmt => "TV0001",
            MutationKind::IntroduceCycle => "TV0005",
            MutationKind::KernelArity => "TV0103",
            MutationKind::RetypeOutput => "TV0101",
            MutationKind::DropOutputCol => "TV0007",
            MutationKind::HashObject => "TV0105",
            MutationKind::RewireJoinKey => "TV0102",
        }
    }

    /// A short human label for gauntlet tables.
    pub fn label(self) -> &'static str {
        match self {
            MutationKind::RenameListRef => "rename-list-ref",
            MutationKind::RenameColRef => "rename-col-ref",
            MutationKind::DuplicateListName => "duplicate-list-name",
            MutationKind::DuplicateOutputCol => "duplicate-output-col",
            MutationKind::DropStmt => "drop-stmt",
            MutationKind::IntroduceCycle => "introduce-cycle",
            MutationKind::KernelArity => "kernel-arity",
            MutationKind::RetypeOutput => "retype-output",
            MutationKind::DropOutputCol => "drop-output-col",
            MutationKind::HashObject => "hash-object",
            MutationKind::RewireJoinKey => "rewire-join-key",
        }
    }
}

/// A mutation that was actually applied: its class plus a description of
/// the site, for gauntlet reporting.
#[derive(Debug, Clone)]
pub struct Mutation {
    pub kind: MutationKind,
    pub description: String,
}

/// Every mutable [`ColRef`] of a statement (mutably).
fn refs_mut(op: &mut TcapOp) -> Vec<&mut ColRef> {
    match op {
        TcapOp::Input { .. } => vec![],
        TcapOp::Apply { input, copy, .. }
        | TcapOp::FlatMap { input, copy, .. }
        | TcapOp::Hash { input, copy, .. } => vec![input, copy],
        TcapOp::Filter { bool_col, copy, .. } => vec![bool_col, copy],
        TcapOp::Join {
            lhs_hash,
            lhs_copy,
            rhs_hash,
            rhs_copy,
            ..
        } => vec![lhs_hash, lhs_copy, rhs_hash, rhs_copy],
        TcapOp::Aggregate { key, value, .. } => vec![key, value],
        TcapOp::Output { input, .. } => vec![input],
    }
}

/// Applies mutation class `kind` to a seed-chosen applicable site in `prog`.
/// Returns `None` when the program offers no applicable site (e.g. no JOIN
/// to rewire) — the gauntlet skips those, it does not count them as misses.
pub fn mutate(
    prog: &TcapProgram,
    kind: MutationKind,
    seed: u64,
) -> Option<(TcapProgram, Mutation)> {
    let mut p = prog.clone();
    let desc: String;
    match kind {
        MutationKind::RenameListRef => {
            // Statements with at least one input reference.
            let sites: Vec<usize> = (0..p.stmts.len())
                .filter(|&i| !p.stmts[i].op.input_lists().is_empty())
                .collect();
            let &i = sites.get(pick(seed, 0, sites.len()))?;
            let stmt = &mut p.stmts[i];
            let mut refs = refs_mut(&mut stmt.op);
            let ri = pick(seed, 1, refs.len());
            let r = refs.get_mut(ri)?;
            desc = format!("stmt {i}: list ref `{}` -> `Zz_void`", r.list);
            r.list = "Zz_void".to_string();
        }
        MutationKind::RenameColRef => {
            let sites: Vec<usize> = (0..p.stmts.len())
                .filter(|&i| {
                    let mut s = p.stmts[i].clone();
                    refs_mut(&mut s.op).iter().any(|r| !r.cols.is_empty())
                })
                .collect();
            let &i = sites.get(pick(seed, 0, sites.len()))?;
            let stmt = &mut p.stmts[i];
            let mut refs: Vec<&mut ColRef> = refs_mut(&mut stmt.op)
                .into_iter()
                .filter(|r| !r.cols.is_empty())
                .collect();
            let ri = pick(seed, 1, refs.len());
            let r = refs.get_mut(ri)?;
            let ci = pick(seed, 2, r.cols.len());
            desc = format!("stmt {i}: column ref `{}` -> `zz_ghost`", r.cols[ci]);
            r.cols[ci] = "zz_ghost".to_string();
        }
        MutationKind::DuplicateListName => {
            if p.stmts.len() < 2 {
                return None;
            }
            let j = 1 + pick(seed, 0, p.stmts.len() - 1);
            let i = pick(seed, 1, j);
            desc = format!(
                "stmt {j}: output `{}` renamed to earlier `{}`",
                p.stmts[j].output.name, p.stmts[i].output.name
            );
            p.stmts[j].output.name = p.stmts[i].output.name.clone();
        }
        MutationKind::DuplicateOutputCol => {
            let sites: Vec<usize> = (0..p.stmts.len())
                .filter(|&i| !p.stmts[i].output.cols.is_empty())
                .collect();
            let &i = sites.get(pick(seed, 0, sites.len()))?;
            let cols = &mut p.stmts[i].output.cols;
            let c = cols[pick(seed, 1, cols.len())].clone();
            desc = format!("stmt {i}: column `{c}` declared twice");
            cols.push(c);
        }
        MutationKind::DropStmt => {
            let sites: Vec<usize> = (0..p.stmts.len())
                .filter(|&i| !p.consumers(&p.stmts[i].output.name).is_empty())
                .collect();
            let &i = sites.get(pick(seed, 0, sites.len()))?;
            desc = format!(
                "stmt {i}: `{}` deleted (its consumers dangle)",
                p.stmts[i].output.name
            );
            p.stmts.remove(i);
        }
        MutationKind::IntroduceCycle => {
            let sites: Vec<usize> = (0..p.stmts.len())
                .filter(|&i| !p.stmts[i].op.input_lists().is_empty())
                .collect();
            let &i = sites.get(pick(seed, 0, sites.len()))?;
            let own = p.stmts[i].output.name.clone();
            let stmt = &mut p.stmts[i];
            // Only refs that form statement-graph edges: a JOIN's copy refs
            // don't (they must mirror the hash refs — that's TV0009's job).
            let is_join = matches!(stmt.op, TcapOp::Join { .. });
            let mut refs = refs_mut(&mut stmt.op);
            if is_join {
                refs = vec![refs.remove(2), refs.remove(0)];
            }
            let ri = pick(seed, 1, refs.len());
            let r = refs.get_mut(ri)?;
            desc = format!("stmt {i}: reads its own output `{own}`");
            r.list = own;
        }
        MutationKind::KernelArity => {
            // APPLYs whose metadata pins an arity.
            let sites: Vec<usize> = (0..p.stmts.len())
                .filter(|&i| {
                    if let TcapOp::Apply { input, meta, .. } = &p.stmts[i].op {
                        !input.cols.is_empty()
                            && matches!(
                                crate::ir::meta_get(meta, "type"),
                                Some(
                                    "equalityCheck"
                                        | "comparison"
                                        | "arithmetic"
                                        | "bool_and"
                                        | "bool_or"
                                        | "bool_not"
                                        | "const_comparison"
                                )
                            )
                    } else {
                        false
                    }
                })
                .collect();
            let &i = sites.get(pick(seed, 0, sites.len()))?;
            let TcapOp::Apply { input, .. } = &mut p.stmts[i].op else {
                return None;
            };
            let c = input.cols[pick(seed, 1, input.cols.len())].clone();
            desc = format!("stmt {i}: kernel input `{c}` duplicated (arity +1)");
            input.cols.push(c);
        }
        MutationKind::RetypeOutput => {
            // A FILTER whose condition column is created by a boolean APPLY.
            let mut sites: Vec<(usize, usize)> = Vec::new(); // (filter, apply)
            for fi in 0..p.stmts.len() {
                let TcapOp::Filter { bool_col, .. } = &p.stmts[fi].op else {
                    continue;
                };
                let Some(ai) = p.producer_index(&bool_col.list) else {
                    continue;
                };
                if let TcapOp::Apply { meta, copy, .. } = &p.stmts[ai].op {
                    let boolish = matches!(
                        crate::ir::meta_get(meta, "type"),
                        Some(
                            "equalityCheck"
                                | "comparison"
                                | "const_comparison"
                                | "bool_and"
                                | "bool_or"
                                | "bool_not"
                        )
                    );
                    // The condition must be the APPLY's *created* column.
                    let created = bool_col.cols.iter().any(|c| !copy.cols.contains(c));
                    if boolish && created {
                        sites.push((fi, ai));
                    }
                }
            }
            let &(fi, ai) = sites.get(pick(seed, 0, sites.len()))?;
            let TcapOp::Apply { meta, .. } = &mut p.stmts[ai].op else {
                return None;
            };
            desc = format!(
                "stmt {ai}: boolean kernel retyped `arithmetic` (FILTER at stmt {fi} now non-boolean)"
            );
            meta.retain(|(k, _)| k != "type");
            meta.push(("type".into(), "arithmetic".into()));
        }
        MutationKind::DropOutputCol => {
            // Statements with a copied column present in the output decl.
            let mut sites: Vec<(usize, String)> = Vec::new();
            for (i, s) in p.stmts.iter().enumerate() {
                let copy_cols: Vec<String> = match &s.op {
                    TcapOp::Apply { copy, .. }
                    | TcapOp::FlatMap { copy, .. }
                    | TcapOp::Hash { copy, .. }
                    | TcapOp::Filter { copy, .. } => copy.cols.clone(),
                    TcapOp::Join { lhs_copy, .. } => lhs_copy.cols.clone(),
                    _ => continue,
                };
                for c in copy_cols {
                    if s.output.cols.contains(&c) {
                        sites.push((i, c));
                    }
                }
            }
            let (i, c) = sites.get(pick(seed, 0, sites.len()))?.clone();
            desc = format!("stmt {i}: copied column `{c}` dropped from the output declaration");
            p.stmts[i].output.cols.retain(|x| *x != c);
        }
        MutationKind::HashObject => {
            // A HASH whose source list declares an object column: INPUT
            // columns reached directly, or any copy of one. Cheap proxy:
            // retarget the HASH input at one of its *copied* columns when
            // that column traces to an INPUT declaration by name.
            let mut sites: Vec<(usize, String)> = Vec::new();
            for (i, s) in p.stmts.iter().enumerate() {
                let TcapOp::Hash { copy, .. } = &s.op else {
                    continue;
                };
                for c in &copy.cols {
                    if col_is_object(&p, &copy.list, c) {
                        sites.push((i, c.clone()));
                    }
                }
            }
            let (i, c) = sites.get(pick(seed, 0, sites.len()))?.clone();
            let TcapOp::Hash { input, .. } = &mut p.stmts[i].op else {
                return None;
            };
            desc = format!("stmt {i}: HASH retargeted at object column `{c}`");
            input.cols = vec![c];
        }
        MutationKind::RewireJoinKey => {
            // A JOIN whose hash-side list carries a non-hash column.
            let mut sites: Vec<(usize, bool, String)> = Vec::new();
            for (i, s) in p.stmts.iter().enumerate() {
                let TcapOp::Join {
                    lhs_hash, rhs_hash, ..
                } = &s.op
                else {
                    continue;
                };
                for (left, h) in [(true, lhs_hash), (false, rhs_hash)] {
                    let Some(producer) = p.producer(&h.list) else {
                        continue;
                    };
                    for c in &producer.output.cols {
                        if !h.cols.contains(c) && col_is_object(&p, &h.list, c) {
                            sites.push((i, left, c.clone()));
                        }
                    }
                }
            }
            let (i, left, c) = sites.get(pick(seed, 0, sites.len()))?.clone();
            let TcapOp::Join {
                lhs_hash, rhs_hash, ..
            } = &mut p.stmts[i].op
            else {
                return None;
            };
            let side = if left { lhs_hash } else { rhs_hash };
            desc = format!(
                "stmt {i}: {} join key rewired to non-hash column `{c}`",
                if left { "lhs" } else { "rhs" }
            );
            side.cols = vec![c];
        }
    }
    Some((
        p,
        Mutation {
            kind,
            description: desc,
        },
    ))
}

/// Conservatively: does `(list, col)` provably carry objects? True when the
/// column's name-preserving copy chain bottoms out at an INPUT declaration.
fn col_is_object(prog: &TcapProgram, list: &str, col: &str) -> bool {
    let mut cur = list.to_string();
    for _ in 0..prog.stmts.len() + 1 {
        let Some(s) = prog.producer(&cur) else {
            return false;
        };
        match &s.op {
            TcapOp::Input { .. } => return s.output.cols.iter().any(|c| c == col),
            TcapOp::Apply { copy, .. }
            | TcapOp::FlatMap { copy, .. }
            | TcapOp::Hash { copy, .. }
            | TcapOp::Filter { copy, .. } => {
                if copy.cols.iter().any(|c| c == col) {
                    cur = copy.list.clone();
                } else {
                    return false;
                }
            }
            TcapOp::Join {
                lhs_copy, rhs_copy, ..
            } => {
                if lhs_copy.cols.iter().any(|c| c == col) {
                    cur = lhs_copy.list.clone();
                } else if rhs_copy.cols.iter().any(|c| c == col) {
                    cur = rhs_copy.list.clone();
                } else {
                    return false;
                }
            }
            TcapOp::Aggregate { .. } | TcapOp::Output { .. } => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;
    use crate::verify::verify;

    const PROG: &str = "\
In_0(in0) <= INPUT('db', 'a', 'ReadA', []);
In_1(in1) <= INPUT('db', 'b', 'ReadB', []);
W_1(in0,mt1) <= APPLY(In_0(in0), In_0(in0), 'J', 'key_l', [('type', 'methodCall'), ('methodName', 'k')]);
H_1(in0,hash1) <= HASH(W_1(mt1), W_1(in0), 'J', [('type', 'hashOne')]);
W_2(in1,mt2) <= APPLY(In_1(in1), In_1(in1), 'J', 'key_r', [('type', 'methodCall'), ('methodName', 'k')]);
H_2(in1,hash2) <= HASH(W_2(mt2), W_2(in1), 'J', [('type', 'hashOne')]);
J_1(in0,in1) <= JOIN(H_1(hash1), H_1(in0), H_2(hash2), H_2(in1), 'J', []);
W_3(in0,in1,mt3) <= APPLY(J_1(in0), J_1(in0,in1), 'J', 'get_1', [('type', 'methodCall'), ('methodName', 'v')]);
W_4(in0,in1,bl1) <= APPLY(W_3(mt3), W_3(in0,in1), 'J', 'gtc_1', [('type', 'const_comparison'), ('op', 'gt')]);
Flt_1(in0,in1) <= FILTER(W_4(bl1), W_4(in0,in1), 'J', []);
Out_0() <= OUTPUT(Flt_1(in0), 'db', 'out', 'Write', []);
";

    #[test]
    fn every_class_applies_and_is_caught_on_the_join_plan() {
        let prog = parse_program(PROG).unwrap();
        assert!(verify(&prog).is_clean(), "{}", verify(&prog).render());
        for &kind in ALL_MUTATIONS {
            let mut applied = 0;
            let mut caught = 0;
            for seed in 0..16 {
                let Some((mutant, m)) = mutate(&prog, kind, seed) else {
                    continue;
                };
                applied += 1;
                let report = verify(&mutant);
                if report.has_code(kind.expected_code()) {
                    caught += 1;
                } else {
                    eprintln!(
                        "MISSED {:?} ({}): expected {}\n{}",
                        kind,
                        m.description,
                        kind.expected_code(),
                        report.render()
                    );
                }
            }
            assert!(applied > 0, "{kind:?} never applied");
            assert_eq!(caught, applied, "{kind:?}: {caught}/{applied} caught");
        }
    }

    #[test]
    fn mutation_is_deterministic_in_the_seed() {
        let prog = parse_program(PROG).unwrap();
        for &kind in ALL_MUTATIONS {
            let a = mutate(&prog, kind, 42).map(|(p, _)| p);
            let b = mutate(&prog, kind, 42).map(|(p, _)| p);
            assert_eq!(a, b);
        }
    }
}
