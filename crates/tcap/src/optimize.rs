//! The rule-based TCAP optimizer (§7).
//!
//! The original system fires Prolog rules iteratively "until the plan cannot
//! be improved further". This module implements the same scheme as a Rust
//! rewrite engine with three rules, each taken from §7:
//!
//! 1. **Redundant call elimination** — two `APPLY`s of type
//!    `methodCall`/`attAccess` invoking the same method on the same data
//!    column, one an ancestor of the other: the descendant is removed and the
//!    ancestor's result carried through the graph (method calls are assumed
//!    purely functional, as the paper requires).
//! 2. **Selection push-down past joins** — a conjunct of a post-join
//!    predicate that depends on only one join input is recomputed on that
//!    input *before* the hash/join, with a new `FILTER`.
//! 3. **Dead-column pruning** — columns never referenced downstream are
//!    dropped from copy lists; statements whose outputs are never consumed
//!    are removed (narrower vector lists = less shallow-copy work).
//!
//! Every rule validates the exact shape it rewrites and bails conservatively
//! otherwise — an optimizer must never change program meaning.

use crate::analyze::{ColId, Provenance, TcapGraph};
use crate::ir::{meta_get, ColRef, TcapOp, TcapProgram, TcapStmt};
use std::collections::{BTreeSet, HashMap};

/// Which rules fired, how many times.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptimizerReport {
    pub redundant_applies_removed: usize,
    pub selections_pushed_down: usize,
    pub dead_columns_pruned: usize,
    pub dead_statements_removed: usize,
    pub iterations: usize,
}

/// An individual optimizer rule (exposed for ablation benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerRule {
    RedundantApply,
    SelectionPushdown,
    DeadColumns,
}

/// Optimizes `prog` in place with all rules, to fixpoint.
pub fn optimize(prog: &mut TcapProgram) -> OptimizerReport {
    optimize_with(
        prog,
        &[
            OptimizerRule::RedundantApply,
            OptimizerRule::SelectionPushdown,
            OptimizerRule::DeadColumns,
        ],
    )
}

/// Optimizes with a chosen subset of rules (ablation support).
///
/// When post-rule verification is enabled
/// ([`crate::verify::post_rule_checks_enabled`]: debug-default,
/// `PC_VERIFY_RULES=1|0` overrides) and the *input* program verifies clean,
/// every individual rule application is re-verified — a rule that breaks
/// well-formedness or type flow panics at its birthplace with rendered
/// diagnostics instead of surfacing as a runtime executor error.
pub fn optimize_with(prog: &mut TcapProgram, rules: &[OptimizerRule]) -> OptimizerReport {
    // Dirty input stays garbage-in/garbage-out: the acceptance paths reject
    // it with proper diagnostics; only rule-introduced breakage panics here.
    let check_rules =
        crate::verify::post_rule_checks_enabled() && crate::verify::verify(prog).is_clean();
    let mut report = OptimizerReport::default();
    for _ in 0..100 {
        report.iterations += 1;
        let mut changed = false;
        if rules.contains(&OptimizerRule::RedundantApply) && remove_redundant_apply(prog) {
            report.redundant_applies_removed += 1;
            changed = true;
            assert_rule_clean(prog, check_rules, "RedundantApply");
        }
        if rules.contains(&OptimizerRule::SelectionPushdown) && push_down_selection(prog) {
            report.selections_pushed_down += 1;
            changed = true;
            assert_rule_clean(prog, check_rules, "SelectionPushdown");
        }
        if rules.contains(&OptimizerRule::DeadColumns) {
            let (cols, stmts) = prune_dead(prog);
            if cols + stmts > 0 {
                report.dead_columns_pruned += cols;
                report.dead_statements_removed += stmts;
                changed = true;
                assert_rule_clean(prog, check_rules, "DeadColumns");
            }
        }
        if !changed {
            break;
        }
    }
    report
}

/// Post-rule verification: a rewrite that turned a clean program unclean is
/// an optimizer bug, reported at its birthplace.
fn assert_rule_clean(prog: &TcapProgram, enabled: bool, rule: &str) {
    if !enabled {
        return;
    }
    let report = crate::verify::verify(prog);
    if !report.is_clean() {
        panic!(
            "optimizer rule {rule} broke the program:\n{}\nprogram after the rule:\n{prog}",
            report.render()
        );
    }
}

// ------------------------------------------------------------- ref renaming

/// Rewrites every input reference to `old_list` so it reads `new_list`,
/// applying `col_renames` to the referenced column names.
fn rename_refs(
    prog: &mut TcapProgram,
    old_list: &str,
    new_list: &str,
    col_renames: &HashMap<String, String>,
) {
    let fix = |r: &mut ColRef| {
        if r.list == old_list {
            r.list = new_list.to_string();
            for c in r.cols.iter_mut() {
                if let Some(n) = col_renames.get(c) {
                    *c = n.clone();
                }
            }
        }
    };
    for s in prog.stmts.iter_mut() {
        match &mut s.op {
            TcapOp::Input { .. } => {}
            TcapOp::Apply { input, copy, .. }
            | TcapOp::FlatMap { input, copy, .. }
            | TcapOp::Hash { input, copy, .. } => {
                fix(input);
                fix(copy);
            }
            TcapOp::Filter { bool_col, copy, .. } => {
                fix(bool_col);
                fix(copy);
            }
            TcapOp::Join {
                lhs_hash,
                lhs_copy,
                rhs_hash,
                rhs_copy,
                ..
            } => {
                fix(lhs_hash);
                fix(lhs_copy);
                fix(rhs_hash);
                fix(rhs_copy);
            }
            TcapOp::Aggregate { key, value, .. } => {
                fix(key);
                fix(value);
            }
            TcapOp::Output { input, .. } => fix(input),
        }
    }
}

/// The column an APPLY/HASH/FLATMAP appends (output decl minus copied cols).
fn created_col(s: &TcapStmt) -> Option<String> {
    let copy_cols: &[String] = match &s.op {
        TcapOp::Apply { copy, .. } | TcapOp::FlatMap { copy, .. } | TcapOp::Hash { copy, .. } => {
            &copy.cols
        }
        _ => return None,
    };
    let mut created = s.output.cols.iter().filter(|c| !copy_cols.contains(c));
    let first = created.next()?.clone();
    if created.next().is_some() {
        return None; // multi-column appends not handled by the CSE rule
    }
    Some(first)
}

/// The list a statement primarily flows from (its copy source).
fn primary_source(s: &TcapStmt) -> Option<&str> {
    match &s.op {
        TcapOp::Apply { copy, .. }
        | TcapOp::FlatMap { copy, .. }
        | TcapOp::Hash { copy, .. }
        | TcapOp::Filter { copy, .. } => Some(&copy.list),
        _ => None,
    }
}

// -------------------------------------------------- rule 1: redundant apply

/// §7's first rule: if two APPLYs both invoke the same `methodName`
/// (or access the same `attName`), one is the ancestor of the other, and
/// both operate on the same data column, the descendant is removed and the
/// ancestor's result carried through the graph.
fn remove_redundant_apply(prog: &mut TcapProgram) -> bool {
    let g = TcapGraph::build(prog);
    let prov = Provenance::build(prog);

    let call_sig = |s: &TcapStmt| -> Option<(String, String, Vec<ColId>)> {
        if let TcapOp::Apply { input, meta, .. } = &s.op {
            let ty = meta_get(meta, "type")?;
            let name = match ty {
                "methodCall" => meta_get(meta, "methodName")?,
                "attAccess" => meta_get(meta, "attName")?,
                _ => return None,
            };
            let ids: Option<Vec<ColId>> = input
                .cols
                .iter()
                .map(|c| prov.id.get(&(input.list.clone(), c.clone())).cloned())
                .collect();
            Some((ty.to_string(), name.to_string(), ids?))
        } else {
            None
        }
    };

    for j in 0..prog.stmts.len() {
        let Some(sig_j) = call_sig(&prog.stmts[j]) else {
            continue;
        };
        for i in 0..prog.stmts.len() {
            if i == j || !g.is_ancestor(i, j) {
                continue;
            }
            let Some(sig_i) = call_sig(&prog.stmts[i]) else {
                continue;
            };
            if sig_i != sig_j {
                continue;
            }
            let Some(i_col) = created_col(&prog.stmts[i]) else {
                continue;
            };
            let Some(j_col) = created_col(&prog.stmts[j]) else {
                continue;
            };
            if try_eliminate(prog, i, j, &i_col, &j_col) {
                return true;
            }
        }
    }
    false
}

/// Carries statement `i`'s result column to `j`'s position and removes `j`.
fn try_eliminate(prog: &mut TcapProgram, i: usize, j: usize, i_col: &str, j_col: &str) -> bool {
    // Walk j's copy-source chain back to i, collecting the intermediate
    // statements that must carry i's column through.
    let i_list = prog.stmts[i].output.name.clone();
    let mut chain: Vec<usize> = Vec::new();
    let mut cur = match primary_source(&prog.stmts[j]) {
        Some(l) => l.to_string(),
        None => return false,
    };
    while cur != i_list {
        let Some(k) = prog.producer_index(&cur) else {
            return false;
        };
        // Only linear APPLY/FILTER/HASH chains are handled.
        let Some(src) = primary_source(&prog.stmts[k]) else {
            return false;
        };
        // Collision: an unrelated column with i's name already flows here.
        if prog.stmts[k].output.cols.iter().any(|c| c == i_col) {
            return false;
        }
        chain.push(k);
        cur = src.to_string();
    }

    // Carry i_col through every intermediate statement.
    for &k in chain.iter().rev() {
        let s = &mut prog.stmts[k];
        s.output.cols.push(i_col.to_string());
        match &mut s.op {
            TcapOp::Apply { copy, .. }
            | TcapOp::FlatMap { copy, .. }
            | TcapOp::Hash { copy, .. }
            | TcapOp::Filter { copy, .. } => copy.cols.push(i_col.to_string()),
            _ => return false,
        }
    }

    // Remove j; downstream reads of j's output move to j's source list, and
    // j's created column becomes i's column.
    let j_out = prog.stmts[j].output.name.clone();
    let j_src = primary_source(&prog.stmts[j]).unwrap().to_string();
    let mut renames = HashMap::new();
    renames.insert(j_col.to_string(), i_col.to_string());
    prog.stmts.remove(j);
    rename_refs(prog, &j_out, &j_src, &renames);
    true
}

// --------------------------------------------- rule 2: selection push-down

/// §7's second rule: a conjunct `b_i` of a post-join boolean predicate that
/// depends on only one join input is recomputed before that input's HASH,
/// guarded by a new FILTER, and dropped from the post-join predicate.
fn push_down_selection(prog: &mut TcapProgram) -> bool {
    let prov = Provenance::build(prog);

    // Find: FILTER  <-  bool_and APPLY  <-  ...  <-  JOIN
    for fi in 0..prog.stmts.len() {
        let TcapOp::Filter { bool_col, .. } = &prog.stmts[fi].op else {
            continue;
        };
        let Some(ai) = prog.producer_index(&bool_col.list) else {
            continue;
        };
        let TcapOp::Apply {
            input: and_in,
            meta,
            ..
        } = &prog.stmts[ai].op
        else {
            continue;
        };
        if meta_get(meta, "type") != Some("bool_and") || and_in.cols.len() != 2 {
            continue;
        }
        // Nearest JOIN ancestor along the copy chain.
        let mut cur = prog.stmts[ai].output.name.clone();
        let join_idx = loop {
            let Some(k) = prog.producer_index(&cur) else {
                break None;
            };
            match &prog.stmts[k].op {
                TcapOp::Join { .. } => break Some(k),
                _ => match primary_source(&prog.stmts[k]) {
                    Some(src) => cur = src.to_string(),
                    None => break None,
                },
            }
        };
        let Some(ji) = join_idx else { continue };

        // Identify the base columns reachable from each side of the join.
        let TcapOp::Join {
            lhs_hash, rhs_hash, ..
        } = &prog.stmts[ji].op
        else {
            continue;
        };
        let (lhs_src, lhs_bases) = side_info(prog, &prov, &lhs_hash.list);
        let (rhs_src, rhs_bases) = side_info(prog, &prov, &rhs_hash.list);
        let (Some(lhs_src), Some(rhs_src)) = (lhs_src, rhs_src) else {
            continue;
        };

        let and_list = and_in.list.clone();
        let operands = and_in.cols.clone();
        for (oi, conjunct) in operands.iter().enumerate() {
            let deps = prov.base_deps(&and_list, conjunct);
            if deps.is_empty() {
                continue;
            }
            let side = if deps.is_subset(&lhs_bases) {
                Some((lhs_src.clone(), 0))
            } else if deps.is_subset(&rhs_bases) {
                Some((rhs_src.clone(), 1))
            } else {
                None
            };
            let Some((src_list, side_idx)) = side else {
                continue;
            };
            let other = operands[1 - oi].clone();
            if try_push(
                prog, &prov, fi, ai, ji, conjunct, &other, &src_list, side_idx,
            ) {
                return true;
            }
        }
    }
    false
}

/// Walks up a join side's chain to its source list (INPUT or prior sink
/// output) and collects the base column ids flowing on that side.
fn side_info(
    prog: &TcapProgram,
    prov: &Provenance,
    hash_list: &str,
) -> (Option<String>, BTreeSet<ColId>) {
    let mut bases = BTreeSet::new();
    let mut cur = hash_list.to_string();
    loop {
        let Some(k) = prog.producer_index(&cur) else {
            return (None, bases);
        };
        let s = &prog.stmts[k];
        for c in &s.output.cols {
            bases.extend(prov.base_deps(&s.output.name, c));
        }
        match &s.op {
            TcapOp::Input { .. } | TcapOp::Join { .. } | TcapOp::Aggregate { .. } => {
                return (Some(s.output.name.clone()), bases)
            }
            _ => match primary_source(s) {
                Some(src) => cur = src.to_string(),
                None => return (None, bases),
            },
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn try_push(
    prog: &mut TcapProgram,
    prov: &Provenance,
    fi: usize,
    ai: usize,
    ji: usize,
    conjunct: &str,
    other_operand: &str,
    src_list: &str,
    _side_idx: usize,
) -> bool {
    // 1. Collect the post-join statements computing `conjunct`: walk the
    //    closure of producer APPLYs between the join and the AND, *backwards*
    //    so that dependencies discovered late (e.g. the method call feeding a
    //    comparison) are still picked up.
    let join_out = prog.stmts[ji].output.name.clone();
    let mut want: BTreeSet<String> = BTreeSet::from([conjunct.to_string()]);
    let mut chain: Vec<usize> = Vec::new();
    for k in ((ji + 1)..ai).rev() {
        let s = &prog.stmts[k];
        let Some(created) = created_col(s) else {
            continue;
        };
        if !want.contains(&created) {
            continue;
        }
        let TcapOp::Apply { input, .. } = &s.op else {
            return false;
        };
        chain.push(k);
        // Inputs that are themselves computed post-join must be produced too.
        for c in &input.cols {
            let id = prov.id.get(&(input.list.clone(), c.clone()));
            if let Some((def, _)) = id {
                if *def > ji {
                    want.insert(c.clone());
                }
            }
        }
    }
    chain.reverse(); // back to program order
                     // Everything wanted must be found among the chain's created columns.
    let produced: BTreeSet<String> = chain
        .iter()
        .filter_map(|&k| created_col(&prog.stmts[k]))
        .collect();
    if !want.iter().all(|c| produced.contains(c)) {
        return false;
    }
    if produced.len() != chain.len() {
        return false; // duplicate column names; cannot reason by name
    }
    // The chain's created columns may be *copied* through later vector lists
    // (they will be stripped below), but no non-chain statement other than
    // the AND may *compute* on them.
    for (k, s) in prog.stmts.iter().enumerate() {
        if chain.contains(&k) || k == ai {
            continue;
        }
        let compute_cols: Vec<&ColRef> = match &s.op {
            TcapOp::Apply { input, .. }
            | TcapOp::FlatMap { input, .. }
            | TcapOp::Hash { input, .. } => vec![input],
            TcapOp::Filter { bool_col, .. } => vec![bool_col],
            TcapOp::Join {
                lhs_hash, rhs_hash, ..
            } => vec![lhs_hash, rhs_hash],
            TcapOp::Aggregate { key, value, .. } => vec![key, value],
            TcapOp::Output { input, .. } => vec![input],
            TcapOp::Input { .. } => vec![],
        };
        for r in compute_cols {
            if r.cols.iter().any(|c| produced.contains(c)) {
                return false;
            }
        }
    }

    // 2. Clone the chain onto the join input side, reading from `src_list`.
    let src_cols = prog
        .producer(src_list)
        .map(|s| s.output.cols.clone())
        .unwrap_or_default();
    let mut cur_list = src_list.to_string();
    let mut cur_cols = src_cols.clone();
    let mut new_stmts: Vec<TcapStmt> = Vec::new();
    for &k in &chain {
        let TcapOp::Apply {
            input,
            computation,
            stage,
            meta,
            ..
        } = prog.stmts[k].op.clone()
        else {
            return false;
        };
        // every input column must already flow in the side chain
        if !input.cols.iter().all(|c| cur_cols.contains(c)) {
            return false;
        }
        let created = created_col(&prog.stmts[k]).unwrap();
        let out_name = fresh_among(prog, &new_stmts, "PshD");
        let mut out_cols = cur_cols.clone();
        out_cols.push(created.clone());
        new_stmts.push(TcapStmt {
            output: crate::ir::VecListDecl {
                name: out_name.clone(),
                cols: out_cols.clone(),
            },
            op: TcapOp::Apply {
                input: ColRef {
                    list: cur_list.clone(),
                    cols: input.cols.clone(),
                },
                copy: ColRef {
                    list: cur_list.clone(),
                    cols: cur_cols.clone(),
                },
                computation: computation.clone(),
                stage: stage.clone(),
                meta: meta.clone(),
            },
        });
        cur_list = out_name;
        cur_cols = out_cols;
    }
    // New FILTER restoring the side's original column set.
    let filter_name = prog.fresh_name("PshF");
    let computation = prog.stmts[ji].op.computation().to_string();
    new_stmts.push(TcapStmt {
        output: crate::ir::VecListDecl {
            name: filter_name.clone(),
            cols: src_cols.clone(),
        },
        op: TcapOp::Filter {
            bool_col: ColRef {
                list: cur_list.clone(),
                cols: vec![conjunct.to_string()],
            },
            copy: ColRef {
                list: cur_list.clone(),
                cols: src_cols.clone(),
            },
            computation,
            meta: vec![(String::from("type"), String::from("pushed_selection"))],
        },
    });

    // 3. Splice: insert the new statements right after the side's source
    //    statement; rewire the side chain's first consumer of `src_list`
    //    (other than the new statements) to read the filtered list.
    let src_idx = prog.producer_index(src_list).unwrap();
    let n_new = new_stmts.len();
    for (off, s) in new_stmts.into_iter().enumerate() {
        prog.stmts.insert(src_idx + 1 + off, s);
    }
    // Remap old consumers of src_list on this side (skip the cloned chain we
    // just inserted, which must keep reading the raw source).
    let first_new = src_idx + 1;
    let last_new = src_idx + n_new;
    let consumers: Vec<usize> = prog
        .consumers(src_list)
        .into_iter()
        .filter(|&c| c < first_new || c > last_new)
        .collect();
    for c in consumers {
        remap_one(&mut prog.stmts[c], src_list, &filter_name);
    }

    // 4. Remove the post-join conjunct chain and collapse the AND.
    //    (Indices of chain/ai/fi all shifted by n_new.)
    let shift = |k: usize| if k > src_idx { k + n_new } else { k };
    let ai = shift(ai);
    let fi = shift(fi);
    let mut to_remove: Vec<usize> = chain.iter().map(|&k| shift(k)).collect();

    // Rewire each removed stmt's output to its copy source.
    for &k in to_remove.iter() {
        let out = prog.stmts[k].output.name.clone();
        let src = primary_source(&prog.stmts[k]).unwrap().to_string();
        rename_refs(prog, &out, &src, &HashMap::new());
    }
    // Collapse AND: downstream (the FILTER) reads the surviving operand.
    let and_out = prog.stmts[ai].output.name.clone();
    let and_src = primary_source(&prog.stmts[ai]).unwrap().to_string();
    let and_created = created_col(&prog.stmts[ai]).unwrap();
    let mut renames = HashMap::new();
    renames.insert(and_created, other_operand.to_string());
    rename_refs(prog, &and_out, &and_src, &renames);
    let _ = fi;
    to_remove.push(ai);
    to_remove.sort_unstable();
    for k in to_remove.into_iter().rev() {
        prog.stmts.remove(k);
    }
    // 5. The chain's created columns were copied through later vector lists;
    //    strip them from every statement downstream of the join (they no
    //    longer exist post-join). Downstream-ness is computed by a BFS over
    //    list names so the pushed pre-join chain is untouched.
    let mut downstream_lists: BTreeSet<String> = BTreeSet::from([join_out.clone()]);
    loop {
        let mut grew = false;
        for s in prog.stmts.iter() {
            if s.op
                .input_lists()
                .iter()
                .any(|l| downstream_lists.contains(*l))
                && downstream_lists.insert(s.output.name.clone())
            {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    for s in prog.stmts.iter_mut() {
        let in_downstream =
            s.op.input_lists()
                .iter()
                .any(|l| downstream_lists.contains(*l))
                || downstream_lists.contains(&s.output.name);
        if !in_downstream {
            continue;
        }
        let strip = |r: &mut ColRef| {
            if downstream_lists.contains(&r.list) {
                r.cols.retain(|c| !produced.contains(c));
            }
        };
        match &mut s.op {
            TcapOp::Input { .. } => {}
            TcapOp::Apply { input, copy, .. }
            | TcapOp::FlatMap { input, copy, .. }
            | TcapOp::Hash { input, copy, .. } => {
                strip(input);
                strip(copy);
            }
            TcapOp::Filter { bool_col, copy, .. } => {
                strip(bool_col);
                strip(copy);
            }
            TcapOp::Join {
                lhs_hash,
                lhs_copy,
                rhs_hash,
                rhs_copy,
                ..
            } => {
                strip(lhs_hash);
                strip(lhs_copy);
                strip(rhs_hash);
                strip(rhs_copy);
            }
            TcapOp::Aggregate { key, value, .. } => {
                strip(key);
                strip(value);
            }
            TcapOp::Output { input, .. } => strip(input),
        }
        if downstream_lists.contains(&s.output.name) {
            s.output.cols.retain(|c| !produced.contains(c));
        }
    }
    true
}

/// A list name unused both in `prog` and among not-yet-inserted statements.
fn fresh_among(prog: &TcapProgram, pending: &[TcapStmt], prefix: &str) -> String {
    let mut i = 1;
    loop {
        let candidate = format!("{prefix}_{i}");
        if prog.producer(&candidate).is_none()
            && !pending.iter().any(|s| s.output.name == candidate)
        {
            return candidate;
        }
        i += 1;
    }
}

/// Rewrites one statement's references from `old` to `new` (no col renames).
fn remap_one(s: &mut TcapStmt, old: &str, new: &str) {
    let fix = |r: &mut ColRef| {
        if r.list == old {
            r.list = new.to_string();
        }
    };
    match &mut s.op {
        TcapOp::Input { .. } => {}
        TcapOp::Apply { input, copy, .. }
        | TcapOp::FlatMap { input, copy, .. }
        | TcapOp::Hash { input, copy, .. } => {
            fix(input);
            fix(copy);
        }
        TcapOp::Filter { bool_col, copy, .. } => {
            fix(bool_col);
            fix(copy);
        }
        TcapOp::Join {
            lhs_hash,
            lhs_copy,
            rhs_hash,
            rhs_copy,
            ..
        } => {
            fix(lhs_hash);
            fix(lhs_copy);
            fix(rhs_hash);
            fix(rhs_copy);
        }
        TcapOp::Aggregate { key, value, .. } => {
            fix(key);
            fix(value);
        }
        TcapOp::Output { input, .. } => fix(input),
    }
}

// ------------------------------------------------- rule 3: dead col/stmt

/// Drops columns never referenced by any consumer and removes statements
/// that no OUTPUT sink transitively depends on. Returns (columns pruned,
/// stmts removed). Programs without OUTPUT statements (fragments, as in the
/// §7 examples) are left untouched — there is no liveness root to prune
/// against.
fn prune_dead(prog: &mut TcapProgram) -> (usize, usize) {
    let mut pruned_cols = 0;
    let mut removed = 0;

    if !prog
        .stmts
        .iter()
        .any(|s| matches!(s.op, TcapOp::Output { .. }))
    {
        return (0, 0);
    }

    // Liveness: backward closure from OUTPUT statements.
    let g = TcapGraph::build(prog);
    let mut live = vec![false; prog.stmts.len()];
    let mut stack: Vec<usize> = prog
        .stmts
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.op, TcapOp::Output { .. }))
        .map(|(i, _)| i)
        .collect();
    while let Some(i) = stack.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        for &p in &g.preds[i] {
            stack.push(p);
        }
    }
    let mut i = prog.stmts.len();
    while i > 0 {
        i -= 1;
        if !live[i] {
            prog.stmts.remove(i);
            removed += 1;
        }
    }

    // Dead copied columns.
    let mut referenced: BTreeSet<(String, String)> = BTreeSet::new();
    for s in &prog.stmts {
        let mut add = |r: &ColRef| {
            for c in &r.cols {
                referenced.insert((r.list.clone(), c.clone()));
            }
        };
        match &s.op {
            TcapOp::Input { .. } => {}
            TcapOp::Apply { input, copy, .. }
            | TcapOp::FlatMap { input, copy, .. }
            | TcapOp::Hash { input, copy, .. } => {
                add(input);
                add(copy);
            }
            TcapOp::Filter { bool_col, copy, .. } => {
                add(bool_col);
                add(copy);
            }
            TcapOp::Join {
                lhs_hash,
                lhs_copy,
                rhs_hash,
                rhs_copy,
                ..
            } => {
                add(lhs_hash);
                add(lhs_copy);
                add(rhs_hash);
                add(rhs_copy);
            }
            TcapOp::Aggregate { key, value, .. } => {
                add(key);
                add(value);
            }
            TcapOp::Output { input, .. } => add(input),
        }
    }
    for s in prog.stmts.iter_mut() {
        if matches!(s.op, TcapOp::Input { .. }) {
            continue; // base object columns always stay
        }
        let name = s.output.name.clone();
        let keep = |c: &String| referenced.contains(&(name.clone(), c.clone()));
        // Only prune *copied* columns; created columns define the statement.
        let copy_cols: Vec<String> = match &s.op {
            TcapOp::Apply { copy, .. }
            | TcapOp::FlatMap { copy, .. }
            | TcapOp::Hash { copy, .. }
            | TcapOp::Filter { copy, .. } => copy.cols.clone(),
            _ => continue,
        };
        let dead: Vec<String> = copy_cols.iter().filter(|c| !keep(c)).cloned().collect();
        if dead.is_empty() {
            continue;
        }
        pruned_cols += dead.len();
        s.output.cols.retain(|c| !dead.contains(c));
        match &mut s.op {
            TcapOp::Apply { copy, .. }
            | TcapOp::FlatMap { copy, .. }
            | TcapOp::Hash { copy, .. }
            | TcapOp::Filter { copy, .. } => copy.cols.retain(|c| !dead.contains(c)),
            _ => {}
        }
    }
    (pruned_cols, removed)
}
