//! # mio (shim) — readiness polling over non-blocking `std::net` sockets
//!
//! Offline stand-in for the `mio` crate, scoped to what the cluster's
//! socket transport poll loop uses: `Poll` / `Registry` / `Events` /
//! `Token` / `Interest` and the `net::{TcpListener, TcpStream}` wrappers.
//!
//! Instead of epoll/kqueue, readiness is computed by sweeping the
//! registered sources: a stream is readable when a non-blocking `peek`
//! returns data (or the peer closed), and a listener is readable when a
//! speculative non-blocking `accept` succeeds — the accepted connection is
//! stashed so the caller's own `accept()` call observes it. Between empty
//! sweeps the poll sleeps ~1ms up to the caller's timeout, so the loop
//! never spins hot while idle.
//!
//! Known gaps vs. the real crate: level-triggered only (no edge modes), no
//! `Waker`, writable readiness is reported unconditionally, and
//! `TcpStream::connect` resolves synchronously (fine for loopback). As
//! everywhere in `crates/shims/`, callers must already tolerate spurious
//! wakeups and `WouldBlock`, which the real mio contract demands too.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Caller-chosen identifier for a registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interests a source is registered for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Readable readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Writable readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests (named `add` for mio API compatibility).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness event surfaced by [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    read_closed: bool,
}

impl Event {
    /// The token the ready source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Readable (data buffered, a pending accept, or peer close).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Writable.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// The peer closed its write half.
    pub fn is_read_closed(&self) -> bool {
        self.read_closed
    }
}

/// A batch of events filled by [`Poll::poll`].
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// An event buffer holding up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Self {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterates the events from the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// True when the last poll timed out with nothing ready.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the batch.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

#[doc(hidden)]
pub enum Source {
    Listener {
        listener: std::net::TcpListener,
        pending: Arc<Mutex<VecDeque<(std::net::TcpStream, SocketAddr)>>>,
    },
    Stream(std::net::TcpStream),
}

struct Entry {
    source: Source,
    interest: Interest,
    /// Registration identity. Sockets cannot be told apart by address here:
    /// every connection accepted from a listener shares the listener's
    /// local address, so each shim socket carries a unique id instead.
    id: u64,
}

/// Registration handle: sources are (de)registered here.
#[derive(Clone)]
pub struct Registry {
    sources: Arc<Mutex<HashMap<Token, Entry>>>,
}

impl Registry {
    /// Registers a source for the given interests under `token`.
    pub fn register<S: event::Source>(
        &self,
        source: &mut S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let entry = Entry {
            source: source.shim_source()?,
            interest,
            id: source.shim_id()?,
        };
        self.sources
            .lock()
            .expect("mio shim registry poisoned")
            .insert(token, entry);
        Ok(())
    }

    /// Removes a source from the registry.
    pub fn deregister<S: event::Source>(&self, source: &mut S) -> io::Result<()> {
        let id = source.shim_id()?;
        self.sources
            .lock()
            .expect("mio shim registry poisoned")
            .retain(|_, e| e.id != id);
        Ok(())
    }
}

/// Unique identity for every shim socket (see [`Entry::id`]).
fn next_sock_id() -> u64 {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// The poll handle: sweeps registered sources for readiness.
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// A new, empty poll.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                sources: Arc::new(Mutex::new(HashMap::new())),
            },
        })
    }

    /// The registry sources are added to.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready or `timeout`
    /// elapses (`None` sweeps with a generous default rather than forever,
    /// so shutdown flags polled by the caller stay responsive).
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let deadline = Instant::now() + timeout.unwrap_or(Duration::from_millis(100));
        loop {
            {
                let sources = self
                    .registry
                    .sources
                    .lock()
                    .expect("mio shim registry poisoned");
                for (token, entry) in sources.iter() {
                    if events.inner.len() >= events.capacity {
                        break;
                    }
                    if let Some(ev) = readiness(*token, entry) {
                        events.inner.push(ev);
                    }
                }
            }
            if !events.inner.is_empty() || Instant::now() >= deadline {
                return Ok(());
            }
            std::thread::sleep(
                Duration::from_millis(1).min(deadline.saturating_duration_since(Instant::now())),
            );
        }
    }
}

fn readiness(token: Token, entry: &Entry) -> Option<Event> {
    let mut readable = false;
    let mut read_closed = false;
    match &entry.source {
        Source::Listener { listener, pending } => {
            if entry.interest.is_readable() {
                let mut q = pending.lock().expect("mio shim accept queue poisoned");
                if q.is_empty() {
                    // Speculative accept: readiness for a listener *is* a
                    // connection waiting, so take it and stash it for the
                    // caller's accept().
                    if let Ok(conn) = listener.accept() {
                        q.push_back(conn);
                    }
                }
                readable = !q.is_empty();
            }
        }
        Source::Stream(s) => {
            if entry.interest.is_readable() {
                let mut probe = [0u8; 1];
                match s.peek(&mut probe) {
                    Ok(0) => {
                        readable = true;
                        read_closed = true;
                    }
                    Ok(_) => readable = true,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(_) => {
                        // Socket error: surface it through the caller's read.
                        readable = true;
                        read_closed = true;
                    }
                }
            }
        }
    }
    let writable = entry.interest.is_writable();
    if readable || writable {
        Some(Event {
            token,
            readable,
            writable,
            read_closed,
        })
    } else {
        None
    }
}

/// Internal source plumbing (the real mio has a richer `event::Source`
/// trait; the shim only needs to lift std sockets into the registry).
pub mod event {
    use super::*;

    /// A type that can be registered with a [`Registry`].
    pub trait Source {
        /// A cloned handle the registry sweeps for readiness.
        fn shim_source(&mut self) -> io::Result<super::Source>;
        /// Identity used by deregister.
        fn shim_id(&mut self) -> io::Result<u64>;
    }
}

/// Non-blocking TCP types mirroring `mio::net`.
pub mod net {
    use super::*;

    /// A non-blocking listener.
    pub struct TcpListener {
        inner: std::net::TcpListener,
        pending: Arc<Mutex<VecDeque<(std::net::TcpStream, SocketAddr)>>>,
        id: u64,
    }

    impl TcpListener {
        /// Binds a non-blocking listener.
        pub fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
            let inner = std::net::TcpListener::bind(addr)?;
            inner.set_nonblocking(true)?;
            Ok(TcpListener {
                inner,
                pending: Arc::new(Mutex::new(VecDeque::new())),
                id: next_sock_id(),
            })
        }

        /// The bound address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Accepts one pending connection (stashed by the poll sweep or
        /// taken directly from the socket), `WouldBlock` when none waits.
        pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let stashed = self
                .pending
                .lock()
                .expect("mio shim accept queue poisoned")
                .pop_front();
            let (stream, addr) = match stashed {
                Some(conn) => conn,
                None => self.inner.accept()?,
            };
            stream.set_nonblocking(true)?;
            Ok((
                TcpStream {
                    inner: stream,
                    id: next_sock_id(),
                },
                addr,
            ))
        }
    }

    impl event::Source for TcpListener {
        fn shim_source(&mut self) -> io::Result<super::Source> {
            Ok(super::Source::Listener {
                listener: self.inner.try_clone()?,
                pending: self.pending.clone(),
            })
        }

        fn shim_id(&mut self) -> io::Result<u64> {
            Ok(self.id)
        }
    }

    /// A non-blocking stream.
    pub struct TcpStream {
        inner: std::net::TcpStream,
        id: u64,
    }

    impl TcpStream {
        /// Connects and switches to non-blocking mode. Unlike real mio this
        /// resolves synchronously (loopback connects are immediate), so no
        /// WRITABLE wait is needed before use.
        pub fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
            let inner = std::net::TcpStream::connect(addr)?;
            inner.set_nonblocking(true)?;
            Ok(TcpStream {
                inner,
                id: next_sock_id(),
            })
        }

        /// The peer's address.
        pub fn peer_addr(&self) -> io::Result<SocketAddr> {
            self.inner.peer_addr()
        }

        /// The local address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }
    }

    impl Read for TcpStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl Write for TcpStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.inner.write(buf)
        }

        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    impl event::Source for TcpStream {
        fn shim_source(&mut self) -> io::Result<super::Source> {
            Ok(super::Source::Stream(self.inner.try_clone()?))
        }

        fn shim_id(&mut self) -> io::Result<u64> {
            Ok(self.id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[test]
    fn listener_reports_readable_and_accepts() {
        let poll = Poll::new().unwrap();
        let mut listener = net::TcpListener::bind(loopback()).unwrap();
        let addr = listener.local_addr().unwrap();
        poll.registry()
            .register(&mut listener, Token(1), Interest::READABLE)
            .unwrap();

        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "no connection yet");

        let client = std::net::TcpStream::connect(addr).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(1) && e.is_readable()));
        let (_conn, peer) = listener.accept().unwrap();
        assert_eq!(peer, client.local_addr().unwrap());
    }

    #[test]
    fn stream_reports_data_and_close() {
        let poll = Poll::new().unwrap();
        let mut listener = net::TcpListener::bind(loopback()).unwrap();
        let addr = listener.local_addr().unwrap();
        poll.registry()
            .register(&mut listener, Token(0), Interest::READABLE)
            .unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();

        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        poll.registry()
            .register(&mut server_side, Token(7), Interest::READABLE)
            .unwrap();

        client.write_all(b"ping").unwrap();
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while got.len() < 4 && Instant::now() < deadline {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for ev in &events {
                if ev.token() == Token(7) && ev.is_readable() {
                    let mut buf = [0u8; 16];
                    match server_side.read(&mut buf) {
                        Ok(n) => got.extend_from_slice(&buf[..n]),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                        Err(e) => panic!("read: {e}"),
                    }
                }
            }
        }
        assert_eq!(&got, b"ping");

        drop(client);
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut saw_close = false;
        while !saw_close && Instant::now() < deadline {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            saw_close = events
                .iter()
                .any(|e| e.token() == Token(7) && e.is_read_closed());
        }
        assert!(saw_close, "peer close must surface as read_closed");
    }

    #[test]
    fn deregister_silences_a_source() {
        let poll = Poll::new().unwrap();
        let mut listener = net::TcpListener::bind(loopback()).unwrap();
        let addr = listener.local_addr().unwrap();
        poll.registry()
            .register(&mut listener, Token(3), Interest::READABLE)
            .unwrap();
        poll.registry().deregister(&mut listener).unwrap();
        let _client = std::net::TcpStream::connect(addr).unwrap();
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "deregistered sources never fire");
    }
}
