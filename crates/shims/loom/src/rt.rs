//! The exploration runtime: a cooperative scheduler over real OS threads
//! (exactly one runnable at a time), a recorded schedule of choice points,
//! and depth-first backtracking with a preemption bound.

use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Sentinel payload used to unwind model threads when the current execution
/// is being torn down (a violation was found elsewhere, or the run is being
/// aborted). Swallowed by every `catch_unwind` in the runtime — never
/// reported as a violation itself.
pub(crate) struct AbortToken;

/// What a blocked thread is waiting on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BlockOn {
    /// A shimmed mutex, by its id.
    Lock(usize),
    /// Another model thread finishing, by its id.
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

/// One recorded scheduling decision: the runnable threads that were
/// eligible, and which one was picked. Backtracking advances `picked`
/// through `options` depth-first.
#[derive(Clone, Debug)]
struct Choice {
    options: Vec<usize>,
    picked: usize,
}

struct SchedState {
    status: Vec<Status>,
    /// Id of the thread allowed to run, or `usize::MAX` once all finished.
    current: usize,
    /// Position in `schedule` during replay.
    depth: usize,
    preemptions: usize,
    schedule: Vec<Choice>,
    abort: bool,
    violation: Option<String>,
    bound: usize,
}

pub(crate) struct Scheduler {
    state: StdMutex<SchedState>,
    cv: Condvar,
    /// OS handles of every model thread spawned this run; joined between
    /// iterations so no thread leaks into the next schedule.
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

struct Ctx {
    sched: Arc<Scheduler>,
    id: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Installs the model-thread context on the calling OS thread.
pub(crate) fn enter_model_thread(sched: Arc<Scheduler>, id: usize) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { sched, id }));
}

/// Removes the model-thread context from the calling OS thread.
pub(crate) fn leave_model_thread() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// The scheduler + own id of the calling model thread, if any. `None` means
/// the caller is outside `model()` — shimmed primitives then degrade to
/// plain sequentially-consistent std behavior.
pub(crate) fn current() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().as_ref().map(|x| (x.sched.clone(), x.id)))
}

/// A visible-operation choice point for the calling model thread: lets the
/// scheduler pick (and possibly switch to) any runnable thread before the
/// operation executes. No-op outside `model()` and during unwinding.
pub(crate) fn switch_point() {
    if std::thread::panicking() {
        return;
    }
    if let Some((sched, me)) = current() {
        sched.switch_point_for(me);
    }
}

fn abort_unwind() -> ! {
    resume_unwind(Box::new(AbortToken))
}

impl Scheduler {
    fn new(bound: usize) -> Self {
        Scheduler {
            state: StdMutex::new(SchedState {
                status: vec![Status::Runnable],
                current: 0,
                depth: 0,
                preemptions: 0,
                schedule: Vec::new(),
                abort: false,
                violation: None,
                bound,
            }),
            cv: Condvar::new(),
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    fn reset_run(&self) {
        let mut st = self.state.lock().unwrap();
        st.status.clear();
        st.status.push(Status::Runnable);
        st.current = 0;
        st.depth = 0;
        st.preemptions = 0;
        st.abort = false;
        st.violation = None;
    }

    /// Picks the next thread to run. `me` is the thread asking (a candidate
    /// if still runnable), or `None` when the asker just finished. Sets a
    /// deadlock violation when live threads remain but none is runnable.
    fn choose_locked(&self, st: &mut SchedState, me: Option<usize>) {
        let enabled: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Status::Runnable))
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.status.iter().all(|s| matches!(s, Status::Finished)) {
                st.current = usize::MAX;
            } else {
                let waiting: Vec<(usize, BlockOn)> = st
                    .status
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| match s {
                        Status::Blocked(on) => Some((i, *on)),
                        _ => None,
                    })
                    .collect();
                if st.violation.is_none() {
                    st.violation = Some(format!(
                        "deadlock: every live thread is blocked: {waiting:?}"
                    ));
                }
                st.abort = true;
            }
            return;
        }
        let me_enabled = me.is_some_and(|m| matches!(st.status[m], Status::Runnable));
        let options = if me_enabled && st.preemptions >= st.bound {
            // Preemption budget spent: the running thread keeps running
            // until it blocks or finishes (a forced switch is free).
            vec![me.unwrap_or(0)]
        } else {
            enabled
        };
        let picked = if options.len() == 1 {
            // A forced pick is not a choice point; recording it would only
            // bloat the schedule.
            0
        } else if st.depth < st.schedule.len() {
            let c = &st.schedule[st.depth];
            assert_eq!(
                c.options, options,
                "model closure is nondeterministic: replay diverged at choice {}",
                st.depth
            );
            let p = c.picked;
            st.depth += 1;
            p
        } else {
            st.schedule.push(Choice {
                options: options.clone(),
                picked: 0,
            });
            st.depth += 1;
            0
        };
        let next = options[picked];
        if me_enabled && Some(next) != me {
            st.preemptions += 1;
        }
        st.current = next;
    }

    /// Blocks the calling OS thread until the scheduler hands it the turn.
    /// Unwinds with [`AbortToken`] if the execution is torn down meanwhile.
    pub(crate) fn wait_for_turn(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        while st.current != me && !st.abort {
            st = self.cv.wait(st).unwrap();
        }
        if st.abort {
            drop(st);
            abort_unwind();
        }
    }

    pub(crate) fn switch_point_for(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        if st.abort {
            drop(st);
            abort_unwind();
        }
        self.choose_locked(&mut st, Some(me));
        let next = st.current;
        let aborted = st.abort;
        drop(st);
        if aborted {
            self.cv.notify_all();
            abort_unwind();
        }
        if next != me {
            self.cv.notify_all();
            self.wait_for_turn(me);
        }
    }

    /// Acquires shim mutex `lock_id` for thread `me`, blocking (and letting
    /// other threads run) while it is held elsewhere. The caller passes a
    /// switch point *before* this, so the acquire itself races correctly.
    pub(crate) fn mutex_lock(&self, me: usize, lock_id: usize, locked: &AtomicBool) {
        loop {
            let mut st = self.state.lock().unwrap();
            if st.abort {
                drop(st);
                abort_unwind();
            }
            if !locked.load(Relaxed) {
                locked.store(true, Relaxed);
                return;
            }
            st.status[me] = Status::Blocked(BlockOn::Lock(lock_id));
            self.choose_locked(&mut st, Some(me));
            let aborted = st.abort;
            drop(st);
            self.cv.notify_all();
            if aborted {
                abort_unwind();
            }
            self.wait_for_turn(me);
        }
    }

    /// Releases shim mutex `lock_id`, making every thread blocked on it
    /// runnable again.
    pub(crate) fn mutex_unlock(&self, lock_id: usize, locked: &AtomicBool) {
        let mut st = self.state.lock().unwrap();
        locked.store(false, Relaxed);
        for s in st.status.iter_mut() {
            if *s == Status::Blocked(BlockOn::Lock(lock_id)) {
                *s = Status::Runnable;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Registers a new model thread (runnable, waiting for its first turn).
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.status.push(Status::Runnable);
        st.status.len() - 1
    }

    pub(crate) fn track_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os_handles.lock().unwrap().push(h);
    }

    /// Blocks thread `me` until thread `target` finishes.
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        self.switch_point_for(me);
        loop {
            let mut st = self.state.lock().unwrap();
            if st.abort {
                drop(st);
                abort_unwind();
            }
            if st.status[target] == Status::Finished {
                return;
            }
            st.status[me] = Status::Blocked(BlockOn::Join(target));
            self.choose_locked(&mut st, Some(me));
            let aborted = st.abort;
            drop(st);
            self.cv.notify_all();
            if aborted {
                abort_unwind();
            }
            self.wait_for_turn(me);
        }
    }

    /// Marks `me` finished, wakes its joiners, and hands the turn onward.
    pub(crate) fn finish(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        st.status[me] = Status::Finished;
        for s in st.status.iter_mut() {
            if *s == Status::Blocked(BlockOn::Join(me)) {
                *s = Status::Runnable;
            }
        }
        if !st.abort {
            self.choose_locked(&mut st, None);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Records a model-code panic as a violation and tears the run down.
    pub(crate) fn report_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        if payload.is::<AbortToken>() {
            return;
        }
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "model thread panicked (non-string payload)".to_string()
        };
        let mut st = self.state.lock().unwrap();
        if st.violation.is_none() {
            st.violation = Some(msg);
        }
        st.abort = true;
        drop(st);
        self.cv.notify_all();
    }

    fn join_all_os(&self) {
        let handles: Vec<_> = std::mem::take(&mut *self.os_handles.lock().unwrap());
        for h in handles {
            // A thread unwound by AbortToken ends in Err; that's teardown,
            // not a second violation.
            let _ = h.join();
        }
    }

    /// Advances the recorded schedule to the next unexplored branch.
    /// Returns false when the whole tree has been explored.
    fn advance_schedule(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        while let Some(c) = st.schedule.last_mut() {
            c.picked += 1;
            if c.picked < c.options.len() {
                return true;
            }
            st.schedule.pop();
        }
        false
    }

    fn take_violation(&self) -> Option<(String, Vec<usize>)> {
        let st = self.state.lock().unwrap();
        st.violation.clone().map(|msg| {
            (
                msg,
                st.schedule.iter().map(|c| c.options[c.picked]).collect(),
            )
        })
    }
}

/// A violation found by the model checker: the failure message plus the
/// schedule (sequence of thread picks at each choice point) reproducing it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub message: String,
    /// Thread id picked at each recorded choice point of the failing run.
    pub schedule: Vec<usize>,
    /// Executions completed before (and including) the failing one.
    pub iterations: usize,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model checking failed after {} execution(s)\nviolation: {}\nschedule (thread picks): {:?}",
            self.iterations, self.message, self.schedule
        )
    }
}

/// Exploration configuration.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum involuntary context switches per execution (the CHESS
    /// preemption bound). `None` removes the bound — exhaustive, and
    /// exponential in program length.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored executions; exceeded means the model is too big
    /// for the bound and the check panics rather than spinning forever.
    pub max_iterations: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: Some(2),
            max_iterations: 1_000_000,
        }
    }
}

impl Builder {
    /// Explores every schedule of `f` up to the bound; panics (with the
    /// reproducing schedule) on the first violation. Returns the number of
    /// distinct executions explored.
    pub fn check<F>(&self, f: F) -> usize
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.try_check(f) {
            Ok(n) => n,
            Err(v) => panic!("{v}"),
        }
    }

    /// Like [`check`](Builder::check) but returns the violation instead of
    /// panicking — the hook the known-bad-protocol tests use to prove the
    /// checker has teeth.
    pub fn try_check<F>(&self, f: F) -> Result<usize, Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        let bound = self.preemption_bound.unwrap_or(usize::MAX);
        let sched = Arc::new(Scheduler::new(bound));
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "loom: exploration exceeded {} executions; tighten the preemption bound",
                self.max_iterations
            );
            sched.reset_run();
            enter_model_thread(sched.clone(), 0);
            let out = catch_unwind(AssertUnwindSafe(&f));
            if let Err(p) = out {
                sched.report_panic(p);
            }
            sched.finish(0);
            leave_model_thread();
            sched.join_all_os();
            if let Some((message, schedule)) = sched.take_violation() {
                return Err(Violation {
                    message,
                    schedule,
                    iterations,
                });
            }
            if !sched.advance_schedule() {
                return Ok(iterations);
            }
        }
    }
}

/// Model-checks `f` with the default preemption bound (2). Panics on the
/// first violating interleaving; returns the number of executions explored.
pub fn model<F>(f: F) -> usize
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}

/// [`model`] with an explicit preemption bound.
pub fn model_bounded<F>(bound: usize, f: F) -> usize
where
    F: Fn() + Send + Sync + 'static,
{
    Builder {
        preemption_bound: Some(bound),
        ..Builder::default()
    }
    .check(f)
}

/// Non-panicking [`model`]: `Err` carries the first violation found.
pub fn try_model<F>(f: F) -> Result<usize, Violation>
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().try_check(f)
}

/// [`try_model`] with an explicit preemption bound.
pub fn try_model_bounded<F>(bound: usize, f: F) -> Result<usize, Violation>
where
    F: Fn() + Send + Sync + 'static,
{
    Builder {
        preemption_bound: Some(bound),
        ..Builder::default()
    }
    .try_check(f)
}
