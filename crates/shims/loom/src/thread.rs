//! Shimmed threads: model threads are real OS threads, but the scheduler
//! lets exactly one run at a time and decides every handoff.

use crate::rt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    target: usize,
    result: Arc<StdMutex<Option<T>>>,
    sched: Arc<rt::Scheduler>,
}

impl<T> JoinHandle<T> {
    /// Blocks (as a model operation — other threads keep interleaving)
    /// until the thread finishes, returning its value. Mirrors std's
    /// signature; a panic in the child aborts the whole execution as a
    /// violation, so the `Err` arm is never actually constructed.
    pub fn join(self) -> std::thread::Result<T> {
        let (sched, me) = rt::current().expect("loom: JoinHandle::join outside loom::model");
        sched.join_wait(me, self.target);
        let v = self
            .result
            .lock()
            .unwrap()
            .take()
            .expect("loom: joined thread produced no result");
        drop(self.sched);
        Ok(v)
    }
}

/// Spawns a model thread. The spawn is a visible operation: the scheduler
/// may run the child immediately or let the parent continue — both
/// interleavings are explored.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (sched, me) = rt::current().expect("loom: thread::spawn outside loom::model");
    let id = sched.register_thread();
    let result = Arc::new(StdMutex::new(None));
    let result2 = result.clone();
    let sched2 = sched.clone();
    let os = std::thread::Builder::new()
        .name(format!("loom-model-{id}"))
        .spawn(move || {
            rt::enter_model_thread(sched2.clone(), id);
            let body = sched2.clone();
            let out = catch_unwind(AssertUnwindSafe(move || {
                body.wait_for_turn(id);
                f()
            }));
            match out {
                Ok(v) => *result2.lock().unwrap() = Some(v),
                Err(p) => sched2.report_panic(p),
            }
            sched2.finish(id);
            rt::leave_model_thread();
        })
        .expect("loom: OS thread spawn failed");
    sched.track_os_handle(os);
    sched.switch_point_for(me);
    JoinHandle {
        target: id,
        result,
        sched,
    }
}

/// A bare switch point: lets any other runnable thread run now.
pub fn yield_now() {
    rt::switch_point();
}
