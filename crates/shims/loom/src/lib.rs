//! # loom (shim) — a loom-style concurrency model checker
//!
//! Offline stand-in for the `loom` crate: programs written against the
//! shimmed primitives in [`sync`] and [`thread`] are executed under a
//! scheduler that *exhaustively enumerates interleavings* instead of leaving
//! them to the OS. [`model`] re-runs the closure once per distinct schedule;
//! an assertion failure, panic, or deadlock in **any** interleaving is
//! reported with the schedule that produced it.
//!
//! ## How it works
//!
//! Only one model thread runs at a time: every visible operation (atomic
//! access, mutex lock/unlock, spawn, join) first passes through a *switch
//! point* where the scheduler picks which runnable thread goes next. The
//! sequence of picks forms a schedule; depth-first backtracking over the
//! recorded choice points enumerates every schedule up to a *preemption
//! bound* (the number of times a runnable thread may be involuntarily
//! descheduled — the CHESS insight: almost all concurrency bugs manifest
//! with just a couple of preemptions).
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! let n = loom::model(|| {
//!     let x = Arc::new(AtomicUsize::new(0));
//!     let x2 = x.clone();
//!     let t = loom::thread::spawn(move || x2.fetch_add(1, Ordering::SeqCst));
//!     x.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(x.load(Ordering::SeqCst), 2);
//! });
//! assert!(n >= 2); // more than one distinct interleaving was explored
//! ```
//!
//! Differences from real loom: the memory model is sequential consistency
//! (orderings are accepted and ignored), there is no `UnsafeCell` tracking,
//! and exploration is bounded by preemptions rather than loom's more
//! sophisticated DPOR. That is enough teeth for protocol-level checking:
//! lost updates, double-consumes, check-then-act races, and deadlocks all
//! surface within one or two preemptions.

pub mod sync;
pub mod thread;

pub(crate) mod rt;

pub use rt::{model, model_bounded, try_model, try_model_bounded, Builder, Violation};
