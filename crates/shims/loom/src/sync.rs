//! Shimmed synchronization primitives: every visible operation passes
//! through a scheduler switch point, so the model checker can interleave
//! threads around it. Outside [`model`](crate::model) the shims degrade to
//! plain sequentially-consistent std behavior.

use crate::rt;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicUsize as StdAtomicUsize, Ordering::Relaxed};

pub use std::sync::Arc;

/// Shimmed atomics. Orderings are accepted for API compatibility and
/// ignored: the model explores sequentially-consistent interleavings.
pub mod atomic {
    use crate::rt;
    pub use std::sync::atomic::Ordering;
    use std::sync::atomic::Ordering::SeqCst;

    macro_rules! shim_atomic {
        ($name:ident, $std:ty, $ty:ty) => {
            /// Model-checked atomic: each access is a scheduler switch point.
            #[derive(Debug, Default)]
            pub struct $name($std);

            impl $name {
                pub const fn new(v: $ty) -> Self {
                    Self(<$std>::new(v))
                }

                pub fn load(&self, _order: Ordering) -> $ty {
                    rt::switch_point();
                    self.0.load(SeqCst)
                }

                pub fn store(&self, v: $ty, _order: Ordering) {
                    rt::switch_point();
                    self.0.store(v, SeqCst)
                }

                pub fn swap(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::switch_point();
                    self.0.swap(v, SeqCst)
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    rt::switch_point();
                    self.0.compare_exchange(current, new, SeqCst, SeqCst)
                }

                /// Reads without a switch point — for assertions *after* the
                /// concurrent phase, where extra interleavings add nothing.
                pub fn unsync_load(&self) -> $ty {
                    self.0.load(SeqCst)
                }
            }
        };
    }

    shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

    macro_rules! shim_fetch_arith {
        ($name:ident, $ty:ty) => {
            impl $name {
                pub fn fetch_add(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::switch_point();
                    self.0.fetch_add(v, SeqCst)
                }

                pub fn fetch_sub(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::switch_point();
                    self.0.fetch_sub(v, SeqCst)
                }

                pub fn fetch_max(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::switch_point();
                    self.0.fetch_max(v, SeqCst)
                }
            }
        };
    }

    shim_fetch_arith!(AtomicUsize, usize);
    shim_fetch_arith!(AtomicU64, u64);
}

/// Global mutex id source: ids only need to be unique within one execution,
/// monotonically increasing across all is more than enough.
static LOCK_IDS: StdAtomicUsize = StdAtomicUsize::new(0);

/// Model-checked mutex. `lock` is a switch point and blocks the model
/// thread (letting others run) while held elsewhere; dropping the guard
/// wakes blocked threads. Poisoning is not modeled: a panic under the lock
/// aborts the whole execution as a violation anyway.
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: the scheduler enforces that only one model thread runs at a time
// and `locked` gates all access to `data` exactly like a real mutex.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(data: T) -> Self {
        Mutex {
            id: LOCK_IDS.fetch_add(1, Relaxed),
            locked: AtomicBool::new(false),
            data: UnsafeCell::new(data),
        }
    }

    /// Acquires the mutex. The `Result` mirrors std's poisoning API but is
    /// always `Ok` here.
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, std::convert::Infallible> {
        match rt::current() {
            Some((sched, me)) => {
                sched.switch_point_for(me);
                sched.mutex_lock(me, self.id, &self.locked);
            }
            None => {
                // Outside a model: single-threaded use; just take it.
                assert!(
                    !self.locked.swap(true, Relaxed),
                    "loom Mutex contended outside loom::model"
                );
            }
        }
        Ok(MutexGuard { mutex: self })
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the guard holds the (model-checked) exclusive lock.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the (model-checked) exclusive lock.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        match rt::current() {
            Some((sched, _me)) => sched.mutex_unlock(self.mutex.id, &self.mutex.locked),
            None => self.mutex.locked.store(false, Relaxed),
        }
    }
}
