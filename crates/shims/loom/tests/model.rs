//! The model checker checking itself: interleaving coverage, mutual
//! exclusion, race detection, and deadlock detection.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};

#[test]
fn explores_more_than_one_interleaving() {
    let n = loom::model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = x.clone();
        let t = loom::thread::spawn(move || {
            x2.fetch_add(1, Ordering::SeqCst);
        });
        x.fetch_add(2, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(x.unsync_load(), 3);
    });
    assert!(n > 1, "expected multiple interleavings, got {n}");
}

#[test]
fn atomic_increments_never_lose_updates() {
    loom::model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let x = x.clone();
                loom::thread::spawn(move || {
                    x.fetch_add(1, Ordering::SeqCst);
                    x.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(x.unsync_load(), 4);
    });
}

#[test]
fn load_then_store_race_is_caught() {
    // The classic lost update: both threads read 0, both write 1.
    let v = loom::try_model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let x = x.clone();
                loom::thread::spawn(move || {
                    let cur = x.load(Ordering::SeqCst);
                    x.store(cur + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(x.unsync_load(), 2, "lost update");
    })
    .expect_err("the lost-update race must be found");
    assert!(
        v.message.contains("lost update"),
        "unexpected: {}",
        v.message
    );
}

#[test]
fn mutex_guarantees_exclusion() {
    loom::model(|| {
        let x = Arc::new(Mutex::new(0usize));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let x = x.clone();
                loom::thread::spawn(move || {
                    let mut g = x.lock().unwrap();
                    let cur = *g;
                    *g = cur + 1;
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*x.lock().unwrap(), 2);
    });
}

#[test]
fn lock_order_inversion_deadlocks_are_caught() {
    let v = loom::try_model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = loom::thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        }
        t.join().unwrap();
    })
    .expect_err("the AB-BA deadlock must be found");
    assert!(v.message.contains("deadlock"), "unexpected: {}", v.message);
}

#[test]
fn compare_exchange_based_counter_is_sound() {
    loom::model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let x = x.clone();
                loom::thread::spawn(move || loop {
                    let cur = x.load(Ordering::SeqCst);
                    if x.compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        break;
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(x.unsync_load(), 2);
    });
}
