//! Offline stand-in for the crates.io `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of the `parking_lot` API the codebase uses — `Mutex` and
//! `RwLock` with guards returned directly (no `LockResult`). Internally these
//! wrap the `std::sync` primitives and recover from poisoning, which matches
//! `parking_lot`'s no-poisoning semantics closely enough for this repo.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.0.try_read().ok()
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.0.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
