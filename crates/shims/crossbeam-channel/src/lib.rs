//! Offline stand-in for the crates.io `crossbeam-channel` crate.
//!
//! Provides the API surface the workspace uses: `bounded` / `unbounded`
//! multi-producer **multi-consumer** channels with cloneable senders and
//! receivers, blocking `send` / `recv`, and the `_timeout` variants the
//! streaming transport's flow control and failure detection rely on.
//!
//! Implementation: `std::sync::mpsc` underneath, with the receiver wrapped
//! in an `Arc<Mutex<..>>` so it can be cloned and shared across consumer
//! threads (real crossbeam receivers are lock-free; this shim trades that
//! for ~40 lines). Bounded capacity maps to `mpsc::sync_channel`, so a full
//! channel blocks senders — the backpressure semantics the transport needs.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Sending half of a channel. Cloneable; all clones feed the same queue.
pub struct Sender<T> {
    inner: mpsc::SyncSender<T>,
}

/// Receiving half of a channel. Cloneable; clones *share* the queue (each
/// message is delivered to exactly one receiver).
pub struct Receiver<T> {
    inner: Arc<Mutex<mpsc::Receiver<T>>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

/// The channel is disconnected (every receiver dropped); `send` returns the
/// unsent message.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Outcome of [`Sender::send_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The channel stayed full for the whole timeout.
    Timeout(T),
    /// The channel is disconnected.
    Disconnected(T),
}

/// The channel is empty and every sender dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and disconnected.
    Disconnected,
}

/// Outcome of [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// The channel is empty and disconnected.
    Disconnected,
}

impl<T> Sender<T> {
    /// Blocks until the message is queued (bounded channels block while
    /// full) or every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.inner.send(msg).map_err(|e| SendError(e.0))
    }

    /// Like [`send`](Self::send) but gives up after `timeout`.
    pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        match self.inner.try_send(msg) {
            Ok(()) => Ok(()),
            Err(mpsc::TrySendError::Disconnected(m)) => Err(SendTimeoutError::Disconnected(m)),
            Err(mpsc::TrySendError::Full(m)) => {
                // Poll with a short backoff until the deadline; mpsc has no
                // native timed send.
                let deadline = std::time::Instant::now() + timeout;
                let mut msg = m;
                loop {
                    std::thread::sleep(Duration::from_micros(100));
                    match self.inner.try_send(msg) {
                        Ok(()) => return Ok(()),
                        Err(mpsc::TrySendError::Disconnected(m)) => {
                            return Err(SendTimeoutError::Disconnected(m))
                        }
                        Err(mpsc::TrySendError::Full(m)) => {
                            if std::time::Instant::now() >= deadline {
                                return Err(SendTimeoutError::Timeout(m));
                            }
                            msg = m;
                        }
                    }
                }
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner
            .lock()
            .expect("channel receiver poisoned")
            .recv()
            .map_err(|_| RecvError)
    }

    /// Like [`recv`](Self::recv) but gives up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner
            .lock()
            .expect("channel receiver poisoned")
            .recv_timeout(timeout)
            .map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner
            .lock()
            .expect("channel receiver poisoned")
            .try_recv()
            .map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
    }
}

/// A channel that holds at most `cap` queued messages; senders block (or
/// time out) while it is full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap.max(1));
    (
        Sender { inner: tx },
        Receiver {
            inner: Arc::new(Mutex::new(rx)),
        },
    )
}

/// A channel with no capacity bound. (Backed by a large sync_channel: the
/// transport never queues unboundedly, and a hard cap beats silent OOM.)
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    bounded(1 << 20)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn bounded_blocks_then_timeout_when_full() {
        let (tx, _rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        match tx.send_timeout(2, Duration::from_millis(5)) {
            Err(SendTimeoutError::Timeout(2)) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn recv_timeout_on_empty() {
        let (_tx, rx) = bounded::<u32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnect_is_visible_on_both_ends() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
        let (tx2, rx2) = bounded::<u32>(1);
        drop(tx2);
        assert_eq!(rx2.recv(), Err(RecvError));
        assert_eq!(rx2.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cloned_receivers_share_one_queue() {
        let (tx, rx) = bounded(8);
        let rx2 = rx.clone();
        tx.send(1u32).unwrap();
        tx.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = vec![a, b];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "each message delivered exactly once");
    }

    #[test]
    fn senders_unblock_across_threads() {
        let (tx, rx) = bounded(1);
        tx.send(0u64).unwrap();
        let t = std::thread::spawn(move || tx.send(1).unwrap());
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
    }
}
