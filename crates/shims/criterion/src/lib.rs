//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Implements the subset used by `crates/bench/benches/*`: `Criterion`,
//! benchmark groups, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple warmup + median-of-samples
//! wall-clock timer printed to stdout — enough to compare alternatives locally,
//! with none of criterion's statistics machinery.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(name, sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibrate: grow the per-sample iteration count until one sample takes
    // at least ~1ms, so short routines are not measured at timer resolution.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut per_iter_ns: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let best = per_iter_ns[0];
    println!(
        "bench {label:<48} median {:>12} best {:>12}",
        fmt_ns(median),
        fmt_ns(best)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_groups_run() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran > 0, "benchmark closure never invoked");
    }
}
