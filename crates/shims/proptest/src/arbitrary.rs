//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`: edge cases mixed with uniform bits.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // ~1 in 8 draws is a named edge case; the rest are raw bit patterns,
        // which cover subnormals, NaN payloads, and both infinities.
        const EDGES: [f64; 10] = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::EPSILON,
        ];
        if rng.next_u64() % 8 == 0 {
            EDGES[rng.random_usize(0..EDGES.len())]
        } else {
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // ~1 in 4 draws is small (near zero), the rest full-width.
                if rng.next_u64() % 4 == 0 {
                    (rng.next_u64() % 17) as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_f64_eventually_finite_and_not() {
        let mut rng = TestRng::from_seed(3);
        let s = any::<f64>();
        let vals: Vec<f64> = (0..2000).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_finite()));
        assert!(vals.iter().any(|v| !v.is_finite()));
    }

    #[test]
    fn any_i64_covers_small_and_large() {
        let mut rng = TestRng::from_seed(4);
        let s = any::<i64>();
        let vals: Vec<i64> = (0..2000).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.unsigned_abs() < 20));
        assert!(vals.iter().any(|v| v.unsigned_abs() > 1 << 40));
    }
}
