//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe: `generate` takes `&self`, so strategies can be boxed into
/// [`BoxedStrategy`] (which `prop_oneof!` relies on). Unlike real proptest
/// there is no value tree / shrinking — `generate` returns the value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, regenerating until one passes.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred: Box::new(pred),
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
pub struct Filter<S: Strategy> {
    inner: S,
    reason: String,
    pred: Box<dyn Fn(&S::Value) -> bool>,
}

impl<S: Strategy> Strategy for Filter<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..65_536 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 65536 consecutive values",
            self.reason
        );
    }
}

/// Uniform choice among same-typed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! requires at least one strategy"
        );
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_usize(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_i128(self.start as i128, self.end as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_i128(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_maps_filters_and_unions_compose() {
        let mut rng = TestRng::from_seed(9);
        let s = (0i64..10)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |v| *v != 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
        let (a, b) = (0u8..4, Just(7i64)).generate(&mut rng);
        assert!(a < 4 && b == 7);
    }
}
