//! String strategies from regex-like patterns.
//!
//! `&'static str` literals act as strategies (as in real proptest). The
//! supported pattern grammar is the subset this workspace's tests use: a
//! sequence of atoms, where an atom is a character class `[a-z0-9_]`
//! (ranges and literal characters) or a single literal character, each with
//! an optional `{m}` / `{m,n}` quantifier.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.min == atom.max {
                atom.min
            } else {
                rng.random_usize(atom.min..atom.max + 1)
            };
            for _ in 0..n {
                let idx = if atom.chars.len() == 1 {
                    0
                } else {
                    rng.random_usize(0..atom.chars.len())
                };
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet = match c {
            '[' => {
                let mut set = Vec::new();
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
                    if c == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        let mut lookahead = chars.clone();
                        lookahead.next();
                        match lookahead.peek() {
                            Some(&hi) if hi != ']' => {
                                chars.next();
                                chars.next();
                                set.extend(c..=hi);
                                continue;
                            }
                            _ => {}
                        }
                    }
                    set.push(c);
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                set
            }
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                vec![escaped]
            }
            other => vec![other],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let parse = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad quantifier {{{spec}}} in pattern {pattern:?}"))
            };
            match spec.split_once(',') {
                Some((lo, hi)) => (parse(lo), parse(hi)),
                None => (parse(&spec), parse(&spec)),
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
        atoms.push(Atom {
            chars: alphabet,
            min,
            max,
        });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_within_pattern() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut rng);
            assert!((1..=9).contains(&s.len()), "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn literal_and_special_class_chars() {
        let mut rng = TestRng::from_seed(12);
        let s = "[a-zA-Z0-9_<>=]{10,10}".generate(&mut rng);
        assert_eq!(s.len(), 10);
        let t = "ab".generate(&mut rng);
        assert_eq!(t, "ab");
    }
}
