//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::Range;

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = sample_size(rng, &self.size);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeMap` with `size.start ..= size.end - 1` entries, keys from `key`
/// and values from `value`. Key collisions are retried, so sparse key spaces
/// may produce fewer entries than requested (never fewer than one if
/// `size.start > 0` and the key space has that many distinct values).
pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = sample_size(rng, &self.size);
        let mut map = BTreeMap::new();
        let mut attempts = 0usize;
        while map.len() < target && attempts < 64 * target + 64 {
            map.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        map
    }
}

fn sample_size(rng: &mut TestRng, size: &Range<usize>) -> usize {
    assert!(size.start < size.end, "empty size range {size:?}");
    if size.end - size.start == 1 {
        size.start
    } else {
        rng.random_usize(size.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::from_seed(21);
        for _ in 0..100 {
            let v = vec(0i64..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    #[test]
    fn btree_map_hits_target_in_large_keyspace() {
        let mut rng = TestRng::from_seed(22);
        let m = btree_map("[a-z]{1,12}", Just(1u8), 5..6).generate(&mut rng);
        assert_eq!(m.len(), 5);
    }
}
