//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_filter`, `any::<T>()`, `Just`, ranges and
//! string-regex strategies, `collection::{vec, btree_map}`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! the assertion message and case number), and the regex strategy supports
//! only character classes and literals with `{m,n}` quantifiers — exactly the
//! patterns used in this repo's tests. Runs are deterministic: the RNG seed is
//! derived from the test's module path and name.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs a block of property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    ::std::panic!(
                        "property `{}` failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+), __l, __r
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                ),
            ));
        }
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}
