//! Test configuration, deterministic RNG, and case-failure plumbing.

use rand::{Rng as _, RngExt as _, SeedableRng as _};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Retry budget multiplier for `prop_filter` before giving up.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_local_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// A failed property case; produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG handed to strategies. Seeded from the test's full path
/// so every test gets an independent but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    pub fn for_test(test_path: &str) -> Self {
        // FNV-1a over the test path; stable across runs and platforms.
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        Self(rand::rngs::StdRng::seed_from_u64(hash))
    }

    pub fn from_seed(seed: u64) -> Self {
        Self(rand::rngs::StdRng::seed_from_u64(seed))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    pub fn random_f64(&mut self) -> f64 {
        self.0.random()
    }

    pub fn random_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.0.random_range(range)
    }

    pub fn random_i128(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u128;
        lo + ((self.next_u64() as u128) % span) as i128
    }
}
