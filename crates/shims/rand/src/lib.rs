//! Offline stand-in for the crates.io `rand` crate.
//!
//! Provides the API surface the workspace uses: `Rng` + `RngExt`
//! (`random::<T>()`, `random_range(a..b)`), `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng`. The generator is xoshiro256** seeded via SplitMix64 —
//! deterministic for a given seed, which is what the ML workloads and data
//! generators rely on.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait Rng {
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform sample of `T` over its natural domain (`[0, 1)` for floats).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// A uniform sample from the half-open range `lo..hi`. Panics if empty.
    fn random_range<T: UniformRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical uniform distribution.
pub trait Random: Sized {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for i64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types that can be sampled uniformly from a `Range`.
pub trait UniformRange: Sized {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(
                    range.start < range.end,
                    "random_range called with empty range {}..{}",
                    range.start,
                    range.end
                );
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo reduction: the bias is < span / 2^64, negligible for
                // the test/benchmark ranges used in this workspace.
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as Self
            }
        }
    )*};
}

impl_uniform_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn range_sampling_stays_in_bounds_and_covers() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let v = rng.random_range(-5i64..5);
        assert!((-5..5).contains(&v));
    }
}
