//! # pc-tpch — denormalized TPC-H and the big-object workloads (§8.4)
//!
//! The paper denormalizes TPC-H into nested objects — `Customer` holds
//! `Order`s, which hold `LineItem`s, which embed `Part` and `Supplier` —
//! and runs two computations over them:
//!
//! * **customers-per-supplier** — for every supplier, the map from each of
//!   its customers to the list of part ids bought (a `MultiSelectionComp`
//!   exploding customers into per-supplier records, then a group-by into a
//!   nested `Map<String, Vec<i64>>` built directly on aggregation pages);
//! * **top-k Jaccard** — each customer's deduplicated part set scored
//!   against a query set; a top-k aggregation keeps the best k.
//!
//! [`gen`] produces the same synthetic instance for both the PC object
//! representation and the baseline's codec-backed structs, so Table 3's
//! comparison is apples-to-apples.

pub mod baseline_impl;
pub mod gen;
pub mod pc_impl;

pub use gen::{generate, CustomerData, TpchConfig};
