//! The baseline (Spark-style) TPC-H workloads over codec-backed structs.

use crate::gen::{jaccard, supplier_name, CustomerData};
use pc_baseline::codec::{get_u32, put_u32, Codec};
use pc_baseline::Rdd;
use std::collections::{BTreeMap, HashMap};

/// The baseline's boxed customer row (its "Java object").
#[derive(Debug, Clone, PartialEq)]
pub struct BCustomer {
    pub cust_key: i64,
    pub name: String,
    /// (order_key, Vec<(part_id, supplier_id)>)
    pub orders: Vec<(i64, Vec<(i64, i64)>)>,
}

impl Codec for BCustomer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cust_key.encode(out);
        self.name.encode(out);
        put_u32(out, self.orders.len() as u32);
        for (ok, lines) in &self.orders {
            ok.encode(out);
            put_u32(out, lines.len() as u32);
            for (p, s) in lines {
                p.encode(out);
                s.encode(out);
            }
        }
    }

    fn decode(inp: &mut &[u8]) -> Self {
        let cust_key = i64::decode(inp);
        let name = String::decode(inp);
        let n = get_u32(inp) as usize;
        let orders = (0..n)
            .map(|_| {
                let ok = i64::decode(inp);
                let m = get_u32(inp) as usize;
                (
                    ok,
                    (0..m)
                        .map(|_| (i64::decode(inp), i64::decode(inp)))
                        .collect(),
                )
            })
            .collect();
        BCustomer {
            cust_key,
            name,
            orders,
        }
    }
}

/// Converts the shared instance into baseline rows.
pub fn to_rows(data: &[CustomerData]) -> Vec<BCustomer> {
    data.iter()
        .map(|c| BCustomer {
            cust_key: c.cust_key,
            name: c.name.clone(),
            orders: c
                .orders
                .iter()
                .map(|o| {
                    (
                        o.order_key,
                        o.lines.iter().map(|l| (l.part_id, l.supplier_id)).collect(),
                    )
                })
                .collect(),
        })
        .collect()
}

/// Workload 1 on the baseline: flat-map to (supplier, (customer, parts)),
/// shuffle, group. Returns (supplier, customer count).
pub fn customers_per_supplier(rdd: &Rdd<BCustomer>) -> Vec<(String, usize)> {
    let infos: Rdd<(String, (String, Vec<i64>))> = rdd.flat_map(|c| {
        let mut per: HashMap<i64, Vec<i64>> = HashMap::new();
        for (_ok, lines) in &c.orders {
            for (p, s) in lines {
                let e = per.entry(*s).or_default();
                if !e.contains(p) {
                    e.push(*p);
                }
            }
        }
        per.into_iter()
            .map(|(s, parts)| (supplier_name(s), (c.name.clone(), parts)))
            .collect()
    });
    let grouped: Rdd<(String, Vec<(String, Vec<i64>)>)> = infos
        .map(|(s, cv)| (s, vec![cv]))
        .reduce_by_key(|mut a, mut b| {
            // merge customer entries (dedup parts per customer)
            for (name, parts) in b.drain(..) {
                if let Some((_, existing)) = a.iter_mut().find(|(n, _)| *n == name) {
                    for p in parts {
                        if !existing.contains(&p) {
                            existing.push(p);
                        }
                    }
                } else {
                    a.push((name, parts));
                }
            }
            a
        });
    let mut out: Vec<(String, usize)> = grouped
        .collect()
        .into_iter()
        .map(|(s, v)| (s, v.len()))
        .collect();
    out.sort();
    out
}

/// Full nested result of workload 1 (for validation).
pub fn customers_per_supplier_full(
    rdd: &Rdd<BCustomer>,
) -> BTreeMap<String, BTreeMap<String, Vec<i64>>> {
    let infos: Rdd<(String, (String, Vec<i64>))> = rdd.flat_map(|c| {
        let mut per: HashMap<i64, Vec<i64>> = HashMap::new();
        for (_ok, lines) in &c.orders {
            for (p, s) in lines {
                let e = per.entry(*s).or_default();
                if !e.contains(p) {
                    e.push(*p);
                }
            }
        }
        per.into_iter()
            .map(|(s, parts)| (supplier_name(s), (c.name.clone(), parts)))
            .collect()
    });
    let mut out: BTreeMap<String, BTreeMap<String, Vec<i64>>> = Default::default();
    for (s, (cust, parts)) in infos.collect() {
        let mut parts = parts;
        parts.sort_unstable();
        parts.dedup();
        out.entry(s).or_default().insert(cust, parts);
    }
    out
}

/// Workload 2 on the baseline: score every customer, shuffle the per-
/// partition top-k lists, and merge. Returns `(similarity, cust_key)`.
pub fn top_k_jaccard(rdd: &Rdd<BCustomer>, query: &[i64], k: usize) -> Vec<(f64, i64)> {
    let mut q = query.to_vec();
    q.sort_unstable();
    q.dedup();
    let q2 = q.clone();
    let scored: Rdd<(i64, Vec<(f64, i64)>)> = rdd.map_partitions(move |part| {
        let mut best: Vec<(f64, i64)> = Vec::new();
        for c in part {
            let mut parts: Vec<i64> = c
                .orders
                .iter()
                .flat_map(|(_, lines)| lines.iter().map(|(p, _)| *p))
                .collect();
            parts.sort_unstable();
            parts.dedup();
            best.push((jaccard(&parts, &q2), c.cust_key));
        }
        best.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        best.truncate(k);
        vec![(0i64, best)]
    });
    let merged = scored.reduce_by_key(move |mut a, b| {
        a.extend(b);
        a.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap().then(x.1.cmp(&y.1)));
        a.truncate(k);
        a
    });
    merged
        .collect()
        .into_iter()
        .next()
        .map(|(_, v)| v)
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, reference_customers_per_supplier, reference_top_k, TpchConfig};
    use pc_baseline::{SparkConfig, SparkLike, StorageLevel};

    #[test]
    fn baseline_matches_reference() {
        let data = generate(&TpchConfig {
            customers: 60,
            ..Default::default()
        });
        let eng = SparkLike::new(SparkConfig {
            partitions: 3,
            storage: StorageLevel::Serialized,
            ..Default::default()
        });
        let rdd = eng.parallelize(to_rows(&data));
        let got = customers_per_supplier_full(&rdd);
        let want = reference_customers_per_supplier(&data);
        assert_eq!(got, want);

        let query = crate::gen::unique_parts(&data[3]);
        let got = top_k_jaccard(&rdd, &query, 7);
        let want = reference_top_k(&data, &query, 7);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g.0 - w.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bcustomer_codec_roundtrip() {
        let data = generate(&TpchConfig {
            customers: 5,
            ..Default::default()
        });
        for row in to_rows(&data) {
            let bytes = row.to_bytes();
            let mut slice = bytes.as_slice();
            assert_eq!(BCustomer::decode(&mut slice), row);
        }
    }
}
