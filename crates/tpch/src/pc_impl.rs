//! The PC-side TPC-H representation and both workloads.

use crate::gen::{supplier_name, CustomerData};
use pc_core::prelude::*;
use pc_object::PcValue;

pc_object! {
    /// A line item with its embedded part and supplier ids (the paper nests
    /// full Part/Supplier objects; ids plus the name convention carry the
    /// same information through the workloads).
    pub struct LineItem / LineItemView {
        (part_id, set_part_id): i64,
        (supplier_id, set_supplier_id): i64,
        (line_number, set_line_number): i64,
    }
}

pc_object! {
    pub struct Order / OrderView {
        (order_key, set_order_key): i64,
        (lineitems, set_lineitems): Handle<PcVec<Handle<LineItem>>>,
    }
}

pc_object! {
    pub struct Customer / CustomerView {
        (cust_key, set_cust_key): i64,
        (name, set_name): Handle<PcString>,
        (orders, set_orders): Handle<PcVec<Handle<Order>>>,
    }
}

pc_object! {
    /// One (supplier, customer, parts) record emitted by the
    /// multi-selection (the paper's `SupplierInfo`).
    pub struct SupplierInfo / SupplierInfoView {
        (supplier, set_supplier): Handle<PcString>,
        (customer, set_customer): Handle<PcString>,
        (parts, set_parts): Handle<PcVec<i64>>,
    }
}

pc_object! {
    /// Aggregated: a supplier plus the map customer → part ids
    /// (`Map<String, Handle<Vector<int>>>` in the paper).
    pub struct SupplierCustomers / SupplierCustomersView {
        (supplier, set_supplier): Handle<PcString>,
        (customers, set_customers): Handle<PcMap<Handle<PcString>, Handle<PcVec<i64>>>>,
    }
}

pc_object! {
    /// Top-k result entry.
    pub struct TopMatch / TopMatchView {
        (similarity, set_similarity): f64,
        (cust_key, set_cust_key): i64,
        (parts, set_parts): Handle<PcVec<i64>>,
    }
}

/// Loads the denormalized instance into a PC set.
pub fn load(client: &PcClient, db: &str, set: &str, data: &[CustomerData]) -> PcResult<()> {
    client.create_or_clear_set(db, set)?;
    client.store(db, set, data.len(), |i| {
        let c = &data[i];
        let cust = make_object::<Customer>()?;
        cust.v().set_cust_key(c.cust_key)?;
        cust.v().set_name(PcString::make(&c.name)?)?;
        let orders = make_object::<PcVec<Handle<Order>>>()?;
        for o in &c.orders {
            let order = make_object::<Order>()?;
            order.v().set_order_key(o.order_key)?;
            let lines = make_object::<PcVec<Handle<LineItem>>>()?;
            for l in &o.lines {
                let li = make_object::<LineItem>()?;
                li.v().set_part_id(l.part_id)?;
                li.v().set_supplier_id(l.supplier_id)?;
                li.v().set_line_number(l.line_number)?;
                lines.push(li)?;
            }
            order.v().set_lineitems(lines)?;
            orders.push(order)?;
        }
        cust.v().set_orders(orders)?;
        Ok(cust.erase())
    })
}

/// Group-by supplier: folds `SupplierInfo` records into nested
/// `Map<customer, Vec<partID>>` objects living on aggregation pages
/// (the paper's `CustomerSupplierPartGroupBy`).
struct GroupBySupplier;

impl AggregateSpec for GroupBySupplier {
    type In = SupplierInfo;
    type Key = String;
    type Val = Handle<PcMap<Handle<PcString>, Handle<PcVec<i64>>>>;
    type Out = SupplierCustomers;

    fn key_of(&self, rec: &Handle<SupplierInfo>) -> PcResult<String> {
        Ok(rec.v().supplier().as_str().to_string())
    }

    fn init(
        &self,
        b: &BlockRef,
        rec: &Handle<SupplierInfo>,
    ) -> PcResult<Handle<PcMap<Handle<PcString>, Handle<PcVec<i64>>>>> {
        let m = b.make_object::<PcMap<Handle<PcString>, Handle<PcVec<i64>>>>()?;
        // Cross-block stores deep-copy the customer name and part list onto
        // the aggregation page (§6.4) — no serialization anywhere.
        m.insert(rec.v().customer(), rec.v().parts())?;
        Ok(m)
    }

    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<SupplierInfo>) -> PcResult<()> {
        let m = <Self::Val as PcValue>::load(b, slot);
        let cust = rec.v().customer();
        match m.get(&cust) {
            None => m.insert(cust, rec.v().parts()),
            Some(list) => {
                for p in rec.v().parts().iter() {
                    push_unique(&list, p)?;
                }
                Ok(())
            }
        }
    }

    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()> {
        let dm = <Self::Val as PcValue>::load(dst, dst_slot);
        let sm = <Self::Val as PcValue>::load(src, src_slot);
        let mut pairs: Vec<(Handle<PcString>, Handle<PcVec<i64>>)> = Vec::new();
        sm.for_each(|k, v| pairs.push((k, v)));
        for (k, v) in pairs {
            match dm.get(&k) {
                None => dm.insert(k, v)?,
                Some(list) => {
                    for p in v.iter() {
                        push_unique(&list, p)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn finalize(
        &self,
        key: &String,
        b: &BlockRef,
        slot: u32,
    ) -> PcResult<Handle<SupplierCustomers>> {
        let m = <Self::Val as PcValue>::load(b, slot);
        let out = make_object::<SupplierCustomers>()?;
        out.v().set_supplier(PcString::make(key)?)?;
        out.v().set_customers(m)?; // deep copy onto the output page
        Ok(out)
    }
}

fn push_unique(list: &Handle<PcVec<i64>>, p: i64) -> PcResult<()> {
    if !list.iter().any(|x| x == p) {
        list.push(p)?;
    }
    Ok(())
}

/// Workload 1: customers-per-supplier. Returns (supplier, customer count)
/// pairs (the paper finishes with a count over each map).
pub fn customers_per_supplier(
    client: &PcClient,
    db: &str,
    set: &str,
) -> PcResult<Vec<(String, usize)>> {
    // MultiSelection: one SupplierInfo per (customer, supplier) pair.
    client
        .set::<Customer>(db, set)
        .flat_map("CustomerMultiSelection", |c| {
            // Gather per-supplier unique parts for this customer.
            let mut per: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
            let orders = c.v().orders();
            for o in orders.iter() {
                let lines = o.v().lineitems();
                for l in lines.iter() {
                    let e = per.entry(l.v().supplier_id()).or_default();
                    let pid = l.v().part_id();
                    if !e.contains(&pid) {
                        e.push(pid);
                    }
                }
            }
            let name = c.v().name();
            let mut out = Vec::with_capacity(per.len());
            for (supp, parts) in per {
                let si = make_object::<SupplierInfo>()?;
                si.v().set_supplier(PcString::make(&supplier_name(supp))?)?;
                si.v().set_customer(PcString::make(name.as_str())?)?;
                let pv = make_object::<PcVec<i64>>()?;
                pv.extend_from_slice(&parts)?;
                si.v().set_parts(pv)?;
                out.push(si);
            }
            Ok(out)
        })
        .aggregate(GroupBySupplier)
        .write_to(db, "cps_out")
        .run(client)?;

    let mut out = Vec::new();
    for sc in client.set::<SupplierCustomers>(db, "cps_out").collect()? {
        let sup = sc.v().supplier();
        let map = sc.v().customers();
        out.push((sup.as_str().to_string(), map.len()));
    }
    out.sort();
    Ok(out)
}

/// Full nested result of workload 1 (for validation).
pub fn customers_per_supplier_full(
    client: &PcClient,
    db: &str,
) -> PcResult<std::collections::BTreeMap<String, std::collections::BTreeMap<String, Vec<i64>>>> {
    let mut out: std::collections::BTreeMap<String, std::collections::BTreeMap<String, Vec<i64>>> =
        Default::default();
    for sc in client.set::<SupplierCustomers>(db, "cps_out").collect()? {
        let sup = sc.v().supplier().as_str().to_string();
        let map = sc.v().customers();
        let entry = out.entry(sup).or_default();
        map.for_each(|k, v| {
            let mut parts: Vec<i64> = v.iter().collect();
            parts.sort_unstable();
            parts.dedup();
            entry.insert(k.as_str().to_string(), parts);
        });
    }
    Ok(out)
}

/// Top-k aggregation state: a packed `[sim, custkey]*` vector kept sorted
/// best-first and truncated at k (the paper's `TopKQueue`).
struct TopKAgg {
    k: usize,
    query: Vec<i64>,
}

impl AggregateSpec for TopKAgg {
    type In = Customer;
    type Key = i64;
    type Val = Handle<PcVec<f64>>;
    type Out = TopMatch;

    fn key_of(&self, _rec: &Handle<Customer>) -> PcResult<i64> {
        Ok(0)
    }

    fn init(&self, b: &BlockRef, rec: &Handle<Customer>) -> PcResult<Handle<PcVec<f64>>> {
        let v = b.make_object::<PcVec<f64>>()?;
        v.reserve(2 * (self.k + 1))?;
        let (sim, key) = self.score(rec);
        v.extend_from_slice(&[sim, key as f64])?;
        Ok(v)
    }

    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<Customer>) -> PcResult<()> {
        let acc = <Self::Val as PcValue>::load(b, slot);
        let (sim, key) = self.score(rec);
        insert_topk(&acc, self.k, sim, key as f64)
    }

    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()> {
        let a = <Self::Val as PcValue>::load(dst, dst_slot);
        let s = <Self::Val as PcValue>::load(src, src_slot);
        let pairs: Vec<f64> = s.iter().collect();
        for ch in pairs.chunks(2) {
            insert_topk(&a, self.k, ch[0], ch[1])?;
        }
        Ok(())
    }

    fn finalize(&self, _key: &i64, b: &BlockRef, slot: u32) -> PcResult<Handle<TopMatch>> {
        // Emit the whole queue as one packed TopMatch carrying the pairs;
        // the client unpacks it (one group → one output object).
        let acc = <Self::Val as PcValue>::load(b, slot);
        let out = make_object::<TopMatch>()?;
        out.v().set_similarity(-1.0)?;
        out.v().set_cust_key(-1)?;
        let pv = make_object::<PcVec<i64>>()?;
        let packed: Vec<f64> = acc.iter().collect();
        for ch in packed.chunks(2) {
            pv.push((ch[0] * 1e12) as i64)?;
            pv.push(ch[1] as i64)?;
        }
        out.v().set_parts(pv)?;
        Ok(out)
    }
}

impl TopKAgg {
    fn score(&self, rec: &Handle<Customer>) -> (f64, i64) {
        let mut parts: Vec<i64> = Vec::new();
        let orders = rec.v().orders();
        for o in orders.iter() {
            let lines = o.v().lineitems();
            for l in lines.iter() {
                parts.push(l.v().part_id());
            }
        }
        parts.sort_unstable();
        parts.dedup();
        (crate::gen::jaccard(&parts, &self.query), rec.v().cust_key())
    }
}

/// Inserts (sim, key) into the packed sorted queue, keeping the best k.
fn insert_topk(acc: &Handle<PcVec<f64>>, k: usize, sim: f64, key: f64) -> PcResult<()> {
    let mut pairs: Vec<(f64, f64)> = {
        let s: Vec<f64> = acc.iter().collect();
        s.chunks(2).map(|c| (c[0], c[1])).collect()
    };
    pairs.push((sim, key));
    pairs.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap()
            .then(a.1.partial_cmp(&b.1).unwrap())
    });
    pairs.truncate(k);
    acc.clear();
    for (s, c) in pairs {
        acc.push(s)?;
        acc.push(c)?;
    }
    Ok(())
}

/// Workload 2: top-k Jaccard. Returns `(similarity, cust_key)` best-first.
pub fn top_k_jaccard(
    client: &PcClient,
    db: &str,
    set: &str,
    query: &[i64],
    k: usize,
) -> PcResult<Vec<(f64, i64)>> {
    let mut q = query.to_vec();
    q.sort_unstable();
    q.dedup();
    let matches = client
        .set::<Customer>(db, set)
        .aggregate(TopKAgg { k, query: q })
        .collect()?;

    let mut out = Vec::new();
    for m in matches {
        let packed = m.v().parts();
        let vals: Vec<i64> = packed.iter().collect();
        for ch in vals.chunks(2) {
            out.push((ch[0] as f64 / 1e12, ch[1]));
        }
    }
    out.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    out.truncate(k);
    Ok(out)
}
