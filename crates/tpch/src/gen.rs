//! The denormalized TPC-H generator: one neutral in-memory instance feeds
//! both the PC and baseline representations.

use rand::{RngExt, SeedableRng};

/// Scale parameters (the paper's 2.4M–24M customers, scaled down).
#[derive(Debug, Clone)]
pub struct TpchConfig {
    pub customers: usize,
    pub orders_per_customer: usize,
    pub lines_per_order: usize,
    pub parts: usize,
    pub suppliers: usize,
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            customers: 1000,
            orders_per_customer: 3,
            lines_per_order: 4,
            parts: 500,
            suppliers: 50,
            seed: 42,
        }
    }
}

/// One line item: references into the part/supplier dimension tables.
#[derive(Debug, Clone, PartialEq)]
pub struct LineData {
    pub part_id: i64,
    pub supplier_id: i64,
    pub line_number: i64,
}

/// One order.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderData {
    pub order_key: i64,
    pub lines: Vec<LineData>,
}

/// One denormalized customer.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomerData {
    pub cust_key: i64,
    pub name: String,
    pub orders: Vec<OrderData>,
}

/// Deterministically generates a denormalized instance.
pub fn generate(cfg: &TpchConfig) -> Vec<CustomerData> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut order_key = 0i64;
    (0..cfg.customers)
        .map(|c| CustomerData {
            cust_key: c as i64,
            name: format!("Customer#{c:06}"),
            orders: (0..cfg.orders_per_customer)
                .map(|_| {
                    order_key += 1;
                    OrderData {
                        order_key,
                        lines: (0..cfg.lines_per_order)
                            .map(|ln| LineData {
                                part_id: rng.random_range(0..cfg.parts as i64),
                                supplier_id: rng.random_range(0..cfg.suppliers as i64),
                                line_number: ln as i64,
                            })
                            .collect(),
                    }
                })
                .collect(),
        })
        .collect()
}

/// Supplier display name (matches the PC and baseline sides).
pub fn supplier_name(id: i64) -> String {
    format!("Supplier#{id:04}")
}

/// Reference implementation of customers-per-supplier: supplier name →
/// (customer name → sorted unique part ids). Used to validate both engines.
pub fn reference_customers_per_supplier(
    data: &[CustomerData],
) -> std::collections::BTreeMap<String, std::collections::BTreeMap<String, Vec<i64>>> {
    let mut out: std::collections::BTreeMap<String, std::collections::BTreeMap<String, Vec<i64>>> =
        Default::default();
    for c in data {
        for o in &c.orders {
            for l in &o.lines {
                out.entry(supplier_name(l.supplier_id))
                    .or_default()
                    .entry(c.name.clone())
                    .or_default()
                    .push(l.part_id);
            }
        }
    }
    for m in out.values_mut() {
        for v in m.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
    }
    out
}

/// Jaccard similarity between two sorted, deduplicated id lists.
pub fn jaccard(a: &[i64], b: &[i64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / (a.len() + b.len() - inter) as f64
}

/// A customer's sorted unique part ids.
pub fn unique_parts(c: &CustomerData) -> Vec<i64> {
    let mut v: Vec<i64> = c
        .orders
        .iter()
        .flat_map(|o| o.lines.iter().map(|l| l.part_id))
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Reference top-k: `(similarity, cust_key)` best-first.
pub fn reference_top_k(data: &[CustomerData], query: &[i64], k: usize) -> Vec<(f64, i64)> {
    let mut q = query.to_vec();
    q.sort_unstable();
    q.dedup();
    let mut scored: Vec<(f64, i64)> = data
        .iter()
        .map(|c| (jaccard(&unique_parts(c), &q), c.cust_key))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TpchConfig {
            customers: 10,
            ..Default::default()
        };
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reference_results_are_consistent() {
        let data = generate(&TpchConfig {
            customers: 20,
            ..Default::default()
        });
        let cps = reference_customers_per_supplier(&data);
        assert!(!cps.is_empty());
        let top = reference_top_k(&data, &unique_parts(&data[0]), 5);
        assert_eq!(top.len(), 5);
        assert_eq!(top[0].1, 0, "the query customer matches itself best");
        assert!((top[0].0 - 1.0).abs() < 1e-12);
    }
}
