//! PC-vs-reference validation of both §8.4 workloads.

use pc_core::prelude::*;
use pc_tpch::gen::{
    generate, reference_customers_per_supplier, reference_top_k, unique_parts, TpchConfig,
};
use pc_tpch::pc_impl;

#[test]
fn pc_customers_per_supplier_matches_reference() {
    let data = generate(&TpchConfig {
        customers: 80,
        ..Default::default()
    });
    let client = PcClient::local_small().unwrap();
    pc_impl::load(&client, "tpch", "customers", &data).unwrap();
    let counts = pc_impl::customers_per_supplier(&client, "tpch", "customers").unwrap();
    let full = pc_impl::customers_per_supplier_full(&client, "tpch").unwrap();
    let want = reference_customers_per_supplier(&data);
    assert_eq!(full, want);
    let want_counts: Vec<(String, usize)> =
        want.iter().map(|(s, m)| (s.clone(), m.len())).collect();
    assert_eq!(counts, want_counts);
}

#[test]
fn pc_top_k_matches_reference() {
    let data = generate(&TpchConfig {
        customers: 120,
        seed: 9,
        ..Default::default()
    });
    let client = PcClient::local_small().unwrap();
    pc_impl::load(&client, "tpch2", "customers", &data).unwrap();
    let query = unique_parts(&data[17]);
    let got = pc_impl::top_k_jaccard(&client, "tpch2", "customers", &query, 10).unwrap();
    let want = reference_top_k(&data, &query, 10);
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert!(
            (g.0 - w.0).abs() < 1e-9,
            "similarity mismatch {g:?} vs {w:?}"
        );
        assert_eq!(g.1, w.1, "customer order mismatch");
    }
}
