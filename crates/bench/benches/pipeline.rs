//! Criterion benches for the vectorized pipeline hot path: the
//! selection-vector FILTER vs the pre-PR eager-materialization path,
//! FLATMAP fan-out replication, the closure-free join probe, and the
//! vectorized aggregation sink vs the row-at-a-time reference.
//!
//! Acceptance gates:
//! * `filter_scan/selvec` must beat `filter_scan/eager` by ≥ 1.5×;
//! * `agg_absorb/vectorized` must beat `agg_absorb/rowwise` by ≥ 1.5×
//!   (both enforced by `repro pipeline`, which CI runs as a smoke step).

use criterion::{criterion_group, criterion_main, Criterion};
use pc_bench::pipeline::{
    micro_agg_batch, micro_batch, micro_filter_eager, micro_filter_selvec, SumAgg,
};
use pc_exec::JoinTable;
use pc_lambda::{agg::AggEngine, ErasedAgg};
use pc_lambda::{Column, ColumnPool};
use pc_object::{make_object, AllocScope, AnyHandle, PcVec};
use std::hint::black_box;

fn bench_filter_scan(c: &mut Criterion) {
    let b = micro_batch(1024);
    let mut pool = ColumnPool::default();
    let mut g = c.benchmark_group("filter_scan");
    g.sample_size(20);
    g.bench_function("eager", |bench| {
        bench.iter(|| black_box(micro_filter_eager(&b)))
    });
    g.bench_function("selvec", |bench| {
        bench.iter(|| black_box(micro_filter_selvec(&b, &mut pool)))
    });
    g.finish();
}

fn bench_flatmap_fanout(c: &mut Criterion) {
    // A 1024-row batch where half the rows survived a filter and each
    // survivor fans out 4×: the copied-through column must replicate.
    let rows = 1024usize;
    let col = Column::I64((0..rows as i64).collect());
    let mask: Vec<bool> = (0..rows).map(|i| i % 2 == 0).collect();
    let sel: Vec<u32> = (0..rows as u32).filter(|i| i % 2 == 0).collect();
    let counts: Vec<u32> = vec![4; sel.len()];
    let mut g = c.benchmark_group("flatmap_fanout");
    g.sample_size(20);
    // Pre-PR: FILTER materializes the column, then replicate copies again.
    g.bench_function("eager", |bench| {
        bench.iter(|| black_box(col.filter(&mask).replicate(&counts)))
    });
    // Selection vector: one fused replicate through the selection.
    g.bench_function("selvec", |bench| {
        bench.iter(|| black_box(col.replicate_sel(&counts, Some(&sel))))
    });
    g.finish();
}

fn bench_join_probe(c: &mut Criterion) {
    let _s = AllocScope::new(1 << 22);
    let mut t = JoinTable::new(1, 1 << 18);
    // 256 build keys, 4 groups each → every probe row matches 4×.
    let mut keep = Vec::new();
    for k in 0..256u64 {
        for v in 0..4i64 {
            let o = make_object::<PcVec<i64>>().unwrap();
            o.push(k as i64 * 10 + v).unwrap();
            keep.push(o.clone());
            t.insert_rowwise(k, &[o.erase()]).unwrap();
        }
    }
    t.finish_build();
    let hashes: Vec<u64> = (0..1024u64).map(|i| i % 256).collect();
    let mut g = c.benchmark_group("join_probe");
    g.sample_size(20);
    // Pre-PR: fresh Vecs per batch, a closure call and a group Vec per match.
    g.bench_function("closure", |bench| {
        bench.iter(|| {
            let mut idx: Vec<u32> = Vec::new();
            let mut built: Vec<Vec<AnyHandle>> = vec![Vec::new()];
            for (i, h) in hashes.iter().enumerate() {
                t.probe(*h, |group| {
                    idx.push(i as u32);
                    for (k, gh) in group.iter().enumerate() {
                        built[k].push(gh.clone());
                    }
                    Ok(())
                })
                .unwrap();
            }
            black_box(idx.len())
        })
    });
    // Selection-vector engine: reusable buffers filled directly.
    let mut idx: Vec<u32> = Vec::new();
    let mut built: Vec<Vec<AnyHandle>> = vec![Vec::new()];
    g.bench_function("probe_into", |bench| {
        bench.iter(|| {
            idx.clear();
            built[0].clear();
            for (i, h) in hashes.iter().enumerate() {
                t.probe_into(*h, i as u32, &mut idx, &mut built);
            }
            black_box(idx.len())
        })
    });
    g.finish();
}

fn bench_join_build(c: &mut Criterion) {
    // A 1024-row build batch over 512 keys with a 50%-miss probe stream:
    // the radix-partitioned vectorized build (one insert_batch, routed
    // tag-filtered probes) against the retained row-at-a-time loop with
    // full-page-scan probes (the micro_join A/B that `repro pipeline`
    // gates at ≥ 1.5×).
    let b = pc_bench::pipeline::micro_join_batch(1024, 512);
    let mut g = c.benchmark_group("join_build");
    g.sample_size(20);
    g.bench_function("rowwise", |bench| {
        bench.iter(|| black_box(pc_bench::pipeline::micro_join_rowwise(&b)))
    });
    g.bench_function("vectorized", |bench| {
        bench.iter(|| black_box(pc_bench::pipeline::micro_join_vectorized(&b)))
    });
    g.finish();
}

fn bench_agg_absorb(c: &mut Criterion) {
    // A 1024-row low-cardinality batch (16 groups, 4 partitions): the
    // vectorized batch-hash → radix-partition → grouped-bulk-upsert path
    // against the pre-PR row-at-a-time `key_of → hash → % → upsert` loop.
    let b = micro_agg_batch(1024, 16);
    let engine = AggEngine::new(SumAgg);
    let mut rowwise = engine.new_sink(4, 1 << 20, None);
    let mut vectorized = engine.new_sink(4, 1 << 20, None);
    let mut g = c.benchmark_group("agg_absorb");
    g.sample_size(20);
    g.bench_function("rowwise", |bench| {
        bench.iter(|| {
            rowwise.absorb_rowwise(&b.objs, None).unwrap();
            black_box(())
        })
    });
    g.bench_function("vectorized", |bench| {
        bench.iter(|| {
            vectorized.absorb(&b.objs, None).unwrap();
            black_box(())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_filter_scan,
    bench_flatmap_fanout,
    bench_join_probe,
    bench_join_build,
    bench_agg_absorb
);
criterion_main!(benches);
