//! Criterion benches for the dense kernels (Table 8's axis).

use criterion::{criterion_group, criterion_main, Criterion};
use lillinalg::kernels::{matmul_blocked, matmul_naive};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    for n in [128usize, 256] {
        let a: Vec<f64> = (0..n * n).map(|i| (i % 97) as f64 / 97.0).collect();
        let b: Vec<f64> = (0..n * n).map(|i| (i % 89) as f64 / 89.0).collect();
        let mut out = vec![0.0; n * n];
        let mut g = c.benchmark_group(format!("matmul_{n}"));
        g.sample_size(10);
        g.bench_function("naive_gsl_like", |bench| {
            bench.iter(|| {
                out.fill(0.0);
                matmul_naive(&a, &b, &mut out, n, n, n);
                black_box(out[0])
            })
        });
        g.bench_function("blocked_eigen_like", |bench| {
            bench.iter(|| {
                out.fill(0.0);
                matmul_blocked(&a, &b, &mut out, n, n, n);
                black_box(out[0])
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
