//! Criterion micro-benches for the PC object model: the costs the paper's
//! design eliminates (serialization) or controls (allocation policy).

use criterion::{criterion_group, criterion_main, Criterion};
use pc_baseline::codec::{decode_partition, encode_partition};
use pc_lambda::SetWriter;
use pc_object::{make_object, AllocPolicy, AllocScope, AnyObj, Handle, PcVec, SealedPage};
use std::hint::black_box;

fn build_page(n: usize) -> SealedPage {
    let mut w = SetWriter::new(1 << 22);
    for i in 0..n {
        w.write_with(|| {
            let v = make_object::<PcVec<f64>>()?;
            v.extend_from_slice(&[i as f64; 16])?;
            Ok(v.erase())
        })
        .unwrap();
    }
    w.finish().unwrap().into_iter().next().unwrap()
}

/// Moving data PC-style (page memcpy) vs baseline-style (codec round trip).
fn bench_data_movement(c: &mut Criterion) {
    let page = build_page(2000);
    let rows: Vec<Vec<f64>> = (0..2000).map(|i| vec![i as f64; 16]).collect();
    let mut g = c.benchmark_group("movement_2000x16f64");
    g.bench_function("pc_page_ship_bytes", |b| {
        b.iter(|| {
            let bytes = page.to_bytes();
            let back = SealedPage::from_bytes(&bytes).unwrap();
            black_box(back.used())
        })
    });
    g.bench_function("baseline_codec_roundtrip", |b| {
        b.iter(|| {
            let bytes = encode_partition(&rows);
            let back: Vec<Vec<f64>> = decode_partition(&bytes);
            black_box(back.len())
        })
    });
    g.finish();
}

/// Reading every object: zero-copy page views vs decoding.
fn bench_scan(c: &mut Criterion) {
    let page = build_page(2000);
    let rows: Vec<Vec<f64>> = (0..2000).map(|i| vec![i as f64; 16]).collect();
    let blob = encode_partition(&rows);
    let mut g = c.benchmark_group("scan_2000x16f64");
    g.bench_function("pc_zero_copy_view", |b| {
        b.iter(|| {
            let (_blk, root) = page.open_view().unwrap();
            let v = root.downcast::<PcVec<Handle<AnyObj>>>().unwrap();
            let mut acc = 0.0;
            for h in v.iter() {
                let vec: Handle<PcVec<f64>> = h.assume();
                acc += vec.as_slice()[0];
            }
            black_box(acc)
        })
    });
    g.bench_function("baseline_decode_then_scan", |b| {
        b.iter(|| {
            let decoded: Vec<Vec<f64>> = decode_partition(&blob);
            let acc: f64 = decoded.iter().map(|r| r[0]).sum();
            black_box(acc)
        })
    });
    g.finish();
}

/// Appendix B's allocation policies.
fn bench_alloc_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc_policy_churn");
    for (name, policy) in [
        ("lightweight_reuse", AllocPolicy::LightweightReuse),
        ("no_reuse", AllocPolicy::NoReuse),
        ("recycling", AllocPolicy::Recycling),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let scope = AllocScope::with_policy(1 << 22, policy);
                for i in 0..200 {
                    let v = make_object::<PcVec<f64>>().unwrap();
                    v.extend_from_slice(&[i as f64; 8]).unwrap();
                    // v drops each round: churn exercises the policy
                }
                black_box(scope.block().used())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_data_movement, bench_scan, bench_alloc_policies
}
criterion_main!(benches);
