//! `repro pipeline` — the measured perf trajectory of the vectorized
//! execution hot path (§5.2, Appendix C).
//!
//! Runs seven macro workloads through the full engine (scan, filter-heavy
//! selection, FLATMAP fan-out, join probe, join build, low- and
//! high-cardinality group-by) at every thread count in the morsel scaling
//! sweep ({1, 2, 4} ∪ {N}), plus four micro A/Bs — the selection-vector
//! filter against the pre-selection-vector eager-materialization path, the
//! vectorized aggregation sink (batch hash → radix partition → grouped bulk
//! upsert) against the row-at-a-time path, the partitioned vectorized
//! join (batched build, partition-routed tag-filtered probes) against the
//! retained rowwise build + full-page-scan probe, and the FLATMAP kernel
//! with its learned fan-out capacity hint against a cold (hint-less)
//! allocation — then writes `BENCH_pipeline.json`,
//! the baseline every future perf PR is measured against. Refresh it from
//! the repo root with:
//!
//! ```text
//! cargo run --release -p pc-bench --bin repro -- pipeline [--threads N]
//! ```

use crate::util::{fmt_dur, row, time_once};
use pc_core::prelude::*;
use pc_exec::VectorList;
use pc_lambda::{Column, ColumnPool};
use std::time::Duration;

pc_object! {
    /// The benchmark record: a key for joins/filters and a payload.
    pub struct BenchRec / BenchRecView {
        (key, set_key): i64,
        (val, set_val): i64,
    }
}

fn client(threads: usize) -> PcClient {
    PcClient::connect(ClusterConfig {
        workers: 1,
        exec: ExecConfig {
            batch_size: 1024,
            page_size: 1 << 20,
            agg_partitions: 4,
            join_partitions: 8,
            threads,
            ..ExecConfig::default()
        },
        broadcast_threshold: 64 << 20,
        ..ClusterConfig::default()
    })
    .expect("cluster boot")
}

fn load(c: &PcClient, set: &str, n: usize, key_mod: i64) {
    c.create_or_clear_set("bench", set).unwrap();
    c.store("bench", set, n, |i| {
        let r = make_object::<BenchRec>()?;
        r.v().set_key((i as i64 * 997) % key_mod)?;
        r.v().set_val(i as i64)?;
        Ok(r.erase())
    })
    .unwrap();
}

fn key_of(r: Var<BenchRec>) -> Lambda<i64> {
    r.member("key", |r| r.v().key())
}

/// One measured workload: `(rows_in, rows_out, wall time)` plus the
/// two-phase aggregation and join counters (zero where not applicable).
struct Run {
    rows_in: u64,
    rows_out: u64,
    rows_aggregated: u64,
    map_pages_sealed: u64,
    rows_probed: u64,
    join_matches: u64,
    build_pages_sealed: u64,
    morsels_dispatched: u64,
    morsels_stolen: u64,
    threads_used: usize,
    pool_hits: u64,
    pool_misses: u64,
    pool_evictions: u64,
    pool_spills: u64,
    dur: Duration,
}

impl Run {
    fn mrows_per_s(&self) -> f64 {
        self.rows_in as f64 / self.dur.as_secs_f64() / 1e6
    }
}

/// Times one sink's execution. The destination set is pre-created here so
/// the timed region's own create-or-clear is a no-op on an empty set — the
/// measured span stays compile → optimize → plan → run, as it always was.
fn execute(c: &PcClient, sink: Sink, out_set: &str) -> Run {
    c.create_or_clear_set("bench", out_set).unwrap();
    let (stats, dur) = time_once(|| sink.run(c).unwrap());
    Run {
        rows_in: stats.exec.rows_in,
        rows_out: stats.exec.rows_out,
        rows_aggregated: stats.exec.rows_aggregated,
        map_pages_sealed: stats.exec.map_pages_sealed,
        rows_probed: stats.exec.rows_probed,
        join_matches: stats.exec.join_matches,
        build_pages_sealed: stats.exec.build_pages_sealed,
        morsels_dispatched: stats.exec.morsels_dispatched,
        morsels_stolen: stats.exec.morsels_stolen,
        threads_used: stats.exec.threads_used,
        pool_hits: stats.exec.pool_hits,
        pool_misses: stats.exec.pool_misses,
        pool_evictions: stats.exec.pool_evictions,
        pool_spills: stats.exec.pool_spills,
        dur,
    }
}

/// Full-table scan: an always-true selection copied straight to the sink.
fn scan(c: &PcClient, n: usize) -> Run {
    load(c, "scan_in", n, 100_000);
    let sink = c
        .set::<BenchRec>("bench", "scan_in")
        .filter(|r| key_of(r).ge_const(0i64))
        .write_to("bench", "scan_out");
    execute(c, sink, "scan_out")
}

/// Filter-heavy selection: ~2% of rows survive, so the batch path is
/// dominated by what FILTER does with the 98% it drops.
fn filter_heavy(c: &PcClient, n: usize) -> Run {
    load(c, "filter_in", n, 100_000);
    let sink = c
        .set::<BenchRec>("bench", "filter_in")
        .filter(|r| key_of(r).gt_const(98_000i64))
        .write_to("bench", "filter_out");
    execute(c, sink, "filter_out")
}

/// FLATMAP fan-out: every input row emits four output objects.
fn flatmap(c: &PcClient, n: usize) -> Run {
    load(c, "fm_in", n / 4, 100_000);
    let sink = c
        .set::<BenchRec>("bench", "fm_in")
        .flat_map("fanout4", |r| {
            let key = r.v().key();
            let mut out = Vec::with_capacity(4);
            for k in 0..4 {
                let v = make_object::<BenchRec>()?;
                v.v().set_key(key)?;
                v.v().set_val(k)?;
                out.push(v);
            }
            Ok(out)
        })
        .write_to("bench", "fm_out");
    execute(c, sink, "fm_out")
}

/// The join projection shared by both join workloads.
fn mk_pair(a: &Handle<BenchRec>, b: &Handle<BenchRec>) -> PcResult<Handle<BenchRec>> {
    let p = make_object::<BenchRec>()?;
    p.v().set_key(a.v().key())?;
    p.v().set_val(a.v().val() + b.v().val())?;
    Ok(p)
}

/// Join probe: a small build side (64 keys), every probe row matches once.
fn join_probe(c: &PcClient, n: usize) -> Run {
    load(c, "probe_in", n, 64);
    load(c, "build_in", 64, 64);
    let build = c.set::<BenchRec>("bench", "build_in");
    let probe = c.set::<BenchRec>("bench", "probe_in");
    let sink = build
        .join(&probe, |a, b| key_of(a).eq(key_of(b)), "mkPair", mk_pair)
        .write_to("bench", "join_out");
    execute(c, sink, "join_out")
}

/// Join build: a large, high-cardinality build side (the sink the
/// partitioned vectorized build serves) probed by a small probe side, so
/// the measured time is build-sink dominated.
fn join_build(c: &PcClient, n: usize) -> Run {
    load(c, "jb_build_in", n, n as i64);
    load(c, "jb_probe_in", n / 8, n as i64);
    let build = c.set::<BenchRec>("bench", "jb_build_in");
    let probe = c.set::<BenchRec>("bench", "jb_probe_in");
    let sink = build
        .join(&probe, |a, b| key_of(a).eq(key_of(b)), "mkPair", mk_pair)
        .write_to("bench", "jb_out");
    execute(c, sink, "jb_out")
}

// ------------------------------------------------------- aggregation runs

/// The benchmark aggregation: group by `key`, folding `(count, sum(val))`.
pub struct SumAgg;

impl AggregateSpec for SumAgg {
    type In = BenchRec;
    type Key = i64;
    type Val = (i64, i64);
    type Out = BenchRec;

    fn key_of(&self, rec: &Handle<BenchRec>) -> PcResult<i64> {
        Ok(rec.v().key())
    }

    fn init(&self, _b: &BlockRef, rec: &Handle<BenchRec>) -> PcResult<(i64, i64)> {
        Ok((1, rec.v().val()))
    }

    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<BenchRec>) -> PcResult<()> {
        let (c, t): (i64, i64) = b.read(slot);
        b.write(slot, (c + 1, t + rec.v().val()));
        Ok(())
    }

    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()> {
        let (c1, t1): (i64, i64) = dst.read(dst_slot);
        let (c2, t2): (i64, i64) = src.read(src_slot);
        dst.write(dst_slot, (c1 + c2, t1 + t2));
        Ok(())
    }

    fn finalize(&self, key: &i64, b: &BlockRef, val_slot: u32) -> PcResult<Handle<BenchRec>> {
        let (_c, t): (i64, i64) = b.read(val_slot);
        let out = make_object::<BenchRec>()?;
        out.v().set_key(*key)?;
        out.v().set_val(t)?;
        Ok(out)
    }
}

/// Full-engine group-by over `key_mod` distinct keys (the TPC-H-style
/// aggregation shape of §8 / Figure 5: pre-aggregate into partition maps,
/// shuffle the sealed pages, merge, materialize).
fn group_by(c: &PcClient, n: usize, key_mod: i64, tag: &str) -> Run {
    let set_in = format!("agg_in_{tag}");
    let set_out = format!("agg_out_{tag}");
    load(c, &set_in, n, key_mod);
    let sink = c
        .set::<BenchRec>("bench", &set_in)
        .aggregate(SumAgg)
        .write_to("bench", &set_out);
    execute(c, sink, &set_out)
}

// --------------------------------------------------------- micro agg A/B

/// The micro batch the aggregation A/B runs over: 1024 `BenchRec` objects
/// with `card` distinct keys — the shape of a pre-aggregation batch.
pub struct MicroAggBatch {
    pub objs: Column,
    pub card: i64,
    _scope: AllocScope,
}

pub fn micro_agg_batch(rows: usize, card: i64) -> MicroAggBatch {
    let scope = AllocScope::new(1 << 22);
    let mut handles = Vec::with_capacity(rows);
    for i in 0..rows {
        let r = make_object::<BenchRec>().unwrap();
        r.v().set_key((i as i64 * 997) % card).unwrap();
        r.v().set_val(i as i64).unwrap();
        handles.push(r.erase());
    }
    MicroAggBatch {
        objs: Column::Obj(handles),
        card,
        _scope: scope,
    }
}

fn micro_sink() -> Box<dyn pc_lambda::ErasedAggSink> {
    use pc_lambda::ErasedAgg;
    pc_lambda::agg::AggEngine::new(SumAgg).new_sink(4, 1 << 20, None)
}

/// `(rowwise ns/batch, vectorized ns/batch, speedup)` on a low-cardinality
/// 1024-row batch: the pre-PR `key_of → hash → % → upsert` loop against the
/// batch-hash → radix-partition → grouped-bulk-upsert path.
pub fn micro_agg_ab() -> (f64, f64, f64) {
    let b = micro_agg_batch(1024, 16);
    let mut rowwise = micro_sink();
    let mut vectorized = micro_sink();
    for _ in 0..100 {
        rowwise.absorb_rowwise(&b.objs, None).unwrap();
        vectorized.absorb(&b.objs, None).unwrap();
    }
    let row_ns = median_ns(7, 500, || {
        rowwise.absorb_rowwise(&b.objs, None).unwrap();
    });
    let vec_ns = median_ns(7, 500, || {
        vectorized.absorb(&b.objs, None).unwrap();
    });
    (row_ns, vec_ns, row_ns / vec_ns)
}

/// Parity guard used by tests: both absorb paths produce the same final
/// `(key, sum)` groups after flushing, merging, and finalizing.
pub fn micro_agg_paths_agree() -> bool {
    use pc_lambda::{ErasedAgg, SetWriter};
    let b = micro_agg_batch(1024, 16);
    let engine = pc_lambda::agg::AggEngine::new(SumAgg);
    let finalize = |mut sink: Box<dyn pc_lambda::ErasedAggSink>| -> Vec<(i64, i64)> {
        let mut merger = engine.new_merger(1 << 20);
        for (_part, page) in sink.flush().unwrap() {
            let page = page.load().unwrap();
            merger.merge_page(page).unwrap();
        }
        let mut w = SetWriter::new(1 << 20);
        merger.finalize(&mut w).unwrap();
        let mut out = Vec::new();
        for page in w.finish().unwrap() {
            let (_b, root) = page.open().unwrap();
            let v = root
                .downcast::<pc_object::PcVec<Handle<pc_object::AnyObj>>>()
                .unwrap();
            for h in v.iter() {
                let r = h.assume::<BenchRec>();
                out.push((r.v().key(), r.v().val()));
            }
        }
        out.sort_unstable();
        out
    };
    let mut rowwise = micro_sink();
    rowwise.absorb_rowwise(&b.objs, None).unwrap();
    let mut vectorized = micro_sink();
    vectorized.absorb(&b.objs, None).unwrap();
    let want: Vec<(i64, i64)> = {
        let mut m = std::collections::BTreeMap::new();
        for i in 0..1024usize {
            *m.entry((i as i64 * 997) % b.card).or_insert(0i64) += i as i64;
        }
        m.into_iter().collect()
    };
    finalize(rowwise) == want && finalize(vectorized) == want
}

// ------------------------------------------------------- micro join A/B

/// The micro batch the join A/B runs over: a 1024-row build side over 512
/// keys (two match groups per key) whose table spans several pages per
/// partition, probed by a stream in which half the keys miss — the
/// selective-join shape the partitioned probe path targets (multi-page
/// builds used to multiply probe cost, and misses used to walk every page
/// before coming back empty).
pub struct MicroJoinBatch {
    pub hashes: Vec<u64>,
    pub objs: Vec<pc_object::AnyHandle>,
    pub probes: Vec<u64>,
    _scope: AllocScope,
}

/// Table page size for the A/B: small enough that 1024 build rows chain
/// multiple pages per partition.
const MICRO_JOIN_PAGE: usize = 1 << 13;

pub fn micro_join_batch(rows: usize, keys: u64) -> MicroJoinBatch {
    let scope = AllocScope::new(1 << 22);
    let mut objs = Vec::with_capacity(rows);
    for i in 0..rows {
        let r = make_object::<BenchRec>().unwrap();
        r.v().set_key((i as i64) % keys as i64).unwrap();
        r.v().set_val(i as i64).unwrap();
        objs.push(r.erase());
    }
    MicroJoinBatch {
        hashes: (0..rows as u64).map(|i| i % keys).collect(),
        // Probe keys 0..2*keys: the first half hit, the second half miss.
        probes: (0..2 * keys).collect(),
        objs,
        _scope: scope,
    }
}

/// The pre-PR build+probe loop: one `insert_rowwise` per row (closure
/// upsert, `map.get` re-probe, per-element pushes, a cloned group Vec), then
/// unrouted probes that scan every table page per key — hit or miss.
pub fn micro_join_rowwise(b: &MicroJoinBatch) -> usize {
    let mut t = pc_exec::JoinTable::with_partitions(1, MICRO_JOIN_PAGE, 8);
    let mut group: Vec<pc_object::AnyHandle> = Vec::with_capacity(1);
    for (h, o) in b.hashes.iter().zip(&b.objs) {
        group.clear();
        group.push(o.clone());
        t.insert_rowwise(*h, &group).unwrap();
    }
    let mut idx: Vec<u32> = Vec::new();
    let mut built: Vec<Vec<pc_object::AnyHandle>> = vec![Vec::new()];
    let mut matches = 0;
    for (i, h) in b.probes.iter().enumerate() {
        matches += t.probe_into_scan(*h, i as u32, &mut idx, &mut built);
    }
    matches
}

/// The partitioned vectorized path: one `insert_batch` for the whole batch
/// (batch hash → radix scatter → grouped bulk upsert), tag filters built at
/// seal, probes routed to their partition's chain with misses rejected by
/// the filter before any map probe.
pub fn micro_join_vectorized(b: &MicroJoinBatch) -> usize {
    let mut t = pc_exec::JoinTable::with_partitions(1, MICRO_JOIN_PAGE, 8);
    t.insert_batch(&b.hashes, None, &[b.objs.as_slice()])
        .unwrap();
    t.finish_build();
    let mut idx: Vec<u32> = Vec::new();
    let mut built: Vec<Vec<pc_object::AnyHandle>> = vec![Vec::new()];
    let mut matches = 0;
    for (i, h) in b.probes.iter().enumerate() {
        matches += t.probe_into(*h, i as u32, &mut idx, &mut built);
    }
    matches
}

/// `(rowwise ns/iter, vectorized ns/iter, speedup)`: each iteration builds
/// a fresh table from the 1024-row batch and runs the 50%-miss probe
/// stream over it.
pub fn micro_join_ab() -> (f64, f64, f64) {
    let b = micro_join_batch(1024, 512);
    for _ in 0..20 {
        micro_join_rowwise(&b);
        micro_join_vectorized(&b);
    }
    let row_ns = median_ns(7, 40, || {
        std::hint::black_box(micro_join_rowwise(&b));
    });
    let vec_ns = median_ns(7, 40, || {
        std::hint::black_box(micro_join_vectorized(&b));
    });
    (row_ns, vec_ns, row_ns / vec_ns)
}

/// Parity guard used by tests: both build paths produce the same match
/// count on identical input (512 hit keys × two groups each; 512 misses).
pub fn micro_join_paths_agree() -> bool {
    let b = micro_join_batch(1024, 512);
    let want = 1024;
    micro_join_rowwise(&b) == want && micro_join_vectorized(&b) == want
}

// ------------------------------------------------------ micro filter A/B

/// The micro batch the filter A/B runs over: one object column plus three
/// scalar columns, 1024 rows, with a ~2%-selective mask — the shape of a
/// filter-heavy selection batch mid-pipeline.
pub struct MicroBatch {
    pub obj: Column,
    pub scalars: [Column; 3],
    pub mask: Vec<bool>,
    // Keeps the objects' allocation block alive for the batch's lifetime.
    _scope: AllocScope,
}

pub fn micro_batch(rows: usize) -> MicroBatch {
    let scope = AllocScope::new(1 << 22);
    let mut handles = Vec::with_capacity(rows);
    for i in 0..rows {
        let r = make_object::<BenchRec>().unwrap();
        r.v().set_key(i as i64).unwrap();
        r.v().set_val((i as i64 * 997) % 100_000).unwrap();
        handles.push(r.erase());
    }
    MicroBatch {
        obj: Column::Obj(handles),
        scalars: [
            Column::I64((0..rows as i64).collect()),
            Column::U64((0..rows as u64).map(pc_object::hash::mix64).collect()),
            Column::Bool((0..rows).map(|i| i % 2 == 0).collect()),
        ],
        mask: (0..rows)
            .map(|i| (i as i64 * 997) % 100_000 > 98_000)
            .collect(),
        _scope: scope,
    }
}

/// The pre-PR FILTER: eagerly re-materialize **every** column of the
/// vector list through the mask (what `VectorList::filter` used to do).
pub fn micro_filter_eager(b: &MicroBatch) -> usize {
    let mut survived = b.obj.filter(&b.mask).len();
    for c in &b.scalars {
        survived = survived.min(c.filter(&b.mask).len());
    }
    survived
}

/// The selection-vector FILTER: mark surviving rows, then compact only the
/// one column the next stage actually consumes (the engine's rebase),
/// drawing all buffers from the recycled pool.
pub fn micro_filter_selvec(b: &MicroBatch, pool: &mut ColumnPool) -> usize {
    let mut sel = pool.take_sel();
    sel.extend(
        b.mask
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| i as u32),
    );
    let compacted = b.obj.gather_pooled(&sel, pool);
    let survived = compacted.len();
    pool.recycle(compacted);
    pool.recycle_sel(sel);
    survived
}

/// Median time of `samples` runs of `iters` iterations of `f`, per iter.
fn median_ns(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let (_, d) = time_once(|| {
                for _ in 0..iters {
                    std::hint::black_box(&mut f)();
                }
            });
            d.as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// `(eager ns/batch, selvec ns/batch, speedup)`.
pub fn micro_filter_ab() -> (f64, f64, f64) {
    let b = micro_batch(1024);
    let mut pool = ColumnPool::default();
    // Warmup (also primes the pool).
    for _ in 0..100 {
        micro_filter_eager(&b);
        micro_filter_selvec(&b, &mut pool);
    }
    let eager = median_ns(7, 500, || {
        micro_filter_eager(&b);
    });
    let selvec = median_ns(7, 500, || {
        micro_filter_selvec(&b, &mut pool);
    });
    (eager, selvec, eager / selvec)
}

/// Sanity guard used by tests: both filter paths agree on survivors.
pub fn micro_paths_agree() -> bool {
    let b = micro_batch(1024);
    let mut pool = ColumnPool::default();
    let want = b.mask.iter().filter(|&&m| m).count();
    micro_filter_eager(&b) == want && micro_filter_selvec(&b, &mut pool) == want
}

/// A vector-list-level parity check exposed for tests: marking + compacting
/// equals eager materialization.
pub fn vlist_paths_agree(rows: usize) -> bool {
    let mask: Vec<bool> = (0..rows).map(|i| i % 3 == 0).collect();
    let col: Vec<i64> = (0..rows as i64).collect();
    let mut lazy = VectorList::with("x", Column::I64(col.clone()));
    lazy.filter(&mask);
    lazy.compact();
    let mut eager = VectorList::with("x", Column::I64(col));
    eager.filter_materialize(&mask);
    lazy.col("x").unwrap().as_i64().unwrap() == eager.col("x").unwrap().as_i64().unwrap()
}

// ----------------------------------------------------- micro flatmap A/B

/// The micro's fan-out: 8 scalars per input row. A scalar payload isolates
/// the one thing `ExecCtx::fanout_hint` changes — output-vector regrowth —
/// from object-allocation cost, which the hint cannot touch and which
/// drowns the effect in noise on an object-producing kernel.
const FLATMAP_FANOUT: i64 = 8;

/// Applies the scalar-fan-out FLATMAP kernel to a 1024-row object batch
/// with `hint` as the output-capacity prediction.
fn flatmap_once(objs: &Column, block: &pc_object::BlockRef, hint: usize) -> Column {
    use pc_lambda::{kernel::FlatMap1, ExecCtx, FlatMapKernel};
    let kernel = FlatMap1::<BenchRec, i64, _> {
        f: |r: &Handle<BenchRec>| {
            let key = r.v().key();
            Ok((0..FLATMAP_FANOUT)
                .map(|k| key * FLATMAP_FANOUT + k)
                .collect())
        },
        _pd: std::marker::PhantomData,
    };
    let mut ctx = ExecCtx::new(block.clone());
    ctx.fanout_hint = hint;
    let (col, _counts) = kernel.apply(&[objs], None, &mut ctx).unwrap();
    col
}

/// `(cold ns/batch, hinted ns/batch, speedup)`: the FLATMAP kernel growing
/// its output Vec from zero capacity against the same kernel pre-reserving
/// the executor's learned fan-out prediction (8× here). The win is real but
/// bounded — it only removes output regrowth, and in the full engine
/// per-row object allocation dominates the lane — so this A/B is reported,
/// not gated.
pub fn micro_flatmap_ab() -> (f64, f64, f64) {
    let b = micro_agg_batch(1024, 512);
    let block = pc_object::BlockRef::new(1 << 16, pc_object::AllocPolicy::LightweightReuse);
    let hint = (1024 * FLATMAP_FANOUT) as usize;
    for _ in 0..100 {
        flatmap_once(&b.objs, &block, 0);
        flatmap_once(&b.objs, &block, hint);
    }
    let cold_ns = median_ns(7, 500, || {
        std::hint::black_box(flatmap_once(&b.objs, &block, 0));
    });
    let hint_ns = median_ns(7, 500, || {
        std::hint::black_box(flatmap_once(&b.objs, &block, hint));
    });
    (cold_ns, hint_ns, cold_ns / hint_ns)
}

/// Parity guard used by tests: the capacity hint is allocation-only — the
/// hinted and hint-less kernels emit identical output rows.
pub fn micro_flatmap_paths_agree() -> bool {
    let b = micro_agg_batch(1024, 512);
    let block = pc_object::BlockRef::new(1 << 16, pc_object::AllocPolicy::LightweightReuse);
    let hint = (1024 * FLATMAP_FANOUT) as usize;
    let cold = flatmap_once(&b.objs, &block, 0);
    let hinted = flatmap_once(&b.objs, &block, hint);
    let (cold, hinted) = (cold.as_i64().unwrap(), hinted.as_i64().unwrap());
    cold.len() == hint && cold == hinted
}

// ---------------------------------------------------------------- driver

/// One full pass over the seven macro workloads at `threads` pipelining
/// threads.
fn run_workloads(n: usize, threads: usize) -> Vec<(&'static str, Run)> {
    let c = client(threads);
    vec![
        ("scan", scan(&c, n)),
        ("filter", filter_heavy(&c, n)),
        ("flatmap", flatmap(&c, n)),
        ("join_probe", join_probe(&c, n)),
        ("join_build", join_build(&c, n)),
        ("agg_low_card", group_by(&c, n, 16, "low")),
        ("agg_high_card", group_by(&c, n, 65_536, "high")),
    ]
}

pub fn pipeline(quick: bool, threads: Option<usize>) {
    let n = if quick { 20_000 } else { 200_000 };
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let top = threads.unwrap_or_else(pc_exec::default_threads).max(1);
    // The scaling sweep: {1, 2, 4} ∪ {top}, capped at the requested top.
    let mut sweep: Vec<usize> = [1, 2, 4, top].into_iter().filter(|&t| t <= top).collect();
    sweep.sort_unstable();
    sweep.dedup();
    println!(
        "pipeline: morsel-driven vectorized execution \
         ({n} rows/workload, {cores} core(s), thread sweep {sweep:?})"
    );
    let passes: Vec<(usize, Vec<(&str, Run)>)> =
        sweep.iter().map(|&t| (t, run_workloads(n, t))).collect();
    let runs = &passes.last().unwrap().1;

    println!("\nworkloads at {top} thread(s):");
    let w = [14usize, 10, 10, 10, 12];
    row(
        &[
            "workload".into(),
            "rows_in".into(),
            "rows_out".into(),
            "time".into(),
            "Mrows/s".into(),
        ],
        &w,
    );
    for (name, r) in runs {
        row(
            &[
                name.to_string(),
                r.rows_in.to_string(),
                r.rows_out.to_string(),
                fmt_dur(r.dur),
                format!("{:.2}", r.mrows_per_s()),
            ],
            &w,
        );
    }
    for (name, r) in runs {
        if r.rows_aggregated > 0 {
            println!(
                "  {name}: two-phase aggregation absorbed {} rows into {} sealed map page(s)",
                r.rows_aggregated, r.map_pages_sealed
            );
        }
        if r.rows_probed > 0 {
            println!(
                "  {name}: join probed {} rows -> {} matches; build sealed {} table page(s)",
                r.rows_probed, r.join_matches, r.build_pages_sealed
            );
        }
        println!(
            "  {name}: {} morsel(s) dispatched, {} stolen, {} thread(s) used",
            r.morsels_dispatched, r.morsels_stolen, r.threads_used
        );
        println!(
            "  {name}: pool {} hit(s) / {} miss(es), {} eviction(s), {} spill(s)",
            r.pool_hits, r.pool_misses, r.pool_evictions, r.pool_spills
        );
    }

    if sweep.len() > 1 {
        println!("\nscaling (Mrows/s per pipelining thread count):");
        let mut header = vec!["workload".to_string()];
        let mut widths = vec![14usize];
        for &t in &sweep {
            header.push(format!("t={t}"));
            widths.push(9);
        }
        header.push(format!("1\u{2192}{top}"));
        widths.push(8);
        row(&header, &widths);
        for (i, (name, base)) in passes[0].1.iter().enumerate() {
            let mut cells = vec![name.to_string()];
            for (_, pass) in &passes {
                cells.push(format!("{:.2}", pass[i].1.mrows_per_s()));
            }
            cells.push(format!(
                "{:.2}x",
                runs[i].1.mrows_per_s() / base.mrows_per_s()
            ));
            row(&cells, &widths);
        }
    }

    // The morsel-scheduler acceptance gate: at 4 threads the parallelized
    // join-build lane must beat its single-threaded self by ≥ 1.5×. Only
    // meaningful on multicore hardware (CI runners have 4 cores) — on
    // smaller boxes the measured ratio is reported and the gate skipped.
    let lane = |t: usize, name: &str| -> Option<f64> {
        let pass = passes.iter().find(|(pt, _)| *pt == t)?;
        let (_, r) = pass.1.iter().find(|(ln, _)| *ln == name)?;
        Some(r.mrows_per_s())
    };
    if let (Some(jb1), Some(jb4)) = (lane(1, "join_build"), lane(4, "join_build")) {
        let ratio = jb4 / jb1;
        let fm = match (lane(1, "flatmap"), lane(4, "flatmap")) {
            (Some(f1), Some(f4)) => format!(" (flatmap: {:.2}x)", f4 / f1),
            _ => String::new(),
        };
        if cores >= 4 {
            println!("\njoin_build 1\u{2192}4 threads: {ratio:.2}x{fm}");
            if ratio < 1.5 {
                eprintln!("FAIL: 4-thread join_build speedup {ratio:.2}x < 1.5x gate");
                std::process::exit(1);
            }
        } else {
            println!(
                "\njoin_build 1\u{2192}4 threads: {ratio:.2}x{fm} — \
                 SKIP gate ({cores} core(s) < 4, speedup not achievable here)"
            );
        }
    }

    let (eager_ns, selvec_ns, speedup) = micro_filter_ab();
    println!(
        "\nmicro filter (1024-row batch, 1 obj + 3 scalar cols, 2% selectivity):\n  \
         eager re-materialization: {eager_ns:.0} ns/batch\n  \
         selection vector:         {selvec_ns:.0} ns/batch\n  \
         speedup:                  {speedup:.2}x"
    );
    // The acceptance gate for the selection-vector engine (CI runs this in
    // the bench smoke step, so a regression below 1.5× fails the build;
    // the measured margin is ~5×, far from timing noise).
    if speedup < 1.5 {
        eprintln!("FAIL: selection-vector filter speedup {speedup:.2}x < 1.5x gate");
        std::process::exit(1);
    }

    let (row_ns, vec_ns, agg_speedup) = micro_agg_ab();
    println!(
        "\nmicro agg (1024-row batch, 16 groups, 4 partitions):\n  \
         row-at-a-time absorb:     {row_ns:.0} ns/batch\n  \
         vectorized absorb:        {vec_ns:.0} ns/batch\n  \
         speedup:                  {agg_speedup:.2}x"
    );
    // Acceptance gate for the vectorized aggregation sink: the batch path
    // must beat the row-at-a-time reference by ≥ 1.5× on the low-card
    // micro workload (measured margin is well above 2×).
    if agg_speedup < 1.5 {
        eprintln!("FAIL: vectorized aggregation speedup {agg_speedup:.2}x < 1.5x gate");
        std::process::exit(1);
    }

    let (jrow_ns, jvec_ns, join_speedup) = micro_join_ab();
    println!(
        "\nmicro join (1024-row build, 512 keys, 8 partitions, 50%-miss probes):\n  \
         row-at-a-time build+scan probe:   {jrow_ns:.0} ns/iter\n  \
         vectorized build+routed probe:    {jvec_ns:.0} ns/iter\n  \
         speedup:                          {join_speedup:.2}x"
    );
    // Acceptance gate for the partitioned vectorized join: batched build
    // plus partition-routed probing must beat the retained row-at-a-time
    // reference by ≥ 1.5× on the micro workload.
    if join_speedup < 1.5 {
        eprintln!("FAIL: vectorized join speedup {join_speedup:.2}x < 1.5x gate");
        std::process::exit(1);
    }

    let (cold_ns, hint_ns, fm_speedup) = micro_flatmap_ab();
    println!(
        "\nmicro flatmap (1024-row batch, 8x scalar fan-out, learned capacity hint):\n  \
         cold output allocation:   {cold_ns:.0} ns/batch\n  \
         hinted pre-reservation:   {hint_ns:.0} ns/batch\n  \
         speedup:                  {fm_speedup:.2}x"
    );
    // Reported, not gated: the hint only removes Vec regrowth, and per-row
    // object allocation dominates this kernel.

    let mode = if quick { "quick" } else { "full" };
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"pipeline\",\n");
    json.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    json.push_str(&format!("  \"rows_per_workload\": {n},\n"));
    json.push_str("  \"batch_size\": 1024,\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"threads\": {top},\n"));
    json.push_str("  \"workloads\": {\n");
    for (i, (name, r)) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {{\"rows_in\": {}, \"rows_out\": {}, \"rows_aggregated\": {}, \"map_pages_sealed\": {}, \"rows_probed\": {}, \"join_matches\": {}, \"build_pages_sealed\": {}, \"morsels_dispatched\": {}, \"morsels_stolen\": {}, \"threads_used\": {}, \"secs\": {:.6}, \"mrows_per_s\": {:.3}}}{}\n",
            r.rows_in,
            r.rows_out,
            r.rows_aggregated,
            r.map_pages_sealed,
            r.rows_probed,
            r.join_matches,
            r.build_pages_sealed,
            r.morsels_dispatched,
            r.morsels_stolen,
            r.threads_used,
            r.dur.as_secs_f64(),
            r.mrows_per_s(),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"scaling\": {\n");
    for (pi, (t, pass)) in passes.iter().enumerate() {
        let lanes = pass
            .iter()
            .map(|(name, r)| format!("\"{name}\": {:.3}", r.mrows_per_s()))
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "    \"{t}\": {{{lanes}}}{}\n",
            if pi + 1 < passes.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"micro_filter\": {{\"eager_ns_per_batch\": {eager_ns:.0}, \"selvec_ns_per_batch\": {selvec_ns:.0}, \"speedup\": {speedup:.2}}},\n"
    ));
    json.push_str(&format!(
        "  \"micro_agg\": {{\"rowwise_ns_per_batch\": {row_ns:.0}, \"vectorized_ns_per_batch\": {vec_ns:.0}, \"speedup\": {agg_speedup:.2}}},\n"
    ));
    json.push_str(&format!(
        "  \"micro_join\": {{\"rowwise_ns_per_iter\": {jrow_ns:.0}, \"vectorized_ns_per_iter\": {jvec_ns:.0}, \"speedup\": {join_speedup:.2}}},\n"
    ));
    json.push_str(&format!(
        "  \"micro_flatmap\": {{\"cold_ns_per_batch\": {cold_ns:.0}, \"hinted_ns_per_batch\": {hint_ns:.0}, \"speedup\": {fm_speedup:.2}}}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("\nwrote BENCH_pipeline.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_paths_agree_on_survivors() {
        assert!(micro_paths_agree());
        assert!(vlist_paths_agree(1000));
    }

    #[test]
    fn agg_paths_agree_on_groups() {
        assert!(micro_agg_paths_agree());
    }

    #[test]
    fn join_paths_agree_on_matches() {
        assert!(micro_join_paths_agree());
    }

    #[test]
    fn flatmap_hint_is_allocation_only() {
        assert!(micro_flatmap_paths_agree());
    }
}
