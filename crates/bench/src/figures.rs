//! Figure generators (Figures 1–5).

use pc_core::prelude::*;
use pc_exec::describe_decompositions;
use pc_object::pc_object;

pc_object! {
    pub struct Dep / DepView {
        (dept_name, set_dept_name): Handle<PcString>,
    }
}

pc_object! {
    pub struct Emp / EmpView {
        (dept, set_dept): Handle<PcString>,
        (salary, set_salary): i64,
    }
}

pc_object! {
    pub struct Sup / SupView {
        (dept, set_dept): Handle<PcString>,
    }
}

/// The §5.2 three-way-join chain, compiled and printed (Figure 1: the
/// first stages extract `Dep.deptName` and `Emp::getDeptName()`, compare,
/// and filter). Built over *unbound* datasets — compiling a job needs no
/// live cluster.
fn join_job() -> Job {
    let dep = Dataset::<Dep>::scan("db", "deps");
    let emp = Dataset::<Emp>::scan("db", "emps");
    let sup = Dataset::<Sup>::scan("db", "sups");
    let joined = dep.join3(
        &emp,
        &sup,
        |d, e, s| {
            d.member("deptName", |d| d.v().dept_name().as_str().to_string())
                .eq(e.method("getDeptName", |e| e.v().dept().as_str().to_string()))
                .and(
                    d.member("deptName", |d| d.v().dept_name().as_str().to_string())
                        .eq(s.method("getDept", |s| s.v().dept().as_str().to_string())),
                )
        },
        "mkResult",
        |d, _e, _s| Ok(d.clone()),
    );
    Job::new().add(joined.write_to("db", "out"))
}

/// Figure 1: the TCAP program compiled from the §4/§5.2 join example, and
/// its physical pipelines.
pub fn figure1() {
    println!("Figure 1: TCAP compiled from the Dep/Emp/Sup join chain\n");
    let q = join_job().compile().unwrap();
    println!("--- unoptimized TCAP ---\n{}", q.tcap);
    let mut tcap = q.tcap.clone();
    let report = pc_tcap::optimize(&mut tcap);
    println!("--- after optimization ({report:?}) ---\n{tcap}");
    let plan = pc_exec::plan(&tcap).unwrap();
    println!("--- physical pipelines ---\n{plan}");
}

/// Figure 2: the LDA computation graph (init-only vs per-iteration parts).
pub fn figure2() {
    println!("Figure 2: PC LDA computation structure\n");
    println!("init-only (dashed edges in the paper):");
    println!("  [1] Writer(triples)          <- client sendData of (doc,word,count)");
    println!("  [2] Writer(theta)            <- Dirichlet-initialized doc topic probs");
    println!("  [3] Writer(phi_by_word)      <- Dirichlet-initialized word topic probs");
    println!("per-iteration (solid edges):");
    println!("  [4] Reader(triples)     ──┐");
    println!("  [5] Reader(theta)       ──┼─> [7] JoinComp (triples ⋈ theta on doc)");
    println!("  [6] Reader(phi_by_word) ──┘       ⋈ phi on word (3-way cascade)");
    println!("  [8] projection: multinomial assignment sampler (native lambda)");
    println!("  [9] Writer(assignments)");
    println!("  [10] Reader(assignments) ─> [11] AggregateComp by doc  ─> [12] Writer(theta_rows)");
    println!("  [13] retype theta_rows -> theta (Selection)");
    println!("  [14] Reader(assignments) ─> [15] AggregateComp by word ─> Writer(word_counts)");
    println!("  [16] driver: Dirichlet(beta + per-topic counts) ─> Writer(phi_by_word)");
    println!();
    println!("15+ computations per round trip, matching the paper's count;");
    println!("each iteration runs a 3-way JoinComp, a MultiSelection-style");
    println!("sampler, and two AggregateComps, as in Figure 2 of the paper.");
}

/// Figure 3: alternative pipeline decompositions of a 3-join TCAP DAG.
pub fn figure3() {
    println!("Figure 3: pipeline decompositions of the 3-way join program\n");
    let mut q = join_job().compile().unwrap();
    pc_tcap::optimize(&mut q.tcap);
    for d in describe_decompositions(&q.tcap) {
        println!("{d}");
    }
    println!("(the executor runs the first decomposition: composite sides build,");
    println!(" the last input streams through every probe — Appendix D.3)");
}

/// Figure 4: the live component topology of a running cluster.
pub fn figure4() {
    println!("Figure 4: PC distributed runtime (live topology)\n");
    let client = PcClient::connect(ClusterConfig {
        workers: 4,
        ..Default::default()
    })
    .unwrap();
    println!("master node:");
    println!(
        "  catalog manager        (sets: {})",
        client.cluster().catalog.list_sets().len()
    );
    println!("  distributed storage manager");
    println!("  TCAP optimizer         (rule-based, fixpoint)");
    println!("  distributed query scheduler (JobStages)");
    for w in &client.cluster().workers {
        println!("worker {}:", w.id);
        println!(
            "  front-end: local catalog (type fetches: {}), local storage + buffer pool",
            w.types.fetches()
        );
        println!("  backend:   executor threads (vectorized pipelines over user code)");
    }
}

/// Figure 5: distributed aggregation phase statistics from a live run.
pub fn figure5() {
    println!("Figure 5: distributed aggregation workflow (live run)\n");
    use pc_ml::kmeans::{synthetic_points, PcKMeans};
    let client = PcClient::connect(ClusterConfig {
        workers: 3,
        exec: ExecConfig {
            batch_size: 256,
            page_size: 1 << 16,
            agg_partitions: 6,
            join_partitions: 8,
            ..ExecConfig::default()
        },
        broadcast_threshold: 16 << 20,
        ..ClusterConfig::default()
    })
    .unwrap();
    let pts = synthetic_points(3000, 8, 5, 23);
    let mut km = PcKMeans::init(&client, "fig5", "pts", &pts, 5).unwrap();
    let before = client.cluster().stats_snapshot();
    km.iterate().unwrap();
    let after = client.cluster().stats_snapshot();
    println!("producing stage: 3 workers x 2 pipelining threads pre-aggregate");
    println!("  into hash-partitioned Map pages (6 partitions)");
    println!("combining threads: merge per-thread partials per partition");
    println!(
        "shuffle: {} pages / {} bytes crossed the byte-copy network",
        after.pages_shuffled - before.pages_shuffled,
        after.bytes_shuffled - before.bytes_shuffled
    );
    println!("aggregation threads: each partition owner merged its inbox and");
    println!("  materialized Centroid objects — zero serialization end to end");
}
