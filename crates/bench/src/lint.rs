//! `repro lint` — the panic-hygiene lint.
//!
//! The cluster and execution crates sit on the error-propagation spine of
//! the system: a stray `unwrap()` there turns a recoverable condition
//! (worker death, memory pressure, a rejected plan) into a process abort.
//! This lint scans the non-test source of `crates/cluster` and
//! `crates/exec` for `.unwrap()` / `.expect(` and fails on any occurrence
//! not recorded in the allowlist at `LINT_ALLOW.txt` (workspace root).
//!
//! The allowlist is a ratchet, not an excuse file: every current entry is
//! either a join on a thread whose panic is the error being propagated, a
//! mutex whose poisoning already implies a panicked peer, or an invariant
//! established on the adjacent line. New unwraps fail CI until either
//! converted to `?` or deliberately added to the allowlist in the same PR.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Directories scanned (workspace-relative). Only `src/` trees: tests,
/// benches, and examples are free to unwrap.
const SCANNED: &[&str] = &["crates/cluster/src", "crates/exec/src"];

/// One offending line.
#[derive(Debug)]
pub struct Offence {
    /// Workspace-relative path.
    pub path: String,
    pub line: usize,
    /// The trimmed source line (what the allowlist matches on).
    pub text: String,
}

fn workspace_root() -> PathBuf {
    // crates/bench/../../ == the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            rust_sources(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    out.sort();
}

/// Scans one file. Everything from the first `#[cfg(test)]` to the end of
/// the file is test code by the repo's convention (test modules close the
/// file) and is skipped; so are comment lines.
fn scan_file(root: &Path, path: &Path) -> Vec<Offence> {
    let Ok(src) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.contains("#[cfg(test)]") {
            break;
        }
        if line.starts_with("//") {
            continue;
        }
        if line.contains(".unwrap()") || line.contains(".expect(") {
            out.push(Offence {
                path: rel.clone(),
                line: i + 1,
                text: line.to_string(),
            });
        }
    }
    out
}

/// The allowlist: `path: trimmed-line` entries, one per line; `#` comments
/// and blanks ignored. An offence is allowed when some entry's path equals
/// its path and the entry's text equals the trimmed line — line numbers
/// deliberately don't participate, so pure code motion never churns it.
fn allowlist(root: &Path) -> Vec<(String, String)> {
    let Ok(src) = std::fs::read_to_string(root.join("LINT_ALLOW.txt")) else {
        return Vec::new();
    };
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (path, text) = l.split_once(": ")?;
            Some((path.trim().to_string(), text.trim().to_string()))
        })
        .collect()
}

/// Runs the lint. Returns every offence not covered by the allowlist.
pub fn offences() -> Vec<Offence> {
    let root = workspace_root();
    let allow = allowlist(&root);
    let mut files = Vec::new();
    for dir in SCANNED {
        rust_sources(&root.join(dir), &mut files);
    }
    let mut out = Vec::new();
    for f in files {
        for o in scan_file(&root, &f) {
            let allowed = allow.iter().any(|(p, t)| *p == o.path && *t == o.text);
            if !allowed {
                out.push(o);
            }
        }
    }
    out
}

/// CLI entry: prints a report, returns true when clean.
pub fn lint() -> bool {
    let found = offences();
    if found.is_empty() {
        println!(
            "repro lint: no unallowlisted unwrap()/expect() in {}",
            SCANNED.join(", ")
        );
        return true;
    }
    let mut msg = String::new();
    let _ = writeln!(
        msg,
        "repro lint: {} unallowlisted unwrap()/expect() call(s) in non-test code:\n",
        found.len()
    );
    for o in &found {
        let _ = writeln!(msg, "  {}:{}: {}", o.path, o.line, o.text);
    }
    let _ = writeln!(
        msg,
        "\nconvert to `?` (PcError has a variant for every recoverable condition), or\nadd `path: trimmed-line` to LINT_ALLOW.txt with a justification comment."
    );
    eprint!("{msg}");
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_tree_is_lint_clean() {
        let found = offences();
        assert!(
            found.is_empty(),
            "unallowlisted unwrap/expect in non-test code:\n{}",
            found
                .iter()
                .map(|o| format!("  {}:{}: {}", o.path, o.line, o.text))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn allowlist_matches_on_path_and_content() {
        let root = workspace_root();
        let allow = allowlist(&root);
        assert!(
            !allow.is_empty(),
            "LINT_ALLOW.txt missing or empty at the workspace root"
        );
        // Every allowlist entry should still correspond to a real line —
        // stale entries mean the unwrap was fixed and the entry must go.
        for (path, text) in &allow {
            let src = std::fs::read_to_string(root.join(path))
                .unwrap_or_else(|_| panic!("allowlisted file {path} no longer exists"));
            assert!(
                src.lines().any(|l| l.trim() == text),
                "stale allowlist entry (line no longer present): {path}: {text}"
            );
        }
    }
}
