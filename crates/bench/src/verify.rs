//! `repro verify` — the TCAP verifier demonstration and its mutation
//! gauntlet.
//!
//! Compiles a corpus of representative workload jobs (selection, retyping
//! projection + flat-map, two-way join, the §5.2 three-way join chain, and
//! aggregation), shows each lowered plan verifying clean before and after
//! optimization, renders one deliberately broken plan's diagnostics, and
//! then runs the gauntlet: every mutation class from
//! [`pc_tcap::mutate`] applied to every plan under many seeds, gated on
//! ≥95% of applied mutants being rejected with the class's expected `TV`
//! code and zero false positives on the unmutated plans.

use pc_core::prelude::*;
use pc_tcap::{mutate, verify, MutationKind, TcapProgram, ALL_MUTATIONS};

pc_object! {
    pub struct VEmp / VEmpView {
        (salary, set_salary): i64,
        (dept_id, set_dept_id): i64,
        (name, set_name): Handle<PcString>,
    }
}

pc_object! {
    pub struct VDept / VDeptView {
        (id, set_id): i64,
        (dname, set_dname): Handle<PcString>,
    }
}

pc_object! {
    pub struct VStat / VStatView {
        (dept, set_dept): i64,
        (total, set_total): i64,
    }
}

struct SalarySum;

impl AggregateSpec for SalarySum {
    type In = VEmp;
    type Key = i64;
    type Val = i64;
    type Out = VStat;

    fn key_of(&self, rec: &Handle<VEmp>) -> PcResult<i64> {
        Ok(rec.v().dept_id())
    }

    fn init(&self, _b: &BlockRef, rec: &Handle<VEmp>) -> PcResult<i64> {
        Ok(rec.v().salary())
    }

    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<VEmp>) -> PcResult<()> {
        let t: i64 = b.read(slot);
        b.write(slot, t + rec.v().salary());
        Ok(())
    }

    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()> {
        let a: i64 = dst.read(dst_slot);
        let b: i64 = src.read(src_slot);
        dst.write(dst_slot, a + b);
        Ok(())
    }

    fn finalize(&self, key: &i64, b: &BlockRef, slot: u32) -> PcResult<Handle<VStat>> {
        let t: i64 = b.read(slot);
        let out = make_object::<VStat>()?;
        out.v().set_dept(*key)?;
        out.v().set_total(t)?;
        Ok(out)
    }
}

fn selection_job() -> Job {
    let well_paid = Dataset::<VEmp>::scan("db", "emps").filter(|e| {
        e.method("getSalary", |e| e.v().salary())
            .gt_const(60_000i64)
    });
    Job::new().add(well_paid.write_to("db", "out"))
}

fn flatmap_job() -> Job {
    let fanned = Dataset::<VEmp>::scan("db", "emps")
        .select("tag", |e| {
            let t = make_object::<VStat>()?;
            t.v().set_dept(e.v().dept_id())?;
            t.v().set_total(e.v().salary() / 1000)?;
            Ok(t)
        })
        .flat_map("explode", |t| {
            let mut out = Vec::new();
            for b in 0..t.v().total().min(3) {
                let x = make_object::<VStat>()?;
                x.v().set_dept(t.v().dept())?;
                x.v().set_total(b)?;
                out.push(x);
            }
            Ok(out)
        });
    Job::new().add(fanned.write_to("db", "out"))
}

fn join_job() -> Job {
    let pairs = Dataset::<VDept>::scan("db", "depts").join(
        &Dataset::<VEmp>::scan("db", "emps"),
        |d, e| {
            d.member("id", |d| d.v().id())
                .eq(e.member("deptId", |e| e.v().dept_id()))
        },
        "pair",
        |d, _e| Ok(d.clone()),
    );
    Job::new().add(pairs.write_to("db", "pairs"))
}

fn join3_job() -> Job {
    let dep = Dataset::<VDept>::scan("db", "depts");
    let emp = Dataset::<VEmp>::scan("db", "emps");
    let sup = Dataset::<VEmp>::scan("db", "sups");
    let joined = dep.join3(
        &emp,
        &sup,
        |d, e, s| {
            d.member("id", |d| d.v().id())
                .eq(e.method("getDeptId", |e| e.v().dept_id()))
                .and(
                    d.member("id", |d| d.v().id())
                        .eq(s.method("getDeptId", |s| s.v().dept_id())),
                )
        },
        "mkResult",
        |d, _e, _s| Ok(d.clone()),
    );
    Job::new().add(joined.write_to("db", "out"))
}

fn aggregate_job() -> Job {
    let stats = Dataset::<VEmp>::scan("db", "emps").aggregate(SalarySum);
    Job::new().add(stats.write_to("db", "stats"))
}

/// The workload corpus: every statement shape the compiler emits (INPUT,
/// APPLY of each kernel family, FILTER, HASH, JOIN, FLATMAP, AGGREGATE,
/// OUTPUT) appears in at least one plan.
pub fn corpus() -> Vec<(&'static str, TcapProgram)> {
    let jobs: Vec<(&'static str, Job)> = vec![
        ("selection", selection_job()),
        ("flatmap", flatmap_job()),
        ("join", join_job()),
        ("join3-chain", join3_job()),
        ("aggregate", aggregate_job()),
    ];
    jobs.into_iter()
        .map(|(name, job)| {
            let q = job
                .compile()
                .unwrap_or_else(|e| panic!("workload {name} failed to compile: {e}"));
            (name, q.tcap)
        })
        .collect()
}

/// One gauntlet cell: a mutation class applied across plans and seeds.
struct ClassScore {
    kind: MutationKind,
    applied: usize,
    caught: usize,
    caught_with_expected_code: usize,
}

/// Runs the verifier demo and the mutation gauntlet. Returns true when the
/// gauntlet passes (≥95% of applied mutants rejected with the expected
/// code, zero false positives).
pub fn verify_demo(extra_seeds: &[u64]) -> bool {
    println!("repro verify: TCAP static verifier\n");

    // 1. Every workload plan verifies clean, before and after optimization.
    let plans = corpus();
    println!("-- workload plans ({}) --", plans.len());
    let mut false_positives = 0usize;
    for (name, tcap) in &plans {
        let pre = verify::verify(tcap);
        let mut opt = tcap.clone();
        pc_tcap::optimize(&mut opt);
        let post = verify::verify(&opt);
        let ok = pre.is_clean() && post.is_clean();
        if !ok {
            false_positives += 1;
        }
        println!(
            "  {name:<12} {} stmts lowered, {} after optimize: {}",
            tcap.stmts.len(),
            opt.stmts.len(),
            if ok {
                "verifies clean (pre + post optimize)".to_string()
            } else {
                format!("REJECTED: {:?} / {:?}", pre.codes(), post.codes())
            }
        );
    }

    // 2. What a rejection looks like: break the join plan and render.
    let (_, join_plan) = &plans[2];
    if let Some((broken, m)) = mutate(join_plan, MutationKind::RetypeOutput, 7) {
        println!("\n-- example rejection ({}) --", m.description);
        print!("{}", verify::verify(&broken).render());
    }

    // 3. The gauntlet: every class x every plan x many seeds.
    let seeds: Vec<u64> = (0..16).chain(extra_seeds.iter().copied()).collect();
    let mut scores: Vec<ClassScore> = ALL_MUTATIONS
        .iter()
        .map(|&kind| ClassScore {
            kind,
            applied: 0,
            caught: 0,
            caught_with_expected_code: 0,
        })
        .collect();
    for (_, tcap) in &plans {
        for score in scores.iter_mut() {
            for &seed in &seeds {
                let Some((broken, _)) = mutate(tcap, score.kind, seed) else {
                    continue; // no applicable site in this plan: skip, not a miss
                };
                score.applied += 1;
                let report = verify::verify(&broken);
                if !report.is_clean() {
                    score.caught += 1;
                    if report.has_code(score.kind.expected_code()) {
                        score.caught_with_expected_code += 1;
                    }
                }
            }
        }
    }

    println!(
        "\n-- mutation gauntlet ({} seeds per class per plan) --",
        seeds.len()
    );
    println!(
        "  {:<28} {:>8} {:>8} {:>10} {:>6}",
        "class", "applied", "caught", "with-code", "rate"
    );
    let (mut applied, mut with_code) = (0usize, 0usize);
    for s in &scores {
        let rate = if s.applied == 0 {
            100.0
        } else {
            100.0 * s.caught_with_expected_code as f64 / s.applied as f64
        };
        println!(
            "  {:<28} {:>8} {:>8} {:>10} {:>5.1}%  (expect {})",
            s.kind.label(),
            s.applied,
            s.caught,
            s.caught_with_expected_code,
            rate,
            s.kind.expected_code(),
        );
        applied += s.applied;
        with_code += s.caught_with_expected_code;
    }
    let overall = if applied == 0 {
        0.0
    } else {
        100.0 * with_code as f64 / applied as f64
    };
    println!(
        "\n  overall: {with_code}/{applied} mutants rejected with the expected code ({overall:.1}%)"
    );
    println!("  false positives on clean plans: {false_positives}");

    let pass = overall >= 95.0 && false_positives == 0 && applied > 0;
    println!(
        "\n  gate (>=95% expected-code rejection, zero false positives): {}",
        if pass { "PASS" } else { "FAIL" }
    );
    pass
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_every_statement_shape() {
        let plans = corpus();
        let all: String = plans.iter().map(|(_, t)| t.to_string()).collect();
        for shape in [
            "INPUT",
            "APPLY",
            "FILTER",
            "HASH",
            "JOIN",
            "FLATMAP",
            "AGGREGATE",
            "OUTPUT",
        ] {
            assert!(all.contains(shape), "corpus never emits {shape}");
        }
    }

    #[test]
    fn gauntlet_gate_passes() {
        assert!(verify_demo(&[0xC0FFEE]), "mutation gauntlet below the gate");
    }
}
