//! `repro faults` — the transport & recovery demonstration.
//!
//! Runs the chaos matrix from `cluster/tests/faults.rs` as a visible
//! experiment: every fault kind ({drop, delay, reorder, corrupt,
//! worker-death}) against both transport-heavy stage shapes (aggregation
//! shuffle, broadcast join), over a fixed seed set plus any `--seed N`
//! extras (CI passes a seed rotated from the commit hash). With `--tcp`
//! the chaos rides on real loopback sockets (`TcpTransport`) instead of
//! the in-process stream. Each cell reports whether the run under faults
//! produced output **byte-identical** to a fault-free run, how many
//! workers were recovered and stages replayed, how many wire bytes were
//! wasted on retransmission, and — on the TCP wire — missed heartbeats
//! and metered reconnects. Any non-identical cell prints its full fault
//! schedule and fails the process.

use crate::util::row;
use pc_cluster::{
    ClusterConfig, ClusterStats, FaultKind, FaultSpec, PcCluster, StreamConfig, TcpConfig,
    TransportKind,
};
use pc_core::{Dataset, Job};
use pc_exec::ExecConfig;
use pc_lambda::{AggregateSpec, SetWriter};
use pc_object::{
    make_object, pc_object, BlockRef, Handle, PcResult, PcString, PcVec, PressureSpec,
};

pc_object! {
    pub struct FEmp / FEmpView {
        (salary, set_salary): i64,
        (dept_id, set_dept_id): i64,
        (name, set_name): Handle<PcString>,
    }
}

pc_object! {
    pub struct FDept / FDeptView {
        (id, set_id): i64,
        (dname, set_dname): Handle<PcString>,
    }
}

pc_object! {
    pub struct FDeptStat / FDeptStatView {
        (dept, set_dept): i64,
        (count, set_count): i64,
        (total, set_total): i64,
    }
}

const WORKERS: usize = 3;

struct SumAgg;

impl AggregateSpec for SumAgg {
    type In = FEmp;
    type Key = i64;
    type Val = (i64, i64);
    type Out = FDeptStat;

    fn key_of(&self, rec: &Handle<FEmp>) -> PcResult<i64> {
        Ok(rec.v().dept_id())
    }

    fn init(&self, _b: &BlockRef, rec: &Handle<FEmp>) -> PcResult<(i64, i64)> {
        Ok((1, rec.v().salary()))
    }

    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<FEmp>) -> PcResult<()> {
        let (c, t): (i64, i64) = b.read(slot);
        b.write(slot, (c + 1, t + rec.v().salary()));
        Ok(())
    }

    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()> {
        let (c1, t1): (i64, i64) = dst.read(dst_slot);
        let (c2, t2): (i64, i64) = src.read(src_slot);
        dst.write(dst_slot, (c1 + c2, t1 + t2));
        Ok(())
    }

    fn finalize(&self, key: &i64, b: &BlockRef, slot: u32) -> PcResult<Handle<FDeptStat>> {
        let (c, t): (i64, i64) = b.read(slot);
        let out = make_object::<FDeptStat>()?;
        out.v().set_dept(*key)?;
        out.v().set_count(c)?;
        out.v().set_total(t)?;
        Ok(out)
    }
}

fn cluster_with(transport: TransportKind) -> PcCluster {
    PcCluster::new(ClusterConfig {
        workers: WORKERS,
        exec: ExecConfig {
            batch_size: 32,
            page_size: 1 << 15,
            agg_partitions: 5,
            join_partitions: 8,
            morsel_rows: 64,
            ..ExecConfig::default()
        },
        broadcast_threshold: 1 << 20,
        transport,
        ..ClusterConfig::default()
    })
    .unwrap()
}

/// A fault-free-wire cluster with seeded memory-pressure injection armed
/// on every worker pool's budget: reservations are denied as a pure
/// function of seed × reservation index, so operators spill at randomized
/// points even though the data would fit.
fn cluster_pressured(seed: u64) -> PcCluster {
    PcCluster::new(ClusterConfig {
        workers: WORKERS,
        exec: ExecConfig {
            batch_size: 32,
            page_size: 1 << 15,
            agg_partitions: 5,
            join_partitions: 8,
            morsel_rows: 64,
            ..ExecConfig::default()
        },
        broadcast_threshold: 1 << 20,
        pressure: Some(PressureSpec::seeded(seed)),
        ..ClusterConfig::default()
    })
    .unwrap()
}

fn faulty(spec: FaultSpec, tcp: bool) -> TransportKind {
    let inner = if tcp {
        TransportKind::Tcp(TcpConfig {
            chunk_bytes: 1 << 10,
            ..TcpConfig::default()
        })
    } else {
        TransportKind::Stream(StreamConfig {
            chunk_bytes: 1 << 10,
            ..StreamConfig::default()
        })
    };
    TransportKind::Faulty {
        inner: Box::new(inner),
        spec,
    }
}

fn load_emps(c: &PcCluster, n: usize) {
    c.create_or_clear_set("db", "emps").unwrap();
    let mut w = SetWriter::new(1 << 14);
    for i in 0..n {
        w.write_with(|| {
            let e = make_object::<FEmp>()?;
            e.v().set_salary(30_000 + (i as i64 * 977) % 90_000)?;
            e.v().set_dept_id((i % 7) as i64)?;
            e.v().set_name(PcString::make(&format!("emp{i}"))?)?;
            Ok(e.erase())
        })
        .unwrap();
    }
    c.send_pages("db", "emps", w.finish().unwrap()).unwrap();
}

fn load_depts(c: &PcCluster) {
    c.create_or_clear_set("db", "depts").unwrap();
    let mut w = SetWriter::new(1 << 14);
    for d in 0..7i64 {
        w.write_with(|| {
            let dept = make_object::<FDept>()?;
            dept.v().set_id(d)?;
            dept.v().set_dname(PcString::make(&format!("dept{d}"))?)?;
            Ok(dept.erase())
        })
        .unwrap();
    }
    c.send_pages("db", "depts", w.finish().unwrap()).unwrap();
}

fn run_agg(c: &PcCluster, n: usize) -> (Vec<Vec<u8>>, ClusterStats) {
    load_emps(c, n);
    c.create_or_clear_set("db", "stats").unwrap();
    let ds = Dataset::<FEmp>::scan("db", "emps").aggregate(SumAgg);
    let q = Job::new()
        .add(ds.write_to("db", "stats"))
        .compile()
        .unwrap();
    let stats = c.execute(&q).unwrap();
    (
        pc_cluster::testkit::set_bytes_sorted(c, "db", "stats").unwrap(),
        stats,
    )
}

fn run_join(c: &PcCluster, n: usize) -> (Vec<Vec<u8>>, ClusterStats) {
    load_emps(c, n);
    load_depts(c);
    c.create_or_clear_set("db", "pairs").unwrap();
    let joined = Dataset::<FDept>::scan("db", "depts").join(
        &Dataset::<FEmp>::scan("db", "emps"),
        |d, e| {
            d.member("id", |d| d.v().id())
                .eq(e.member("deptId", |e| e.v().dept_id()))
        },
        "pair",
        |d, e| {
            let v = make_object::<PcVec<i64>>()?;
            v.push(d.v().id())?;
            v.push(e.v().dept_id())?;
            v.push(e.v().salary())?;
            Ok(v)
        },
    );
    let q = Job::new()
        .add(joined.write_to("db", "pairs"))
        .compile()
        .unwrap();
    let stats = c.execute(&q).unwrap();
    (
        pc_cluster::testkit::set_bytes_sorted(c, "db", "pairs").unwrap(),
        stats,
    )
}

/// The chaos demonstration. `extra_seeds` join the fixed set (CI rotates
/// one in from the commit hash); `tcp` moves the chaos onto real loopback
/// sockets. Exits non-zero if any cell is not byte-identical to the
/// fault-free run.
pub fn faults(quick: bool, extra_seeds: &[u64], tcp: bool) {
    let rows = if quick { 600 } else { 2_000 };
    let mut seeds: Vec<u64> = if quick { vec![1] } else { vec![1, 2, 3] };
    seeds.extend_from_slice(extra_seeds);

    type JobFn = fn(&PcCluster, usize) -> (Vec<Vec<u8>>, ClusterStats);
    let scenarios: [(&str, JobFn); 2] = [("agg-shuffle", run_agg), ("join-broadcast", run_join)];
    let kinds = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Reorder,
        FaultKind::Corrupt,
        FaultKind::WorkerDeath,
    ];

    let wire = if tcp {
        "tcp sockets"
    } else {
        "in-process stream"
    };
    println!("Transport & recovery: chaos matrix over {rows} rows, seeds {seeds:?}, wire: {wire}");
    println!("(every cell must be byte-identical to the fault-free run)\n");
    let widths = [14, 12, 6, 10, 10, 9, 14, 9, 9];
    row(
        &[
            "stage".into(),
            "fault".into(),
            "seed".into(),
            "identical".into(),
            "recovered".into(),
            "replayed".into(),
            "retrans bytes".into(),
            "hb missed".into(),
            "redials".into(),
        ],
        &widths,
    );

    let mut failures: Vec<String> = Vec::new();
    for (name, job) in scenarios {
        let (baseline, base_stats) = job(&cluster_with(TransportKind::Local), rows);
        for kind in kinds {
            for &seed in &seeds {
                let mut spec = FaultSpec::seeded(seed, &[kind]);
                spec.rate = 128; // every other send faulted: visibly lossy
                if kind == FaultKind::WorkerDeath {
                    spec.death_at = Some(seed % 6);
                    spec.victim = Some(seed as usize % WORKERS);
                }
                let c = cluster_with(faulty(spec, tcp));
                let schedule = c.transport().fault_summary().unwrap_or_default();
                let (got, stats) = job(&c, rows);
                let identical =
                    got == baseline && stats.bytes_shuffled == base_stats.bytes_shuffled;
                if !identical {
                    failures.push(format!("{name} under {kind:?}: {schedule}"));
                }
                row(
                    &[
                        name.into(),
                        format!("{kind:?}"),
                        seed.to_string(),
                        if identical { "yes" } else { "NO" }.into(),
                        stats.workers_recovered.to_string(),
                        stats.stages_replayed.to_string(),
                        stats.bytes_retransmitted.to_string(),
                        stats.heartbeats_missed.to_string(),
                        stats.reconnects.to_string(),
                    ],
                    &widths,
                );
            }
        }
    }

    // The memory-pressure leg: same stage shapes, fault-free wire, but
    // every worker pool's budget under seeded reservation-denial
    // injection — the operators' spill paths are the thing under chaos
    // here, and the gate is the same: byte-identical output, plus zero
    // spill files left behind.
    println!("\nmemory-pressure chaos (seeded reservation denials, fault-free wire):");
    let pwidths = [14usize, 6, 10, 10, 10, 7, 8];
    row(
        &[
            "stage".into(),
            "seed".into(),
            "identical".into(),
            "jp_spill".into(),
            "ag_spill".into(),
            "waves".into(),
            "leaked".into(),
        ],
        &pwidths,
    );
    let mut total_spilled = 0u64;
    for (name, job) in scenarios {
        let (baseline, _) = job(&cluster_with(TransportKind::Local), rows);
        for &seed in &seeds {
            let c = cluster_pressured(seed);
            let (got, stats) = job(&c, rows);
            let leaked: usize = c
                .workers
                .iter()
                .map(|w| w.storage.pool().leaked_spill_files())
                .sum();
            let spilled = stats.exec.join_partitions_spilled + stats.exec.agg_pages_spilled;
            total_spilled += spilled;
            let identical = got == baseline && leaked == 0;
            if !identical {
                failures.push(format!("{name} under MemoryPressure seed={seed}"));
            }
            row(
                &[
                    name.into(),
                    seed.to_string(),
                    if identical { "yes" } else { "NO" }.into(),
                    stats.exec.join_partitions_spilled.to_string(),
                    stats.exec.agg_pages_spilled.to_string(),
                    stats.exec.spill_waves.to_string(),
                    leaked.to_string(),
                ],
                &pwidths,
            );
        }
    }
    if total_spilled == 0 {
        failures
            .push("memory-pressure leg never spilled — injection not reaching operators".into());
    }

    if failures.is_empty() {
        println!("\nall cells byte-identical to the fault-free run");
    } else {
        println!(
            "\n{} cell(s) diverged — schedules for reproduction:",
            failures.len()
        );
        for f in &failures {
            println!("  {f}");
        }
        std::process::exit(1);
    }
}
