//! # pc-bench — the experiment harness
//!
//! One function per table and figure of the paper's evaluation (§8). The
//! `repro` binary dispatches on the experiment name; `cargo bench` runs the
//! Criterion micro-benches. Absolute numbers are laptop-scale (see
//! EXPERIMENTS.md for the size mapping); the *shape* of each comparison is
//! what reproduces the paper.

pub mod faults;
pub mod figures;
pub mod lint;
pub mod outofcore;
pub mod pipeline;
pub mod tables;
pub mod util;
pub mod verify;
