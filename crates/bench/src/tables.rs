//! Table generators (Tables 1–8 of §8).

use crate::util::{fmt_dur, row, time_once};
use lillinalg::{kernels, DenseMatrix, DistMatrix, LilLinAlg};
use pc_baseline::{Rdd, SparkConfig, SparkLike, StorageLevel};
use pc_core::prelude::*;
use pc_ml::gmm::{BaselineGmm, PcGmm};
use pc_ml::kmeans::{synthetic_points, BaselineKMeans, PcKMeans};
use pc_ml::lda::{synthetic_corpus, BaselineLda, LdaTuning, PcLda};
use pc_tpch::gen::{generate, unique_parts, TpchConfig};
use pc_tpch::{baseline_impl, pc_impl};
use rand::{RngExt, SeedableRng};
use std::time::Duration;

fn bench_client() -> PcClient {
    PcClient::connect(ClusterConfig {
        workers: 2,
        exec: ExecConfig {
            batch_size: 1024,
            page_size: 1 << 20,
            agg_partitions: 4,
            join_partitions: 8,
            ..ExecConfig::default()
        },
        broadcast_threshold: 64 << 20,
        ..ClusterConfig::default()
    })
    .expect("cluster boot")
}

fn spark(storage: StorageLevel) -> SparkLike {
    SparkLike::new(SparkConfig {
        partitions: 4,
        storage,
        ..Default::default()
    })
}

/// Table 1: the baseline configurations each experiment runs with (the
/// paper's workload-specific Spark configurations).
pub fn table1() {
    println!("Table 1: workload-specific baseline configurations");
    let w = [14usize, 12, 14, 14, 14];
    row(
        &[
            "workload".into(),
            "partitions".into(),
            "storage".into(),
            "join hint".into(),
            "persist".into(),
        ],
        &w,
    );
    for (name, parts, storage, hint, persist) in [
        ("lilLinAlg", 4, "serialized", "auto", "no"),
        ("TPC-H", 4, "serialized/RAM", "-", "no"),
        ("LDA", 4, "serialized", "ladder", "ladder"),
        ("GMM", 4, "serialized", "-", "no"),
        ("k-means", 4, "serialized", "-", "no"),
    ] {
        row(
            &[
                name.into(),
                parts.to_string(),
                storage.into(),
                hint.into(),
                persist.into(),
            ],
            &w,
        );
    }
}

fn rand_dense(r: usize, c: usize, seed: u64) -> DenseMatrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    DenseMatrix {
        rows: r,
        cols: c,
        data: (0..r * c).map(|_| rng.random::<f64>() - 0.5).collect(),
    }
}

/// Gram matrix on the row-RDD baseline (mllib-like): per-partition partial
/// dᵀd sums, then a driver reduce.
fn baseline_gram(eng: &SparkLike, rows: &Rdd<Vec<f64>>, d: usize) -> Vec<f64> {
    let partials = rows.map_partitions(move |part| {
        let mut acc = vec![0.0; d * d];
        for r in &part {
            for i in 0..d {
                let ri = r[i];
                if ri == 0.0 {
                    continue;
                }
                for j in 0..d {
                    acc[i * d + j] += ri * r[j];
                }
            }
        }
        vec![acc]
    });
    let _ = eng;
    partials
        .reduce(|mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        })
        .unwrap_or_else(|| vec![0.0; d * d])
}

/// Table 2: distributed linear algebra (Gram, least squares, nearest
/// neighbor) across dimensionalities, on four systems:
/// PC(lilLinAlg), a row-RDD baseline ("mllib"), a single-machine dense
/// solver ("SystemML local mode"), and a chunked+codec engine ("SciDB").
pub fn table2(quick: bool) {
    println!("Table 2: linear algebra benchmark (lower is better)");
    let dims: &[(usize, usize)] = if quick {
        &[(10, 4000), (100, 2000)]
    } else {
        &[(10, 20000), (100, 8000), (1000, 2000)]
    };
    let w = [10usize, 6, 14, 14, 16, 14];
    row(
        &[
            "task".into(),
            "dim".into(),
            "PC(lilLinAlg)".into(),
            "row-RDD".into(),
            "local(SystemML)".into(),
            "chunk(SciDB)".into(),
        ],
        &w,
    );
    for &(d, n) in dims {
        let x = rand_dense(n, d, 7);
        let beta_true =
            DenseMatrix::from_rows((0..d).map(|i| vec![(i % 5) as f64 - 2.0]).collect());
        let y = x.matmul(&beta_true);
        let client = bench_client();
        let block_rows = (n / 8).max(64);
        let dx = DistMatrix::from_dense(&client, "la", "x", &x, block_rows, d).unwrap();
        let dy = DistMatrix::from_dense(&client, "la", "y", &y, block_rows, 1).unwrap();

        let eng = spark(StorageLevel::Serialized);
        let rows_rdd: Rdd<Vec<f64>> = eng.parallelize(
            (0..n)
                .map(|i| x.data[i * d..(i + 1) * d].to_vec())
                .collect(),
        );
        let xy: Rdd<(Vec<f64>, f64)> = eng.parallelize(
            (0..n)
                .map(|i| (x.data[i * d..(i + 1) * d].to_vec(), y.data[i]))
                .collect(),
        );
        // Chunked ("SciDB"): blocks of 512 rows, codec at every boundary.
        let chunked: Rdd<Vec<f64>> = eng.parallelize(
            x.data
                .chunks(512 * d)
                .map(|c| c.to_vec())
                .collect::<Vec<Vec<f64>>>(),
        );

        // ---- Gram matrix ----
        let (_, t_pc) = time_once(|| dx.transpose_multiply(&dx).unwrap());
        let (_, t_rdd) = time_once(|| baseline_gram(&eng, &rows_rdd, d));
        let (_, t_local) = time_once(|| {
            let mut acc = vec![0.0; d * d];
            kernels::matmul_at_b(&x.data, &x.data, &mut acc, n, d, d);
            acc
        });
        let (_, t_chunk) = time_once(|| {
            chunked
                .map(move |block| {
                    let rows = block.len() / d;
                    let mut acc = vec![0.0; d * d];
                    kernels::matmul_at_b(&block, &block, &mut acc, rows, d, d);
                    acc
                })
                .reduce(|mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                })
        });
        row(
            &[
                "gram".into(),
                d.to_string(),
                fmt_dur(t_pc),
                fmt_dur(t_rdd),
                fmt_dur(t_local),
                fmt_dur(t_chunk),
            ],
            &w,
        );

        // ---- least squares ----
        let mut la = LilLinAlg::new(client.clone());
        la.load("X", dx.clone());
        la.load("y", dy.clone());
        let (_, t_pc) = time_once(|| la.run("beta = (X '* X)^-1 %*% (X '* y)").unwrap());
        let (_, t_rdd) = time_once(|| {
            let g = baseline_gram(&eng, &rows_rdd, d);
            let xty = xy
                .map_partitions(move |part| {
                    let mut acc = vec![0.0; d];
                    for (r, yv) in &part {
                        for (a, x) in acc.iter_mut().zip(r) {
                            *a += x * yv;
                        }
                    }
                    vec![acc]
                })
                .reduce(|mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                })
                .unwrap();
            let gram = DenseMatrix {
                rows: d,
                cols: d,
                data: g,
            };
            let inv = gram.inverse().unwrap();
            inv.matmul(&DenseMatrix {
                rows: d,
                cols: 1,
                data: xty,
            })
        });
        let (_, t_local) = time_once(|| {
            let mut g = vec![0.0; d * d];
            kernels::matmul_at_b(&x.data, &x.data, &mut g, n, d, d);
            let mut xty = vec![0.0; d];
            kernels::matmul_at_b(&x.data, &y.data, &mut xty, n, d, 1);
            DenseMatrix {
                rows: d,
                cols: d,
                data: g,
            }
            .inverse()
            .unwrap()
            .matmul(&DenseMatrix {
                rows: d,
                cols: 1,
                data: xty,
            })
        });
        row(
            &[
                "linreg".into(),
                d.to_string(),
                fmt_dur(t_pc),
                fmt_dur(t_rdd),
                fmt_dur(t_local),
                "-".into(),
            ],
            &w,
        );

        // ---- nearest neighbor (Euclidean metric: A = I) ----
        let query: Vec<f64> = x.data[0..d].to_vec();
        let q1 = query.clone();
        let (_, t_pc) = time_once(|| {
            // Distributed scan over MatrixBlocks: min distance per chunk,
            // then a driver min — the scan shape lilLinAlg compiles to.
            let blocks = client
                .iterate_set::<lillinalg::MatrixBlock>("la", "x")
                .unwrap();
            let mut best = (f64::INFINITY, 0i64);
            for b in blocks {
                let h = b.v().height() as usize;
                let wd = b.v().width() as usize;
                let vals = b.v().values();
                let s = vals.as_slice();
                for r in 0..h {
                    let dist: f64 = s[r * wd..(r + 1) * wd]
                        .iter()
                        .zip(&q1)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    if dist < best.0 {
                        best = (dist, b.v().chunk_row() * block_rows as i64 + r as i64);
                    }
                }
            }
            best
        });
        let q2 = query.clone();
        let (_, t_rdd) = time_once(|| {
            rows_rdd
                .map_partitions(move |part| {
                    let mut best = f64::INFINITY;
                    for r in &part {
                        let dist: f64 = r.iter().zip(&q2).map(|(a, b)| (a - b) * (a - b)).sum();
                        best = best.min(dist);
                    }
                    vec![best]
                })
                .reduce(f64::min)
        });
        let q3 = query.clone();
        let (_, t_local) = time_once(|| {
            let mut best = f64::INFINITY;
            for i in 0..n {
                let dist: f64 = x.data[i * d..(i + 1) * d]
                    .iter()
                    .zip(&q3)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                best = best.min(dist);
            }
            best
        });
        row(
            &[
                "nn".into(),
                d.to_string(),
                fmt_dur(t_pc),
                fmt_dur(t_rdd),
                fmt_dur(t_local),
                "-".into(),
            ],
            &w,
        );
    }
}

/// Table 3: denormalized TPC-H, PC hot storage vs baseline hot-serialized
/// vs baseline in-RAM deserialized, across scale points.
pub fn table3(quick: bool) {
    println!("Table 3: PC vs baseline for large-scale OO computation");
    let sizes: &[usize] = if quick {
        &[500, 1000]
    } else {
        &[1000, 2000, 4000, 8000]
    };
    let w = [10usize, 8, 16, 20, 22];
    row(
        &[
            "query".into(),
            "custs".into(),
            "PC hot storage".into(),
            "base: hot serialized".into(),
            "base: in-RAM deserialized".into(),
        ],
        &w,
    );
    for &n in sizes {
        let data = generate(&TpchConfig {
            customers: n,
            ..Default::default()
        });
        let client = bench_client();
        pc_impl::load(&client, "tpch", "customers", &data).unwrap();
        let eng_ser = spark(StorageLevel::Serialized);
        let rdd_ser = eng_ser.parallelize(baseline_impl::to_rows(&data));
        let eng_ram = spark(StorageLevel::Deserialized);
        let rdd_ram = eng_ram.parallelize(baseline_impl::to_rows(&data)).cache();

        let (_, t_pc) =
            time_once(|| pc_impl::customers_per_supplier(&client, "tpch", "customers").unwrap());
        let (_, t_ser) = time_once(|| baseline_impl::customers_per_supplier(&rdd_ser));
        let (_, t_ram) = time_once(|| baseline_impl::customers_per_supplier(&rdd_ram));
        row(
            &[
                "cps".into(),
                n.to_string(),
                fmt_dur(t_pc),
                fmt_dur(t_ser),
                fmt_dur(t_ram),
            ],
            &w,
        );

        let query = unique_parts(&data[0]);
        let k = (n / 50).max(4);
        let (_, t_pc) =
            time_once(|| pc_impl::top_k_jaccard(&client, "tpch", "customers", &query, k).unwrap());
        let (_, t_ser) = time_once(|| baseline_impl::top_k_jaccard(&rdd_ser, &query, k));
        let (_, t_ram) = time_once(|| baseline_impl::top_k_jaccard(&rdd_ram, &query, k));
        row(
            &[
                "topk".into(),
                n.to_string(),
                fmt_dur(t_pc),
                fmt_dur(t_ser),
                fmt_dur(t_ram),
            ],
            &w,
        );
    }
}

/// Table 4: LDA per-iteration times, PC vs the baseline tuning ladder.
pub fn table4(quick: bool) {
    println!("Table 4: PC vs baseline for LDA (per-iteration average)");
    let (docs, vocab, topics, wpd, iters) = if quick {
        (60, 120, 5, 40, 2)
    } else {
        (400, 2000, 20, 120, 3)
    };
    let triples = synthetic_corpus(docs, vocab, 4, wpd, 11);
    let w = [26usize, 14];
    row(&["system".into(), "per-iteration".into()], &w);

    let client = bench_client();
    let mut pc = PcLda::init(&client, "lda", &triples, docs, vocab, topics, 0.1, 0.1, 5).unwrap();
    pc.iterate().unwrap(); // warm-up / init
    let (_, t) = time_once(|| {
        for _ in 0..iters {
            pc.iterate().unwrap();
        }
    });
    row(&["PlinyCompute".into(), fmt_dur(t / iters as u32)], &w);

    for (name, tuning) in [
        ("base 1: vanilla", LdaTuning::Vanilla),
        ("base 2: +join hint", LdaTuning::JoinHint),
        ("base 3: +forced persist", LdaTuning::ForcedPersist),
        ("base 4: +hand-coded mult", LdaTuning::HandCodedSampler),
    ] {
        let eng = spark(StorageLevel::Serialized);
        let mut lda = BaselineLda::init(
            &eng,
            tuning,
            triples.clone(),
            docs,
            vocab,
            topics,
            0.1,
            0.1,
            5,
        );
        lda.iterate();
        let (_, t) = time_once(|| {
            for _ in 0..iters {
                lda.iterate();
            }
        });
        row(&[name.into(), fmt_dur(t / iters as u32)], &w);
    }
}

/// Table 5: GMM per-iteration times across (dim, n) cases.
pub fn table5(quick: bool) {
    println!("Table 5: PC vs baseline for GMM (per-iteration average)");
    let cases: &[(usize, usize)] = if quick {
        &[(20, 2000), (50, 1000)]
    } else {
        &[(100, 20000), (300, 4000), (500, 2000)]
    };
    let w = [8usize, 10, 14, 14];
    row(
        &[
            "dim".into(),
            "points".into(),
            "PC".into(),
            "baseline".into(),
        ],
        &w,
    );
    for &(d, n) in cases {
        let pts = synthetic_points(n, d, 10, 3);
        let client = bench_client();
        let mut pc = PcGmm::init(&client, "ml", "gmmpts", &pts, 10).unwrap();
        let eng = spark(StorageLevel::Serialized);
        let mut base = BaselineGmm::init(&eng, pts, 10);
        pc.iterate().unwrap();
        base.iterate();
        let iters = 2u32;
        let (_, t_pc) = time_once(|| {
            for _ in 0..iters {
                pc.iterate().unwrap();
            }
        });
        let (_, t_b) = time_once(|| {
            for _ in 0..iters {
                base.iterate();
            }
        });
        row(
            &[
                d.to_string(),
                n.to_string(),
                fmt_dur(t_pc / iters),
                fmt_dur(t_b / iters),
            ],
            &w,
        );
    }
}

/// Table 6: k-means initialization and per-iteration latency; the Dataset
/// API pays an RDD conversion before iterating.
pub fn table6(quick: bool) {
    println!("Table 6: PC vs baseline for k-means");
    let cases: &[(usize, usize)] = if quick {
        &[(10, 20000), (100, 4000)]
    } else {
        &[(10, 200000), (100, 40000), (1000, 4000)]
    };
    let w = [8usize, 10, 10, 16, 16, 16];
    row(
        &[
            "dim".into(),
            "points".into(),
            "phase".into(),
            "PC".into(),
            "base RDD".into(),
            "base Dataset".into(),
        ],
        &w,
    );
    for &(d, n) in cases {
        let pts = synthetic_points(n, d, 10, 17);
        // init
        let client = bench_client();
        let (mut pc, t_pc_init) = {
            let p = pts.clone();
            let (m, t) = time_once(|| PcKMeans::init(&client, "ml", "kmpts", &p, 10).unwrap());
            (m, t)
        };
        let eng = spark(StorageLevel::Serialized);
        let (mut rdd_base, t_rdd_init) = {
            let p = pts.clone();
            let (m, t) = time_once(|| BaselineKMeans::init(&eng, p, 10));
            (m, t)
        };
        let eng2 = spark(StorageLevel::Serialized);
        let (mut ds_base, t_ds_init) = {
            let p = pts.clone();
            let (m, t) = time_once(|| {
                // Dataset path: ingest relationally, convert to RDD to iterate.
                let ds = pc_baseline::Dataset::from_rows(&eng2, p);
                let rdd = ds.to_rdd();
                BaselineKMeans {
                    points: rdd,
                    centroids: Vec::new(),
                }
            });
            (m, t)
        };
        ds_base.centroids = pts.iter().take(10).cloned().collect();
        row(
            &[
                d.to_string(),
                n.to_string(),
                "init".into(),
                fmt_dur(t_pc_init),
                fmt_dur(t_rdd_init),
                fmt_dur(t_ds_init),
            ],
            &w,
        );
        let iters = 2u32;
        let (_, t_pc) = time_once(|| {
            for _ in 0..iters {
                pc.iterate().unwrap();
            }
        });
        let (_, t_rdd) = time_once(|| {
            for _ in 0..iters {
                rdd_base.iterate();
            }
        });
        let (_, t_ds) = time_once(|| {
            for _ in 0..iters {
                ds_base.iterate();
            }
        });
        row(
            &[
                d.to_string(),
                n.to_string(),
                "iter".into(),
                fmt_dur(t_pc / iters),
                fmt_dur(t_rdd / iters),
                fmt_dur(t_ds / iters),
            ],
            &w,
        );
    }
}

/// Table 7: source lines of code per workload implementation.
pub fn table7() {
    println!("Table 7: lines of source code per workload (this repository)");
    let w = [28usize, 10, 30];
    row(&["application".into(), "SLOC".into(), "files".into()], &w);
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .to_path_buf();
    let count = |files: &[&str]| -> usize {
        files
            .iter()
            .map(|f| {
                std::fs::read_to_string(root.join(f))
                    .map(|s| s.lines().filter(|l| !l.trim().is_empty()).count())
                    .unwrap_or(0)
            })
            .sum()
    };
    for (name, files) in [
        (
            "lilLinAlg (on PC)",
            vec![
                "lillinalg/src/matrix.rs",
                "lillinalg/src/dsl.rs",
                "lillinalg/src/kernels.rs",
            ],
        ),
        ("TPC-H both queries (PC)", vec!["tpch/src/pc_impl.rs"]),
        (
            "TPC-H both queries (base)",
            vec!["tpch/src/baseline_impl.rs"],
        ),
        ("LDA (PC + base)", vec!["ml/src/lda.rs"]),
        ("GMM (PC + base)", vec!["ml/src/gmm.rs"]),
        ("k-means (PC + base)", vec!["ml/src/kmeans.rs"]),
    ] {
        let n = count(&files);
        row(&[name.into(), n.to_string(), files.join(", ")], &w);
    }
}

/// Table 8: single-thread matrix multiplication, naive ("GSL") vs blocked
/// ("Eigen/breeze") kernels.
pub fn table8(quick: bool) {
    println!("Table 8: single-thread matmul kernels");
    let sizes: &[usize] = if quick {
        &[128, 256]
    } else {
        &[256, 512, 1024]
    };
    let w = [12usize, 16, 18];
    row(
        &[
            "size".into(),
            "naive (GSL)".into(),
            "blocked (Eigen)".into(),
        ],
        &w,
    );
    for &n in sizes {
        let a = rand_dense(n, n, 1);
        let b = rand_dense(n, n, 2);
        let mut c = vec![0.0; n * n];
        let (_, t_naive) = time_once(|| kernels::matmul_naive(&a.data, &b.data, &mut c, n, n, n));
        c.fill(0.0);
        let (_, t_blocked) =
            time_once(|| kernels::matmul_blocked(&a.data, &b.data, &mut c, n, n, n));
        row(
            &[format!("{n}x{n}"), fmt_dur(t_naive), fmt_dur(t_blocked)],
            &w,
        );
    }
}

/// Runs every table (quick mode keeps the whole sweep under a few minutes).
pub fn all(quick: bool) -> Duration {
    let (_, d) = time_once(|| {
        table1();
        println!();
        table2(quick);
        println!();
        table3(quick);
        println!();
        table4(quick);
        println!();
        table5(quick);
        println!();
        table6(quick);
        println!();
        table7();
        println!();
        table8(quick);
    });
    d
}
