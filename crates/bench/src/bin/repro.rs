//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all [--quick]       run everything
//! repro table2 [--quick]    one table (table1..table8)
//! repro figure1             one figure (figure1..figure5)
//! repro pipeline [--quick] [--threads N]
//!                           the execution-engine benchmark: macro
//!                           workloads swept over morsel thread counts
//!                           {1, 2, 4} ∪ {N} (writes BENCH_pipeline.json)
//! repro faults [--quick] [--tcp] [--seed N]...
//!                           the chaos matrix: fault injection, worker
//!                           recovery, byte-identical replay; --tcp runs
//!                           it over real loopback sockets with heartbeat
//!                           liveness
//! repro outofcore [--quick] [--threads N] [--seed N]...
//!                           out-of-core execution: join+aggregation at a
//!                           pool budget ~10x smaller than the dataset,
//!                           gated byte-identical to the in-memory run,
//!                           plus a seeded memory-pressure sweep
//! repro verify [--seed N]...
//!                           the TCAP static verifier: workload plans
//!                           verify clean, one rendered rejection, and the
//!                           mutation gauntlet (exits non-zero below the
//!                           >=95% expected-code rejection gate)
//! repro lint                panic-hygiene lint: fails on unwrap()/expect()
//!                           in cluster/exec non-test code not recorded in
//!                           LINT_ALLOW.txt
//! ```

use pc_bench::{faults, figures, lint, outofcore, pipeline, tables, verify};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let tcp = args.iter().any(|a| a == "--tcp");
    let seeds: Vec<u64> = args
        .iter()
        .zip(args.iter().skip(1))
        .filter(|(a, _)| *a == "--seed")
        .map(|(_, v)| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--seed wants an unsigned integer, got {v}");
                std::process::exit(2);
            })
        })
        .collect();
    let threads: Option<usize> = args
        .iter()
        .zip(args.iter().skip(1))
        .find(|(a, _)| *a == "--threads")
        .map(|(_, v)| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--threads wants a positive integer, got {v}");
                std::process::exit(2);
            })
        });
    let what = args.first().map(|s| s.as_str()).unwrap_or("all");
    match what {
        "all" => {
            let d = tables::all(quick);
            println!();
            figures::figure1();
            println!();
            figures::figure2();
            println!();
            figures::figure3();
            println!();
            figures::figure4();
            println!();
            figures::figure5();
            eprintln!("\n(total table time: {:?})", d);
        }
        "table1" => tables::table1(),
        "table2" => tables::table2(quick),
        "table3" => tables::table3(quick),
        "table4" => tables::table4(quick),
        "table5" => tables::table5(quick),
        "table6" => tables::table6(quick),
        "table7" => tables::table7(),
        "table8" => tables::table8(quick),
        "figure1" => figures::figure1(),
        "figure2" => figures::figure2(),
        "figure3" => figures::figure3(),
        "figure4" => figures::figure4(),
        "figure5" => figures::figure5(),
        "pipeline" => pipeline::pipeline(quick, threads),
        "faults" => faults::faults(quick, &seeds, tcp),
        "outofcore" => outofcore::outofcore(quick, threads, &seeds),
        "verify" => {
            if !verify::verify_demo(&seeds) {
                std::process::exit(1);
            }
        }
        "lint" => {
            if !lint::lint() {
                std::process::exit(1);
            }
        }
        other => {
            eprintln!(
                "unknown experiment {other}; use all|table1..table8|figure1..figure5|pipeline|faults|outofcore|verify|lint"
            );
            std::process::exit(2);
        }
    }
}
