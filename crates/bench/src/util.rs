//! Timing and formatting helpers.

use std::time::{Duration, Instant};

/// Times one run of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// Formats a duration like the paper's MM:SS tables, with millisecond
/// precision for laptop-scale runs.
pub fn fmt_dur(d: Duration) -> String {
    let ms = d.as_millis();
    if ms >= 60_000 {
        format!("{:02}:{:02}", ms / 60_000, (ms % 60_000) / 1000)
    } else if ms >= 1000 {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{ms}ms")
    }
}

/// Prints a row of a fixed-width table.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}
