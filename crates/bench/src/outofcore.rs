//! `repro outofcore` — the out-of-core execution demonstration: a
//! join → aggregation pipeline forced through grace-style spilling by a
//! buffer-pool budget ~10× smaller than the dataset, gated on producing
//! output **byte-identical** to the unbudgeted in-memory run.
//!
//! Three passes:
//!
//! 1. **baseline** — a 1 GiB pool (everything resident), establishing the
//!    reference bytes and the reference wall time;
//! 2. **budgeted** — the same query at `pool = dataset / 10`, which must
//!    spill (join partitions sealed + spilled at build, aggregation map
//!    pages spilled at flush, second-pass waves over reloaded chunks) and
//!    still reproduce the baseline bytes exactly;
//! 3. **pressure sweep** — the budgeted pool with seeded memory-pressure
//!    injection armed (reservations denied as a pure function of
//!    seed × reservation index), so spill decisions fire at randomized
//!    points; every seed must again be byte-identical.
//!
//! Exit is non-zero if any pass fails to complete, differs from the
//! baseline bytes, the budgeted run never actually spilled, or any worker
//! pool leaks a spill file after its run. Run from the repo root with:
//!
//! ```text
//! cargo run --release -p pc-bench --bin repro -- outofcore [--quick] [--seed N]
//! ```

use crate::pipeline::{BenchRec, SumAgg};
use crate::util::{fmt_dur, row, time_once};
use pc_core::prelude::*;
use pc_object::PressureSpec;
use std::time::Duration;

/// One measured out-of-core pass and everything the gates need from it.
struct OocRun {
    bytes: Vec<Vec<u8>>,
    dur: Duration,
    join_partitions_spilled: u64,
    join_bytes_spilled: u64,
    agg_pages_spilled: u64,
    agg_bytes_spilled: u64,
    spill_waves: u64,
    pool_evictions: u64,
    pool_spills: u64,
    pool_bytes_spilled: u64,
    leaked_spill_files: usize,
    reserved_after: usize,
}

impl OocRun {
    fn operator_spills(&self) -> u64 {
        self.join_partitions_spilled + self.agg_pages_spilled
    }
}

fn client_with(threads: usize, pool_capacity: usize, pressure: Option<PressureSpec>) -> PcClient {
    PcClient::connect(ClusterConfig {
        workers: 1,
        exec: ExecConfig {
            batch_size: 256,
            // Small pages so the dataset spans many of them: spilling moves
            // whole page chains, and the second pass chunks by page.
            page_size: 1 << 14,
            agg_partitions: 4,
            join_partitions: 8,
            threads,
            ..ExecConfig::default()
        },
        broadcast_threshold: 64 << 20,
        pool_capacity,
        pressure,
        ..ClusterConfig::default()
    })
    .expect("cluster boot")
}

fn load(c: &PcClient, set: &str, n: usize, key_mod: i64) {
    c.create_or_clear_set("bench", set).unwrap();
    c.store("bench", set, n, |i| {
        let r = make_object::<BenchRec>()?;
        r.v().set_key((i as i64 * 997) % key_mod)?;
        r.v().set_val(i as i64)?;
        Ok(r.erase())
    })
    .unwrap();
}

fn key_of(r: Var<BenchRec>) -> Lambda<i64> {
    r.member("key", |r| r.v().key())
}

/// The workload: a high-cardinality build side joined against a one-row-
/// per-key dim side, aggregated by key. The build table *and* the
/// aggregation state are both ~dataset-sized, so a pool 10× smaller forces
/// both operators out of core. Ending in an aggregation matters: the
/// second-pass wave schedule changes join output *order* with the budget,
/// and the canonical (hash-sorted) aggregation finalize is what makes the
/// final bytes comparable across budgets at all.
fn run_ooc(
    threads: usize,
    n: usize,
    keys: i64,
    pool_capacity: usize,
    pressure: Option<PressureSpec>,
) -> Result<OocRun, String> {
    let c = client_with(threads, pool_capacity, pressure);
    load(&c, "ooc_build", n, keys);
    load(&c, "ooc_dim", keys as usize, keys);
    c.create_or_clear_set("bench", "ooc_out").unwrap();

    let build = c.set::<BenchRec>("bench", "ooc_build");
    let dim = c.set::<BenchRec>("bench", "ooc_dim");
    let sink = build
        .join(
            &dim,
            |a, b| key_of(a).eq(key_of(b)),
            "oocPair",
            |a, b| {
                let p = make_object::<BenchRec>()?;
                p.v().set_key(a.v().key())?;
                p.v().set_val(a.v().val() + b.v().val())?;
                Ok(p)
            },
        )
        .aggregate(SumAgg)
        .write_to("bench", "ooc_out");

    let (stats, dur) = time_once(|| sink.run(&c));
    let stats = stats.map_err(|e| format!("query failed under budget {pool_capacity}: {e}"))?;
    let bytes = pc_cluster::testkit::set_bytes_sorted(c.cluster(), "bench", "ooc_out")
        .map_err(|e| format!("reading ooc_out: {e}"))?;
    let (mut leaked, mut reserved) = (0usize, 0usize);
    for w in &c.cluster().workers {
        let pool = w.storage.pool();
        leaked += pool.leaked_spill_files();
        reserved += pool.budget().reserved();
    }
    Ok(OocRun {
        bytes,
        dur,
        join_partitions_spilled: stats.exec.join_partitions_spilled,
        join_bytes_spilled: stats.exec.join_bytes_spilled,
        agg_pages_spilled: stats.exec.agg_pages_spilled,
        agg_bytes_spilled: stats.exec.agg_bytes_spilled,
        spill_waves: stats.exec.spill_waves,
        pool_evictions: stats.exec.pool_evictions,
        pool_spills: stats.exec.pool_spills,
        pool_bytes_spilled: stats.exec.pool_bytes_spilled,
        leaked_spill_files: leaked,
        reserved_after: reserved,
    })
}

/// Bytes the two input sets occupy, measured from a load at a roomy pool
/// (what "the dataset" means for the 10× budget ratio).
fn dataset_bytes(threads: usize, n: usize, keys: i64) -> u64 {
    let c = client_with(threads, 1 << 30, None);
    load(&c, "ooc_build", n, keys);
    load(&c, "ooc_dim", keys as usize, keys);
    ["ooc_build", "ooc_dim"]
        .iter()
        .flat_map(|set| c.cluster().scan_set("bench", set).unwrap())
        .map(|p| p.used() as u64)
        .sum()
}

fn print_run(label: &str, r: &OocRun, widths: &[usize]) {
    row(
        &[
            label.to_string(),
            fmt_dur(r.dur),
            r.join_partitions_spilled.to_string(),
            r.agg_pages_spilled.to_string(),
            r.spill_waves.to_string(),
            format!(
                "{:.1}",
                (r.join_bytes_spilled + r.agg_bytes_spilled) as f64 / 1e6
            ),
            r.pool_evictions.to_string(),
            r.leaked_spill_files.to_string(),
        ],
        widths,
    );
}

fn fail(failures: &mut Vec<String>, msg: String) {
    eprintln!("FAIL: {msg}");
    failures.push(msg);
}

pub fn outofcore(quick: bool, threads: Option<usize>, extra_seeds: &[u64]) {
    let n = if quick { 24_000 } else { 120_000 };
    let keys = (n / 2) as i64;
    let threads = threads.unwrap_or_else(pc_exec::default_threads).max(1);
    let mut seeds: Vec<u64> = if quick { vec![1, 2] } else { vec![1, 2, 3, 4] };
    seeds.extend_from_slice(extra_seeds);

    let data = dataset_bytes(threads, n, keys);
    // The tentpole ratio: the pool gets a tenth of the data. Floored at a
    // handful of pages so the pool can still turn over at tiny --quick
    // sizes without thrashing to uselessness.
    let budget = ((data / 10) as usize).max(8 << 14);
    println!(
        "out-of-core: join+aggregate over {n} rows x {keys} keys \
         ({:.1} MB data) at a {:.1} MB pool budget ({}x smaller), {threads} thread(s)",
        data as f64 / 1e6,
        budget as f64 / 1e6,
        data / budget as u64
    );
    println!("(every budgeted run must be byte-identical to the in-memory run)\n");

    let widths = [18usize, 9, 10, 9, 7, 10, 10, 8];
    row(
        &[
            "pass".into(),
            "time".into(),
            "jp_spill".into(),
            "ag_spill".into(),
            "waves".into(),
            "MB spill".into(),
            "evict".into(),
            "leaked".into(),
        ],
        &widths,
    );

    let mut failures: Vec<String> = Vec::new();

    let baseline = match run_ooc(threads, n, keys, 1 << 30, None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: baseline (in-memory) run: {e}");
            std::process::exit(1);
        }
    };
    print_run("in-memory", &baseline, &widths);
    if baseline.bytes.is_empty() {
        fail(
            &mut failures,
            "baseline run produced no output pages".into(),
        );
    }

    let budgeted = match run_ooc(threads, n, keys, budget, None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: budgeted run: {e}");
            std::process::exit(1);
        }
    };
    print_run("budgeted", &budgeted, &widths);
    if budgeted.bytes != baseline.bytes {
        fail(
            &mut failures,
            "budgeted run output differs from the in-memory run".into(),
        );
    }
    if budgeted.operator_spills() == 0 {
        fail(
            &mut failures,
            format!(
                "budgeted run never spilled (pool {budget} bytes vs {data} data) — \
                 the out-of-core path was not exercised"
            ),
        );
    }
    if budgeted.leaked_spill_files != 0 {
        fail(
            &mut failures,
            format!(
                "{} spill file(s) leaked after budgeted run",
                budgeted.leaked_spill_files
            ),
        );
    }
    if budgeted.reserved_after != 0 {
        fail(
            &mut failures,
            format!(
                "{} budget bytes still reserved after budgeted run",
                budgeted.reserved_after
            ),
        );
    }

    // The chaos leg: same budget, with seeded denials layered on top.
    let mut pressured: Vec<(u64, OocRun)> = Vec::new();
    for &seed in &seeds {
        match run_ooc(threads, n, keys, budget, Some(PressureSpec::seeded(seed))) {
            Ok(r) => {
                print_run(&format!("pressure seed={seed}"), &r, &widths);
                if r.bytes != baseline.bytes {
                    fail(
                        &mut failures,
                        format!("pressure seed {seed}: output differs from in-memory run"),
                    );
                }
                if r.leaked_spill_files != 0 {
                    fail(
                        &mut failures,
                        format!(
                            "pressure seed {seed}: {} spill file(s) leaked",
                            r.leaked_spill_files
                        ),
                    );
                }
                pressured.push((seed, r));
            }
            Err(e) => fail(&mut failures, format!("pressure seed {seed}: {e}")),
        }
    }

    let slowdown = budgeted.dur.as_secs_f64() / baseline.dur.as_secs_f64().max(1e-9);
    println!(
        "\nbudgeted slowdown: {slowdown:.2}x over in-memory \
         ({} join partition(s) + {} agg page(s) spilled, {} second-pass wave(s))",
        budgeted.join_partitions_spilled, budgeted.agg_pages_spilled, budgeted.spill_waves
    );

    write_json(
        quick, n, keys, threads, data, budget, &baseline, &budgeted, &pressured, slowdown,
    );
    println!("spliced \"outofcore\" into BENCH_pipeline.json");

    if !failures.is_empty() {
        eprintln!("\n{} out-of-core gate(s) failed", failures.len());
        std::process::exit(1);
    }
    println!(
        "\nall passes byte-identical to the in-memory run; no spill files leaked \
         ({} pressure seed(s))",
        seeds.len()
    );
}

fn run_json(r: &OocRun) -> String {
    format!(
        "{{\"secs\": {:.6}, \"join_partitions_spilled\": {}, \"join_bytes_spilled\": {}, \
         \"agg_pages_spilled\": {}, \"agg_bytes_spilled\": {}, \"spill_waves\": {}, \
         \"pool_evictions\": {}, \"pool_spills\": {}, \"pool_bytes_spilled\": {}, \
         \"leaked_spill_files\": {}}}",
        r.dur.as_secs_f64(),
        r.join_partitions_spilled,
        r.join_bytes_spilled,
        r.agg_pages_spilled,
        r.agg_bytes_spilled,
        r.spill_waves,
        r.pool_evictions,
        r.pool_spills,
        r.pool_bytes_spilled,
        r.leaked_spill_files,
    )
}

/// Splices the out-of-core results into `BENCH_pipeline.json` without
/// disturbing what `repro pipeline` wrote there. The entry is always the
/// last key, so a re-run replaces its own previous entry; if the file is
/// missing (outofcore run standalone), a minimal wrapper is written.
#[allow(clippy::too_many_arguments)]
fn write_json(
    quick: bool,
    n: usize,
    keys: i64,
    threads: usize,
    data: u64,
    budget: usize,
    baseline: &OocRun,
    budgeted: &OocRun,
    pressured: &[(u64, OocRun)],
    slowdown: f64,
) {
    let mode = if quick { "quick" } else { "full" };
    let mut entry = String::from("{\n");
    entry.push_str(&format!("    \"mode\": \"{mode}\",\n"));
    entry.push_str(&format!("    \"rows\": {n},\n"));
    entry.push_str(&format!("    \"keys\": {keys},\n"));
    entry.push_str(&format!("    \"threads\": {threads},\n"));
    entry.push_str(&format!("    \"dataset_bytes\": {data},\n"));
    entry.push_str(&format!("    \"pool_budget_bytes\": {budget},\n"));
    entry.push_str(&format!(
        "    \"data_over_budget\": {:.1},\n",
        data as f64 / budget as f64
    ));
    entry.push_str(&format!("    \"slowdown\": {slowdown:.3},\n"));
    entry.push_str(&format!("    \"in_memory\": {},\n", run_json(baseline)));
    entry.push_str(&format!("    \"budgeted\": {},\n", run_json(budgeted)));
    entry.push_str("    \"pressure\": {\n");
    for (i, (seed, r)) in pressured.iter().enumerate() {
        entry.push_str(&format!(
            "      \"{seed}\": {}{}\n",
            run_json(r),
            if i + 1 < pressured.len() { "," } else { "" }
        ));
    }
    entry.push_str("    }\n  }");

    const MARKER: &str = ",\n  \"outofcore\": ";
    let path = "BENCH_pipeline.json";
    let json = match std::fs::read_to_string(path) {
        Ok(base) if base.trim_end().ends_with('}') => {
            // Drop a previous outofcore entry (always last), then the
            // closing brace, then append the fresh entry.
            let head = match base.find(MARKER) {
                Some(i) => base[..i].to_string(),
                None => {
                    let t = base.trim_end();
                    t[..t.len() - 1].trim_end().to_string()
                }
            };
            format!("{head}{MARKER}{entry}\n}}\n")
        }
        _ => format!("{{\n  \"bench\": \"outofcore\"{MARKER}{entry}\n}}\n"),
    };
    std::fs::write(path, json).expect("write BENCH_pipeline.json");
}
