//! One-stop imports for PlinyCompute applications.

pub use crate::client::PcClient;
pub use pc_cluster::{ClusterConfig, ClusterStats, PcCluster};
pub use pc_exec::ExecConfig;
pub use pc_lambda::{
    compile, make_lambda, make_lambda2, make_lambda3, make_lambda_from_member,
    make_lambda_from_method, make_lambda_from_self, AggKey, AggregateSpec, ComputationGraph,
    Lambda, NodeId, SetWriter,
};
pub use pc_object::{
    make_object, make_object_allocator_block, make_object_with_policy, pc_flat, pc_object,
    AllocPolicy, AllocScope, AnyHandle, AnyObj, BlockRef, Handle, ObjectPolicy, PcError, PcMap,
    PcObjType, PcResult, PcString, PcValue, PcVec, SealedPage,
};
