//! One-stop imports for PlinyCompute applications.
//!
//! Queries are built through the typed fluent API — [`Dataset`], [`Job`],
//! [`Sink`], [`Var`] — which lowers internally to the lambda/TCAP stack.
//! The raw `ComputationGraph` layer is no longer part of the prelude; it
//! remains a stable *internal* surface inside `pc-lambda`.

pub use crate::client::PcClient;
pub use crate::dataset::{Dataset, Job, Sink, Var};
pub use pc_cluster::{ClusterConfig, ClusterStats, PcCluster};
pub use pc_exec::ExecConfig;
pub use pc_lambda::{AggKey, AggregateSpec, Lambda, SetWriter};
pub use pc_object::{
    make_object, make_object_allocator_block, make_object_with_policy, pc_flat, pc_object,
    AllocPolicy, AllocScope, AnyHandle, AnyObj, BlockRef, Handle, ObjectPolicy, PcError, PcMap,
    PcObjType, PcResult, PcString, PcValue, PcVec, SealedPage,
};
