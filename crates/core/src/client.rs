//! The `PcClient`.

use pc_cluster::{ClusterConfig, ClusterStats, PcCluster};
use pc_exec::ExecConfig;
use pc_lambda::{compile, ComputationGraph, SetWriter};
use pc_object::{AnyHandle, Handle, PcObjType, PcResult, PcVec};
use std::sync::Arc;

/// A client connected to a PlinyCompute cluster.
#[derive(Clone)]
pub struct PcClient {
    cluster: Arc<PcCluster>,
    page_size: usize,
}

impl PcClient {
    /// Connects to (boots) a cluster with the given shape.
    pub fn connect(config: ClusterConfig) -> PcResult<Self> {
        let page_size = config.exec.page_size;
        Ok(PcClient {
            cluster: Arc::new(PcCluster::new(config)?),
            page_size,
        })
    }

    /// A 4-worker local cluster with default tuning.
    pub fn local() -> PcResult<Self> {
        Self::connect(ClusterConfig::default())
    }

    /// A small single-worker cluster for examples and tests.
    pub fn local_small() -> PcResult<Self> {
        Self::connect(ClusterConfig {
            workers: 1,
            exec: ExecConfig {
                batch_size: 256,
                page_size: 1 << 18,
                agg_partitions: 2,
                join_partitions: 8,
                ..ExecConfig::default()
            },
            broadcast_threshold: 16 << 20,
            ..ClusterConfig::default()
        })
    }

    /// The underlying cluster (workers, shuffle stats, catalogs).
    pub fn cluster(&self) -> &PcCluster {
        &self.cluster
    }

    /// A typed [`Dataset`](crate::dataset::Dataset) over a stored set — the
    /// entry point of the fluent query API. The element type is asserted
    /// here and *checked* on gather: collecting the set under the wrong
    /// type fails with [`pc_object::PcError::TypeMismatch`].
    pub fn set<T: PcObjType>(&self, db: &str, set: &str) -> crate::dataset::Dataset<T> {
        crate::dataset::Dataset::stored(Some(self.clone()), db, set)
    }

    /// `createSet`: registers a new set cluster-wide.
    pub fn create_set(&self, db: &str, set: &str) -> PcResult<()> {
        self.cluster.create_set(db, set)
    }

    /// Creates the set if missing, clears it otherwise.
    pub fn create_or_clear_set(&self, db: &str, set: &str) -> PcResult<()> {
        self.cluster.create_or_clear_set(db, set)
    }

    /// Drops a set cluster-wide: every worker's pages *and* the master
    /// catalog entry, so `set_size` and `exists` reflect the drop
    /// immediately. Dropping a set that does not exist is an error.
    pub fn drop_set(&self, db: &str, set: &str) -> PcResult<()> {
        self.cluster.drop_set(db, set)
    }

    /// `sendData` with a client-held vector. When the vector's block holds
    /// no other live references, the occupied portion of the allocation
    /// block travels in its entirety (§3's zero-cost dispatch). If the
    /// block is still active (an [`AllocScope`](pc_object::AllocScope) or
    /// other handles pin it), the objects are deep-copied onto fresh
    /// transfer pages instead — correct either way, zero-copy when
    /// possible.
    pub fn send_data<T: PcObjType>(
        &self,
        db: &str,
        set: &str,
        data: Handle<PcVec<Handle<T>>>,
    ) -> PcResult<()> {
        let block = data.block().clone();
        block.set_root(&data);
        drop(data);
        let probe = block.clone();
        match probe.try_seal() {
            Ok(page) => self.cluster.send_pages(db, set, vec![page]),
            Err(pc_object::PcError::BlockShared) => {
                // Fall back to a deep copy onto transfer pages.
                let root = block.root_handle::<PcVec<Handle<T>>>()?;
                let mut w = SetWriter::new(self.page_size);
                for h in root.iter() {
                    w.write_handle(&h.erase())?;
                }
                drop(root);
                self.cluster.send_pages(db, set, w.finish()?)
            }
            Err(e) => Err(e),
        }
    }

    /// Builds `count` objects page by page and ships them (the bulk-load
    /// path used by the benchmarks).
    pub fn store(
        &self,
        db: &str,
        set: &str,
        count: usize,
        mut make: impl FnMut(usize) -> PcResult<AnyHandle>,
    ) -> PcResult<()> {
        let mut w = SetWriter::new(self.page_size);
        for i in 0..count {
            w.write_with(|| make(i))?;
        }
        self.cluster.send_pages(db, set, w.finish()?)
    }

    /// Compiles (lambda → TCAP), optimizes, plans, and executes a lowered
    /// computation graph across the cluster. Internal: user code builds
    /// queries through [`Dataset`](crate::dataset::Dataset) /
    /// [`Job`](crate::dataset::Job), which lower to this.
    pub(crate) fn execute_graph(&self, graph: &ComputationGraph) -> PcResult<ClusterStats> {
        let q = compile(graph)?;
        self.cluster.execute(&q)
    }

    /// Gathers every object of a set to the client, typed. The downcast is
    /// checked against each object's header type code: asking for the wrong
    /// element type returns [`pc_object::PcError::TypeMismatch`] instead of
    /// a silently mistyped handle.
    pub fn iterate_set<T: PcObjType>(&self, db: &str, set: &str) -> PcResult<Vec<Handle<T>>> {
        self.cluster
            .scan_objects(db, set)?
            .iter()
            .map(|h| h.downcast::<T>())
            .collect()
    }

    /// Number of objects in a set (catalog metadata).
    pub fn set_size(&self, db: &str, set: &str) -> u64 {
        self.cluster.set_size(db, set)
    }

    /// Evicts every cached page to the file store (cold-start experiments).
    pub fn flush_storage(&self) -> PcResult<()> {
        for w in &self.cluster.workers {
            w.storage.flush_all()?;
        }
        Ok(())
    }
}
