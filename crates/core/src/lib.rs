//! # pc-core — the PlinyCompute client API
//!
//! The user-facing facade of the system (§2, §3): create sets, ship data
//! into the cluster (`send_data` moves whole allocation blocks with zero
//! serialization), build a [`ComputationGraph`](pc_lambda::ComputationGraph), and
//! [`execute_computations`](PcClient::execute_computations) — compilation
//! to TCAP, rule-based optimization, physical planning, and distributed
//! execution all happen behind this call, exactly as the paper's
//! `pcClient.executeComputations(...)` does.
//!
//! ```
//! use pc_core::prelude::*;
//!
//! pc_object! {
//!     pub struct Point / PointView {
//!         (x, set_x): f64,
//!     }
//! }
//!
//! let client = PcClient::local_small().unwrap();
//! client.create_set("Mydb", "Myset").unwrap();
//! client
//!     .store("Mydb", "Myset", 100, |i| {
//!         let p = make_object::<Point>()?;
//!         p.v().set_x(i as f64)?;
//!         Ok(p.erase())
//!     })
//!     .unwrap();
//! let pts = client.iterate_set::<Point>("Mydb", "Myset").unwrap();
//! assert_eq!(pts.len(), 100);
//! ```

pub mod client;
pub mod prelude;

pub use client::PcClient;
pub use pc_cluster::{ClusterConfig, ClusterStats, PcCluster};
pub use pc_exec::ExecConfig;
