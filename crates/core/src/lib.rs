//! # pc-core — the PlinyCompute client API
//!
//! The user-facing facade of the system (§2, §3): create sets, ship data
//! into the cluster (`send_data` moves whole allocation blocks with zero
//! serialization), and build queries through the typed, fluent
//! [`Dataset`](dataset::Dataset) API. A chain of `filter` / `select` /
//! `join` / `aggregate` calls grows an immutable plan; terminals lower it
//! through the lambda → TCAP → optimizer → physical-plan path and execute
//! it across the cluster, exactly as the paper's
//! `pcClient.executeComputations(...)` does — but with the element type
//! carried in `Dataset<T>`, so a lambda over the wrong type is a compile
//! error.
//!
//! ```
//! use pc_core::prelude::*;
//!
//! pc_object! {
//!     pub struct Point / PointView {
//!         (x, set_x): f64,
//!     }
//! }
//!
//! let client = PcClient::local_small().unwrap();
//! client.create_set("Mydb", "Myset").unwrap();
//! client
//!     .store("Mydb", "Myset", 100, |i| {
//!         let p = make_object::<Point>()?;
//!         p.v().set_x(i as f64)?;
//!         Ok(p.erase())
//!     })
//!     .unwrap();
//! let big = client
//!     .set::<Point>("Mydb", "Myset")
//!     .filter(|p| p.member("x", |p| p.v().x()).gt_const(49.0))
//!     .collect()
//!     .unwrap();
//! assert_eq!(big.len(), 50);
//! ```
#![warn(missing_docs)]

pub mod client;
pub mod dataset;
pub mod prelude;

pub use client::PcClient;
pub use dataset::{Dataset, Job, Sink, Var};
pub use pc_cluster::{ClusterConfig, ClusterStats, PcCluster};
pub use pc_exec::ExecConfig;
