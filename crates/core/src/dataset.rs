//! The typed, fluent query surface: [`Dataset<T>`], [`Job`], and [`Sink`].
//!
//! This is the user-facing face of §4's "declarative in the large": a
//! [`Dataset<T>`] is a handle to a (stored or derived) collection of `T`
//! objects, and every operator — [`filter`](Dataset::filter),
//! [`select`](Dataset::select), [`flat_map`](Dataset::flat_map),
//! [`join`](Dataset::join), [`aggregate`](Dataset::aggregate) — returns a
//! new `Dataset` whose element type is tracked in the type parameter.
//! Lambdas are built against a typed [`Var<T>`] cursor, so a predicate or
//! projection over the wrong element type is a *compile* error, not a
//! runtime surprise.
//!
//! Nothing executes while a chain is built. Each operator appends to an
//! immutable, structurally shared plan DAG (`Arc` links); terminals lower
//! the DAG through the stable internal layer — `ComputationGraph` →
//! TCAP compilation → optimization → physical planning — and run it on the
//! cluster. When a [`Job`] carries several sinks whose chains share an
//! upstream prefix, the shared nodes lower to a *single* computation: the
//! planner materializes the multi-consumer edge once and the shared stage
//! executes exactly once.
//!
//! ```
//! use pc_core::prelude::*;
//!
//! pc_object! {
//!     pub struct Point / PointView {
//!         (x, set_x): f64,
//!     }
//! }
//!
//! let client = PcClient::local_small().unwrap();
//! client.create_or_clear_set("db", "pts").unwrap();
//! client
//!     .store("db", "pts", 100, |i| {
//!         let p = make_object::<Point>()?;
//!         p.v().set_x(i as f64)?;
//!         Ok(p.erase())
//!     })
//!     .unwrap();
//! let big = client
//!     .set::<Point>("db", "pts")
//!     .filter(|p| p.member("x", |p| p.v().x()).gt_const(90.0))
//!     .collect()
//!     .unwrap();
//! assert_eq!(big.len(), 9);
//! ```

use crate::client::PcClient;
use pc_cluster::ClusterStats;
use pc_lambda::kernel::FlatMap1;
use pc_lambda::{
    make_lambda, make_lambda2, make_lambda3, make_lambda_from_member, make_lambda_from_method,
    make_lambda_from_self, AggregateSpec, ColValue, ComputationGraph, ErasedAgg, FlatMapKernel,
    Lambda, LambdaTerm, NodeId,
};
use pc_object::{AnyHandle, Handle, PcError, PcObjType, PcResult};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------- the plan

/// One operator of the immutable plan DAG behind a [`Dataset`].
enum PlanKind {
    /// Scan of a stored set.
    Read { db: String, set: String },
    /// Relational selection + projection (`SelectionComp`).
    Selection { pred: LambdaTerm, proj: LambdaTerm },
    /// Set-valued projection (`MultiSelectionComp`).
    FlatMap {
        label: String,
        kernel: Arc<dyn FlatMapKernel>,
    },
    /// N-ary join; the predicate carries the equality conjuncts the system
    /// extracts join keys from.
    Join { pred: LambdaTerm, proj: LambdaTerm },
    /// Aggregation by a typed spec, erased at construction.
    Aggregate { agg: Arc<dyn ErasedAgg> },
}

/// A node of the shared plan DAG. Identity (the `Arc` pointer) doubles as
/// the deduplication key when a multi-sink [`Job`] lowers: the same node
/// reachable from two sinks lowers to one computation.
struct PlanNode {
    kind: PlanKind,
    inputs: Vec<Arc<PlanNode>>,
}

impl PlanNode {
    fn leaf(kind: PlanKind) -> Arc<PlanNode> {
        Arc::new(PlanNode {
            kind,
            inputs: Vec::new(),
        })
    }

    /// Lowers this node (and its inputs) into `g`, deduplicating shared
    /// subgraphs through `memo`.
    fn lower(self: &Arc<Self>, g: &mut ComputationGraph, memo: &mut Memo) -> NodeId {
        let key = Arc::as_ptr(self) as usize;
        if let Some(&id) = memo.get(&key) {
            return id;
        }
        let inputs: Vec<NodeId> = self.inputs.iter().map(|i| i.lower(g, memo)).collect();
        let id = match &self.kind {
            PlanKind::Read { db, set } => g.reader(db, set),
            PlanKind::Selection { pred, proj } => g.selection::<AnyHandle>(
                inputs[0],
                Lambda::from_term(pred.clone()),
                Lambda::from_term(proj.clone()),
            ),
            PlanKind::FlatMap { label, kernel } => {
                g.multi_selection(inputs[0], None, label, kernel.clone())
            }
            PlanKind::Join { pred, proj } => g.join::<AnyHandle>(
                &inputs,
                Lambda::from_term(pred.clone()),
                Lambda::from_term(proj.clone()),
            ),
            PlanKind::Aggregate { agg } => g.aggregate_erased(inputs[0], agg.clone()),
        };
        memo.insert(key, id);
        id
    }

    /// Collects every `Read { db, set }` pair reachable from this node.
    fn sources(&self, out: &mut Vec<(String, String)>) {
        if let PlanKind::Read { db, set } = &self.kind {
            out.push((db.clone(), set.clone()));
        }
        for i in &self.inputs {
            i.sources(out);
        }
    }
}

type Memo = HashMap<usize, NodeId>;

// ------------------------------------------------------------------- vars

/// A typed cursor over one input of a computation, handed to the closures
/// of [`Dataset::filter`] and [`Dataset::join`]. Its methods build the
/// paper's §4 lambda abstraction families with the element type pinned to
/// the dataset's — extracting from the wrong type does not compile.
pub struct Var<T: PcObjType> {
    input: usize,
    _pd: PhantomData<fn(&T)>,
}

impl<T: PcObjType> Clone for Var<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: PcObjType> Copy for Var<T> {}

impl<T: PcObjType> Var<T> {
    fn new(input: usize) -> Self {
        Var {
            input,
            _pd: PhantomData,
        }
    }

    /// `makeLambdaFromMember`: extracts a member variable. The member name
    /// becomes `attAccess` metadata the optimizer reasons over.
    pub fn member<R: ColValue>(
        self,
        att_name: &str,
        getter: impl Fn(&Handle<T>) -> R + Send + Sync + 'static,
    ) -> Lambda<R> {
        make_lambda_from_member::<T, R>(self.input, att_name, getter)
    }

    /// `makeLambdaFromMethod`: calls a purely functional method. The method
    /// name becomes `methodCall` metadata, so redundant calls are fused.
    pub fn method<R: ColValue>(
        self,
        method_name: &str,
        method: impl Fn(&Handle<T>) -> R + Send + Sync + 'static,
    ) -> Lambda<R> {
        make_lambda_from_method::<T, R>(self.input, method_name, method)
    }

    /// `makeLambda`: opaque native code. The plan treats it as a black box
    /// — prefer [`member`](Var::member) / [`method`](Var::method) so the
    /// optimizer can see inside.
    pub fn native<R: ColValue>(
        self,
        label: &str,
        f: impl Fn(&Handle<T>) -> PcResult<R> + Send + Sync + 'static,
    ) -> Lambda<R> {
        make_lambda::<T, R>(self.input, label, f)
    }

    /// `makeLambdaFromSelf`: the identity lambda on this input.
    pub fn this(self) -> Lambda<AnyHandle> {
        make_lambda_from_self(self.input)
    }
}

/// An always-true predicate over input 0 (pure projections lower to a
/// `SelectionComp`, whose shape requires a selection term).
fn const_true<T: PcObjType>() -> Lambda<bool> {
    make_lambda_from_method::<T, i64>(0, "always", |_| 1).ge_const(0i64)
}

// ---------------------------------------------------------------- dataset

/// A typed handle to a stored or derived collection of `T` objects.
///
/// Cheap to clone (the plan is `Arc`-shared), immutable, and lazy: chaining
/// operators only grows the plan. Execution happens at the terminals —
/// [`write_to`](Dataset::write_to) + [`Job::run`], or
/// [`collect`](Dataset::collect).
pub struct Dataset<T: PcObjType> {
    plan: Arc<PlanNode>,
    client: Option<PcClient>,
    _pd: PhantomData<fn() -> T>,
}

impl<T: PcObjType> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        Dataset {
            plan: self.plan.clone(),
            client: self.client.clone(),
            _pd: PhantomData,
        }
    }
}

impl<T: PcObjType> Dataset<T> {
    pub(crate) fn stored(client: Option<PcClient>, db: &str, set: &str) -> Dataset<T> {
        Dataset {
            plan: PlanNode::leaf(PlanKind::Read {
                db: db.to_string(),
                set: set.to_string(),
            }),
            client,
            _pd: PhantomData,
        }
    }

    /// A dataset over a stored set, *unbound* from any client. Terminals
    /// that execute ([`collect`](Dataset::collect)) need a bound client —
    /// use [`PcClient::set`] for those — but an unbound chain can still be
    /// compiled via [`Job::compile`] and run on any engine.
    pub fn scan(db: &str, set: &str) -> Dataset<T> {
        Dataset::stored(None, db, set)
    }

    fn derive<R: PcObjType>(&self, kind: PlanKind, inputs: Vec<Arc<PlanNode>>) -> Dataset<R> {
        Dataset {
            plan: Arc::new(PlanNode { kind, inputs }),
            client: self.client.clone(),
            _pd: PhantomData,
        }
    }

    /// Keeps the records satisfying `pred`. The predicate is built against
    /// a typed [`Var<T>`], composing §4 lambda terms with `.eq()`,
    /// `.gt_const()`, `.and()`, ... — the optimizer sees every term.
    pub fn filter(&self, pred: impl FnOnce(Var<T>) -> Lambda<bool>) -> Dataset<T> {
        self.derive(
            PlanKind::Selection {
                pred: pred(Var::new(0)).term,
                proj: Var::<T>::new(0).this().term,
            },
            vec![self.plan.clone()],
        )
    }

    /// Maps every record to one output object (a `SelectionComp` with an
    /// always-true predicate). `f` runs with the output page active, so
    /// `make_object` allocates in place.
    pub fn select<R: PcObjType>(
        &self,
        label: &str,
        f: impl Fn(&Handle<T>) -> PcResult<Handle<R>> + Send + Sync + 'static,
    ) -> Dataset<R> {
        self.derive(
            PlanKind::Selection {
                pred: const_true::<T>().term,
                proj: make_lambda::<T, AnyHandle>(0, label, move |h| Ok(f(h)?.erase())).term,
            },
            vec![self.plan.clone()],
        )
    }

    /// Maps every record to zero or more output objects (a
    /// `MultiSelectionComp`).
    pub fn flat_map<R: PcObjType>(
        &self,
        label: &str,
        f: impl Fn(&Handle<T>) -> PcResult<Vec<Handle<R>>> + Send + Sync + 'static,
    ) -> Dataset<R> {
        let kernel = FlatMap1::<T, AnyHandle, _> {
            f: move |h: &Handle<T>| Ok(f(h)?.iter().map(Handle::erase).collect()),
            _pd: PhantomData,
        };
        self.derive(
            PlanKind::FlatMap {
                label: label.to_string(),
                kernel: Arc::new(kernel),
            },
            vec![self.plan.clone()],
        )
    }

    /// Joins with `other`. `on` supplies the join predicate over both typed
    /// inputs — it must contain at least one equality conjunct linking the
    /// two sides, from which the system extracts join keys and plans the
    /// algorithm itself (§4: the user never names a join order). `self` is
    /// the build side, `other` streams and probes.
    pub fn join<U: PcObjType, R: PcObjType>(
        &self,
        other: &Dataset<U>,
        on: impl FnOnce(Var<T>, Var<U>) -> Lambda<bool>,
        label: &str,
        proj: impl Fn(&Handle<T>, &Handle<U>) -> PcResult<Handle<R>> + Send + Sync + 'static,
    ) -> Dataset<R> {
        let mut out: Dataset<R> = self.derive(
            PlanKind::Join {
                pred: on(Var::new(0), Var::new(1)).term,
                proj: make_lambda2::<T, U, AnyHandle>((0, 1), label, move |a, b| {
                    Ok(proj(a, b)?.erase())
                })
                .term,
            },
            vec![self.plan.clone(), other.plan.clone()],
        );
        if out.client.is_none() {
            out.client = other.client.clone();
        }
        out
    }

    /// Three-way join (e.g. LDA's triples ⋈ θ ⋈ φ): one `JoinComp` whose
    /// predicate links all three inputs; the compiler plans the cascade.
    pub fn join3<U: PcObjType, V: PcObjType, R: PcObjType>(
        &self,
        b: &Dataset<U>,
        c: &Dataset<V>,
        on: impl FnOnce(Var<T>, Var<U>, Var<V>) -> Lambda<bool>,
        label: &str,
        proj: impl Fn(&Handle<T>, &Handle<U>, &Handle<V>) -> PcResult<Handle<R>> + Send + Sync + 'static,
    ) -> Dataset<R> {
        let mut out: Dataset<R> = self.derive(
            PlanKind::Join {
                pred: on(Var::new(0), Var::new(1), Var::new(2)).term,
                proj: make_lambda3::<T, U, V, AnyHandle>((0, 1, 2), label, move |x, y, z| {
                    Ok(proj(x, y, z)?.erase())
                })
                .term,
            },
            vec![self.plan.clone(), b.plan.clone(), c.plan.clone()],
        );
        for d in [&b.client, &c.client] {
            if out.client.is_none() {
                out.client = d.clone();
            }
        }
        out
    }

    /// Groups and folds via a typed [`AggregateSpec`] (an `AggregateComp`).
    /// The spec's `In` type must equal the dataset's element type — a
    /// mismatched spec is a compile error.
    pub fn aggregate<S: AggregateSpec<In = T>>(&self, spec: S) -> Dataset<S::Out> {
        self.derive(
            PlanKind::Aggregate {
                agg: Arc::new(pc_lambda::agg::AggEngine::new(spec)),
            },
            vec![self.plan.clone()],
        )
    }

    /// Terminal: write this dataset to a stored set. Returns a [`Sink`]
    /// token for a [`Job`]; nothing executes yet. When the job runs, the
    /// destination set is created (or cleared) first.
    pub fn write_to(&self, db: &str, set: &str) -> Sink {
        Sink {
            plan: self.plan.clone(),
            db: db.to_string(),
            set: set.to_string(),
        }
    }

    /// Terminal: run the chain and gather every result object to the
    /// client, typed. The downcast is *checked* — collecting a set under
    /// the wrong element type returns [`PcError::TypeMismatch`].
    ///
    /// Requires a client-bound dataset (built from [`PcClient::set`]).
    pub fn collect(&self) -> PcResult<Vec<Handle<T>>> {
        let client = self.client.clone().ok_or_else(|| {
            PcError::Catalog(
                "collect() needs a client-bound Dataset; build it with PcClient::set".into(),
            )
        })?;
        // A bare stored set gathers directly — no copy through a query.
        if let PlanKind::Read { db, set } = &self.plan.kind {
            return client.iterate_set::<T>(db, set);
        }
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let tmp = format!("__collect_{}", NEXT.fetch_add(1, Ordering::Relaxed));
        let run = Job::new()
            .add(self.write_to("__collect", &tmp))
            .run(&client);
        let rows = run.and_then(|_| client.iterate_set::<T>("__collect", &tmp));
        client.drop_set("__collect", &tmp)?;
        rows
    }
}

// -------------------------------------------------------------- job / sink

/// A pending write of one dataset to one stored set (see
/// [`Dataset::write_to`]).
#[derive(Clone)]
pub struct Sink {
    plan: Arc<PlanNode>,
    db: String,
    set: String,
}

impl Sink {
    /// Runs this sink as a single-sink [`Job`] — shorthand for
    /// `Job::new().add(sink).run(client)`.
    pub fn run(&self, client: &PcClient) -> PcResult<ClusterStats> {
        Job::new().add(self.clone()).run(client)
    }
}

/// A multi-sink query: several [`Sink`]s executed as *one* computation
/// graph. Plan nodes shared between sinks are deduplicated during lowering,
/// so a common upstream subgraph executes exactly once (asserted by the
/// `dataset_api` integration test via [`pc_exec::ExecStats`]).
#[derive(Default)]
pub struct Job {
    sinks: Vec<Sink>,
}

impl Job {
    /// An empty job.
    pub fn new() -> Job {
        Job::default()
    }

    /// Adds one sink (builder style).
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, sink: Sink) -> Job {
        self.sinks.push(sink);
        self
    }

    /// Lowers every sink into one deduplicated [`ComputationGraph`].
    fn lower(&self) -> PcResult<ComputationGraph> {
        if self.sinks.is_empty() {
            return Err(PcError::Catalog("a Job needs at least one sink".into()));
        }
        // A sink that overwrites one of the job's own sources would clear
        // the data it is about to read.
        let mut sources = Vec::new();
        for s in &self.sinks {
            s.plan.sources(&mut sources);
        }
        for s in &self.sinks {
            if sources.iter().any(|(db, set)| *db == s.db && *set == s.set) {
                return Err(PcError::Catalog(format!(
                    "job sink {}.{} is also one of its sources",
                    s.db, s.set
                )));
            }
        }
        let mut g = ComputationGraph::new();
        let mut memo = Memo::new();
        for s in &self.sinks {
            let id = s.plan.lower(&mut g, &mut memo);
            g.write(id, &s.db, &s.set);
        }
        Ok(g)
    }

    /// Compiles the job down to TCAP plus its stage library, without
    /// executing. This is the hook engine-level tests and the figure
    /// generators use to inspect or drive the compiled form directly.
    ///
    /// Every compiled plan passes through the [`pc_tcap::verify`] static
    /// verifier before it is handed out: a lowering bug surfaces here as
    /// [`PcError::PlanRejected`] with rendered diagnostics, not as a
    /// mystery misbehavior deep inside the executor.
    pub fn compile(&self) -> PcResult<pc_lambda::CompiledQuery> {
        let q = pc_lambda::compile(&self.lower()?)?;
        pc_tcap::verify::require_clean(&q.tcap).map_err(PcError::PlanRejected)?;
        Ok(q)
    }

    /// Executes the job on `client`: every sink's destination set is
    /// created or cleared, then the single deduplicated graph compiles,
    /// optimizes, plans, and runs across the cluster.
    pub fn run(&self, client: &PcClient) -> PcResult<ClusterStats> {
        let g = self.lower()?;
        for s in &self.sinks {
            client.create_or_clear_set(&s.db, &s.set)?;
        }
        client.execute_graph(&g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_object::pc_object;

    pc_object! {
        pub struct Rec / RecView {
            (key, set_key): i64,
        }
    }

    #[test]
    fn shared_upstream_lowers_once() {
        let base = Dataset::<Rec>::scan("db", "xs").filter(|r| {
            r.member("key", |r: &Handle<Rec>| r.v().key())
                .gt_const(10i64)
        });
        let job = Job::new()
            .add(base.write_to("db", "a"))
            .add(base.write_to("db", "b"));
        let g = job.lower().unwrap();
        // One reader + one selection + two writers — the filter node is not
        // duplicated.
        assert_eq!(g.nodes.len(), 4);
        assert_eq!(g.writers().len(), 2);
    }

    #[test]
    fn sink_overwriting_a_source_is_rejected() {
        let ds = Dataset::<Rec>::scan("db", "xs").filter(|r| {
            r.member("key", |r: &Handle<Rec>| r.v().key())
                .gt_const(0i64)
        });
        let err = Job::new().add(ds.write_to("db", "xs")).lower();
        assert!(err.is_err());
    }

    #[test]
    fn empty_job_is_an_error() {
        assert!(Job::new().lower().is_err());
    }
}
