//! Word-based, non-collapsed Gibbs LDA (§8.5.1, Figure 2).
//!
//! The fundamental records are `(docID, wordID, count)` triples. Each
//! iteration:
//!
//! 1. a **three-way join** pairs every triple with its document's topic
//!    probabilities θ_d and its word's per-topic probabilities φ_{·,w}
//!    (the "many-to-one join between words and the
//!    topic-probability-per-document vectors" the paper calls out as the
//!    hard part);
//! 2. the join projection samples the word's topic assignments from a
//!    multinomial over θ_d ⊙ φ_{·,w};
//! 3. aggregations rebuild both factors: per-document topic counts →
//!    θ'_d ~ Dirichlet(α + counts), per-topic word counts →
//!    φ'_k ~ Dirichlet(β + counts);
//! 4. a multi-selection + aggregation transposes φ back to per-word form
//!    for the next iteration's join.
//!
//! The baseline implementation exposes Table 4's tuning ladder via
//! [`LdaTuning`]: vanilla shuffle joins with a generic allocation-heavy
//! multinomial, then the broadcast-join hint, then forced persistence of
//! the iteration-invariant triples, then the hand-coded sampler.

use crate::sampling;
use parking_lot::Mutex;
use pc_baseline::{Rdd, SparkLike};
use pc_core::prelude::*;
use pc_object::PcValue;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

pc_object! {
    /// One (docID, wordID, count) triple.
    pub struct Triple / TripleView {
        (doc, set_doc): i64,
        (word, set_word): i64,
        (count, set_count): i64,
    }
}

pc_object! {
    /// θ_d: a document's topic probabilities.
    pub struct DocProbs / DocProbsView {
        (doc, set_doc): i64,
        (probs, set_probs): Handle<PcVec<f64>>,
    }
}

pc_object! {
    /// φ_{·,w}: one word's probability under each topic (the transposed
    /// factor used by the join).
    pub struct WordProbs / WordProbsView {
        (word, set_word): i64,
        (probs, set_probs): Handle<PcVec<f64>>,
    }
}

pc_object! {
    /// Sampled topic assignment counts for one (doc, word) pair.
    pub struct Assignment / AssignmentView {
        (doc, set_doc): i64,
        (word, set_word): i64,
        (counts, set_counts): Handle<PcVec<f64>>,
    }
}

pc_object! {
    /// A resampled factor row (doc→θ or topic→φ).
    pub struct FactorRow / FactorRowView {
        (id, set_id): i64,
        (probs, set_probs): Handle<PcVec<f64>>,
    }
}

type SharedRng = Arc<Mutex<rand::rngs::StdRng>>;

/// Aggregation rebuilding a factor: sums count vectors per key, then
/// samples Dirichlet(prior + counts) in finalize.
struct FactorAgg {
    width: usize,
    prior: f64,
    rng: SharedRng,
    by_doc: bool, // key by doc (θ) or by word (per-word topic counts)
    /// true → finalize samples Dirichlet(prior + counts); false → finalize
    /// emits the raw summed counts (the φ path gathers counts first).
    sample: bool,
}

impl AggregateSpec for FactorAgg {
    type In = Assignment;
    type Key = i64;
    type Val = Handle<PcVec<f64>>;
    type Out = FactorRow;

    fn key_of(&self, rec: &Handle<Assignment>) -> PcResult<i64> {
        Ok(if self.by_doc {
            rec.v().doc()
        } else {
            rec.v().word()
        })
    }

    fn init(&self, b: &BlockRef, rec: &Handle<Assignment>) -> PcResult<Handle<PcVec<f64>>> {
        let v = b.make_object::<PcVec<f64>>()?;
        v.reserve(self.width)?;
        v.extend_from_slice(&vec![0.0; self.width])?;
        let c = rec.v().counts();
        for (d, s) in v.as_mut_slice().iter_mut().zip(c.as_slice()) {
            *d += s;
        }
        Ok(v)
    }

    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<Assignment>) -> PcResult<()> {
        let acc = <Handle<PcVec<f64>> as PcValue>::load(b, slot);
        let c = rec.v().counts();
        for (d, s) in acc.as_mut_slice().iter_mut().zip(c.as_slice()) {
            *d += s;
        }
        Ok(())
    }

    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()> {
        let a = <Handle<PcVec<f64>> as PcValue>::load(dst, dst_slot);
        let b2 = <Handle<PcVec<f64>> as PcValue>::load(src, src_slot);
        for (x, y) in a.as_mut_slice().iter_mut().zip(b2.as_slice()) {
            *x += y;
        }
        Ok(())
    }

    fn finalize(&self, key: &i64, b: &BlockRef, slot: u32) -> PcResult<Handle<FactorRow>> {
        let acc = <Handle<PcVec<f64>> as PcValue>::load(b, slot);
        let counts = acc.as_slice();
        let mut probs = vec![0.0; self.width];
        if self.sample {
            let alpha: Vec<f64> = counts.iter().map(|c| c + self.prior).collect();
            sampling::sample_dirichlet(&mut *self.rng.lock(), &alpha, &mut probs);
        } else {
            probs.copy_from_slice(counts);
        }
        let out = make_object::<FactorRow>()?;
        out.v().set_id(*key)?;
        let pv = make_object::<PcVec<f64>>()?;
        pv.extend_from_slice(&probs)?;
        out.v().set_probs(pv)?;
        Ok(out)
    }
}

/// LDA on PlinyCompute.
pub struct PcLda {
    pub client: PcClient,
    pub db: String,
    pub topics: usize,
    pub vocab: usize,
    pub docs: usize,
    pub alpha: f64,
    pub beta: f64,
    rng: SharedRng,
    iter: usize,
}

impl PcLda {
    /// Loads triples and Dirichlet-initializes both factors.
    #[allow(clippy::too_many_arguments)]
    pub fn init(
        client: &PcClient,
        db: &str,
        triples: &[(i64, i64, i64)],
        docs: usize,
        vocab: usize,
        topics: usize,
        alpha: f64,
        beta: f64,
        seed: u64,
    ) -> PcResult<Self> {
        let rng: SharedRng = Arc::new(Mutex::new(rand::rngs::StdRng::seed_from_u64(seed)));
        client.create_or_clear_set(db, "triples")?;
        client.store(db, "triples", triples.len(), |i| {
            let (d, w, c) = &triples[i];
            let t = make_object::<Triple>()?;
            t.v().set_doc(*d)?;
            t.v().set_word(*w)?;
            t.v().set_count(*c)?;
            Ok(t.erase())
        })?;
        // θ rows.
        client.create_or_clear_set(db, "theta")?;
        {
            let rng = rng.clone();
            client.store(db, "theta", docs, move |d| {
                let mut probs = vec![0.0; topics];
                sampling::sample_dirichlet(&mut *rng.lock(), &vec![1.0; topics], &mut probs);
                let row = make_object::<DocProbs>()?;
                row.v().set_doc(d as i64)?;
                let pv = make_object::<PcVec<f64>>()?;
                pv.extend_from_slice(&probs)?;
                row.v().set_probs(pv)?;
                Ok(row.erase())
            })?;
        }
        // φ columns (per word).
        client.create_or_clear_set(db, "phi_by_word")?;
        {
            let rng = rng.clone();
            client.store(db, "phi_by_word", vocab, move |w| {
                let mut probs = vec![0.0; topics];
                sampling::sample_dirichlet(&mut *rng.lock(), &vec![1.0; topics], &mut probs);
                let row = make_object::<WordProbs>()?;
                row.v().set_word(w as i64)?;
                let pv = make_object::<PcVec<f64>>()?;
                pv.extend_from_slice(&probs)?;
                row.v().set_probs(pv)?;
                Ok(row.erase())
            })?;
        }
        Ok(PcLda {
            client: client.clone(),
            db: db.to_string(),
            topics,
            vocab,
            docs,
            alpha,
            beta,
            rng,
            iter: 0,
        })
    }

    /// One Gibbs iteration.
    pub fn iterate(&mut self) -> PcResult<()> {
        self.iter += 1;
        let db = self.db.clone();
        let k = self.topics;

        // --- assignment sampling: 3-way join + multinomial projection ---
        let triples = self.client.set::<Triple>(&db, "triples");
        let theta = self.client.set::<DocProbs>(&db, "theta");
        let phi = self.client.set::<WordProbs>(&db, "phi_by_word");
        let rng = self.rng.clone();
        triples
            .join3(
                &theta,
                &phi,
                |t, d, w| {
                    t.member("doc", |t| t.v().doc())
                        .eq(d.member("doc", |p| p.v().doc()))
                        .and(
                            t.member("word", |t| t.v().word())
                                .eq(w.member("word", |p| p.v().word())),
                        )
                },
                "sampleAssignments",
                move |t, dp, wp| {
                    let theta = dp.v().probs();
                    let phi = wp.v().probs();
                    let weights: Vec<f64> = theta
                        .as_slice()
                        .iter()
                        .zip(phi.as_slice())
                        .map(|(a, b)| a * b)
                        .collect();
                    let mut counts = vec![0u32; k];
                    sampling::sample_multinomial(
                        &mut *rng.lock(),
                        &weights,
                        t.v().count() as u32,
                        &mut counts,
                    );
                    let a = make_object::<Assignment>()?;
                    a.v().set_doc(t.v().doc())?;
                    a.v().set_word(t.v().word())?;
                    let cv = make_object::<PcVec<f64>>()?;
                    cv.reserve(k)?;
                    cv.extend_from_slice(&counts.iter().map(|c| *c as f64).collect::<Vec<_>>())?;
                    a.v().set_counts(cv)?;
                    Ok(a)
                },
            )
            .write_to(&db, "assignments")
            .run(&self.client)?;

        // --- θ resampling: aggregate assignment counts per doc ---
        let assignments = self.client.set::<Assignment>(&db, "assignments");
        let theta_rows = assignments
            .aggregate(FactorAgg {
                width: k,
                prior: self.alpha,
                rng: self.rng.clone(),
                by_doc: true,
                sample: true,
            })
            .collect()?;
        // FactorRow → DocProbs (re-typing the rows for the next join).
        self.retype_rows::<DocProbs>(theta_rows, "theta", |row, id, pv| {
            row.v().set_doc(id)?;
            row.v().set_probs(pv)
        })?;

        // --- φ resampling: per-word topic counts, then per-topic Dirichlet ---
        // Gather per-word counts, resample topic rows on the driver (the
        // topic count K is tiny), and redistribute the per-word transpose —
        // the driver-side model update step the paper's GMM/LDA loops do.
        let mut per_topic: Vec<Vec<f64>> = vec![vec![self.beta; self.vocab]; k];
        let word_counts = assignments
            .aggregate(FactorAgg {
                width: k,
                prior: 0.0,
                rng: self.rng.clone(),
                by_doc: false,
                sample: false,
            })
            .collect()?;
        for row in word_counts {
            let w = row.v().id() as usize;
            let pv = row.v().probs();
            // sample=false rows hold the raw per-word topic counts.
            for (t, c) in pv.as_slice().iter().enumerate() {
                per_topic[t][w] += c;
            }
        }
        let mut phi_rows: Vec<Vec<f64>> = Vec::with_capacity(k);
        for counts in &per_topic {
            let mut probs = vec![0.0; self.vocab];
            sampling::sample_dirichlet(&mut *self.rng.lock(), counts, &mut probs);
            phi_rows.push(probs);
        }
        // Transpose to per-word form and redistribute.
        self.client.create_or_clear_set(&db, "phi_by_word")?;
        let vocab = self.vocab;
        let phi_rows = Arc::new(phi_rows);
        let pr = phi_rows.clone();
        self.client.store(&db, "phi_by_word", vocab, move |w| {
            let row = make_object::<WordProbs>()?;
            row.v().set_word(w as i64)?;
            let pv = make_object::<PcVec<f64>>()?;
            pv.reserve(k)?;
            for t in 0..k {
                pv.push(pr[t][w])?;
            }
            row.v().set_probs(pv)?;
            Ok(row.erase())
        })?;
        Ok(())
    }

    fn retype_rows<T: PcObjType>(
        &self,
        rows: Vec<Handle<FactorRow>>,
        to: &str,
        fill: impl Fn(&Handle<T>, i64, Handle<PcVec<f64>>) -> PcResult<()> + Send + Sync + 'static,
    ) -> PcResult<()>
    where
        T: 'static,
    {
        self.client.create_or_clear_set(&self.db, to)?;
        self.client.store(&self.db, to, rows.len(), |i| {
            let r = &rows[i];
            let out = make_object::<T>()?;
            let pv = make_object::<PcVec<f64>>()?;
            let src = r.v().probs();
            pv.extend_from_slice(src.as_slice())?;
            fill(&out, r.v().id(), pv)?;
            Ok(out.erase())
        })
    }

    /// Gathers θ (doc → topic distribution).
    pub fn theta(&self) -> PcResult<Vec<(i64, Vec<f64>)>> {
        Ok(self
            .client
            .iterate_set::<DocProbs>(&self.db, "theta")?
            .iter()
            .map(|r| (r.v().doc(), r.v().probs().iter().collect()))
            .collect())
    }
}

// ----------------------------------------------------------------- baseline

/// Table 4's tuning ladder for the baseline LDA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LdaTuning {
    /// Shuffle joins, serialized stages, generic multinomial.
    Vanilla,
    /// + broadcast-join hint.
    JoinHint,
    /// + persist the iteration-invariant triples (skip their codec).
    ForcedPersist,
    /// + hand-coded multinomial sampler.
    HandCodedSampler,
}

/// Baseline (Spark-style) LDA.
pub struct BaselineLda {
    eng: SparkLike,
    pub tuning: LdaTuning,
    pub topics: usize,
    pub vocab: usize,
    triples: Rdd<(i64, i64, i64)>,
    theta: Vec<Vec<f64>>,
    phi_by_word: Vec<Vec<f64>>,
    rng: rand::rngs::StdRng,
    alpha: f64,
    beta: f64,
    docs: usize,
}

impl BaselineLda {
    #[allow(clippy::too_many_arguments)]
    pub fn init(
        eng: &SparkLike,
        tuning: LdaTuning,
        triples: Vec<(i64, i64, i64)>,
        docs: usize,
        vocab: usize,
        topics: usize,
        alpha: f64,
        beta: f64,
        seed: u64,
    ) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut theta = vec![vec![0.0; topics]; docs];
        for row in theta.iter_mut() {
            sampling::sample_dirichlet(&mut rng, &vec![1.0; topics], row);
        }
        let mut phi_by_word = vec![vec![0.0; topics]; vocab];
        for row in phi_by_word.iter_mut() {
            sampling::sample_dirichlet(&mut rng, &vec![1.0; topics], row);
        }
        let rdd = eng.parallelize(triples);
        let rdd = if tuning >= LdaTuning::ForcedPersist {
            rdd.cache()
        } else {
            rdd
        };
        BaselineLda {
            eng: eng.clone(),
            tuning,
            topics,
            vocab,
            triples: rdd,
            theta,
            phi_by_word,
            rng,
            alpha,
            beta,
            docs,
        }
    }

    pub fn iterate(&mut self) {
        let k = self.topics;
        // Model join: distribute θ and φ as keyed RDDs and join, or
        // broadcast (JoinHint+) — the same dataflow PC's 3-way join runs.
        let theta_rdd: Rdd<(i64, Vec<f64>)> = self.eng.parallelize(
            self.theta
                .iter()
                .cloned()
                .enumerate()
                .map(|(d, v)| (d as i64, v))
                .collect(),
        );
        let phi_rdd: Rdd<(i64, Vec<f64>)> = self.eng.parallelize(
            self.phi_by_word
                .iter()
                .cloned()
                .enumerate()
                .map(|(w, v)| (w as i64, v))
                .collect(),
        );
        let use_broadcast = self.tuning >= LdaTuning::JoinHint;
        let eng = if use_broadcast {
            let mut cfg = self.eng.config.clone();
            cfg.broadcast_join_hint = true;
            SparkLike::new(cfg)
        } else {
            self.eng.clone()
        };
        let by_doc: Rdd<(i64, (i64, i64))> = self.triples.map(|(d, w, c)| (d, (w, c)));
        // Rebuild under the (possibly broadcast-hinted) engine.
        let by_doc = eng.parallelize(by_doc.collect());
        let theta_rdd = eng.parallelize(theta_rdd.collect());
        let phi_rdd = eng.parallelize(phi_rdd.collect());
        let j1 = by_doc.join(&theta_rdd); // (doc, ((word,count), θ_d))
        let by_word: Rdd<(i64, (i64, i64, Vec<f64>))> = j1.map(|(d, ((w, c), th))| (w, (d, c, th)));
        let j2 = by_word.join(&phi_rdd); // (word, ((doc,count,θ), φ_w))
        let seed: u64 = self.rng.random();
        let fast = self.tuning >= LdaTuning::HandCodedSampler;
        let assignments: Rdd<(i64, (i64, Vec<f64>))> = j2.map_partitions(move |part| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut out = Vec::with_capacity(part.len());
            for (w, ((d, c, th), ph)) in part {
                let weights: Vec<f64> = th.iter().zip(&ph).map(|(a, b)| a * b).collect();
                let mut counts = vec![0u32; k];
                if fast {
                    sampling::sample_multinomial(&mut rng, &weights, c as u32, &mut counts);
                } else {
                    sampling::sample_multinomial_generic(&mut rng, &weights, c as u32, &mut counts);
                }
                out.push((
                    d,
                    (w, counts.iter().map(|x| *x as f64).collect::<Vec<f64>>()),
                ));
            }
            out
        });

        // θ update.
        let doc_counts = assignments
            .map(|(d, (_w, counts))| (d, counts))
            .reduce_by_key(|mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            })
            .collect();
        for (d, counts) in doc_counts {
            let alpha: Vec<f64> = counts.iter().map(|c| c + self.alpha).collect();
            sampling::sample_dirichlet(&mut self.rng, &alpha, &mut self.theta[d as usize]);
        }
        // φ update.
        let word_counts = assignments
            .map(|(_d, (w, counts))| (w, counts))
            .reduce_by_key(|mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            })
            .collect();
        let mut per_topic = vec![vec![self.beta; self.vocab]; k];
        for (w, counts) in word_counts {
            for (t, c) in counts.iter().enumerate() {
                per_topic[t][w as usize] += c;
            }
        }
        let mut phi_rows = vec![vec![0.0; self.vocab]; k];
        for (t, counts) in per_topic.iter().enumerate() {
            sampling::sample_dirichlet(&mut self.rng, counts, &mut phi_rows[t]);
        }
        for w in 0..self.vocab {
            for t in 0..k {
                self.phi_by_word[w][t] = phi_rows[t][w];
            }
        }
        let _ = self.docs;
    }

    pub fn theta(&self) -> &[Vec<f64>] {
        &self.theta
    }
}

/// Semi-synthetic corpus in the 20-newsgroups style: `docs` documents, each
/// drawn from one of `true_topics` disjoint word pools.
pub fn synthetic_corpus(
    docs: usize,
    vocab: usize,
    true_topics: usize,
    words_per_doc: usize,
    seed: u64,
) -> Vec<(i64, i64, i64)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pool = vocab / true_topics;
    let mut triples = Vec::new();
    for d in 0..docs {
        let topic = d % true_topics;
        let mut counts: std::collections::HashMap<i64, i64> = Default::default();
        for _ in 0..words_per_doc {
            let w = (topic * pool + rng.random_range(0..pool)) as i64;
            *counts.entry(w).or_insert(0) += 1;
        }
        for (w, c) in counts {
            triples.push((d as i64, w, c));
        }
    }
    triples
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_baseline::{SparkConfig, StorageLevel};

    fn topic_sharpness(theta: &[(i64, Vec<f64>)]) -> f64 {
        let s: f64 = theta
            .iter()
            .map(|(_, p)| p.iter().cloned().fold(0.0, f64::max))
            .sum();
        s / theta.len() as f64
    }

    #[test]
    fn pc_lda_concentrates_topics() {
        let triples = synthetic_corpus(40, 60, 2, 50, 3);
        let client = PcClient::local_small().unwrap();
        let mut lda = PcLda::init(&client, "lda", &triples, 40, 60, 2, 0.1, 0.1, 7).unwrap();
        for _ in 0..12 {
            lda.iterate().unwrap();
        }
        let theta = lda.theta().unwrap();
        assert_eq!(theta.len(), 40);
        for (_, p) in &theta {
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "θ must be a distribution");
        }
        let sharp = topic_sharpness(&theta);
        assert!(sharp > 0.65, "topics should concentrate, sharpness {sharp}");
    }

    #[test]
    fn baseline_ladder_all_rungs_agree_statistically() {
        let triples = synthetic_corpus(30, 40, 2, 25, 5);
        for tuning in [
            LdaTuning::Vanilla,
            LdaTuning::JoinHint,
            LdaTuning::ForcedPersist,
            LdaTuning::HandCodedSampler,
        ] {
            let eng = SparkLike::new(SparkConfig {
                partitions: 2,
                storage: StorageLevel::Serialized,
                ..Default::default()
            });
            let mut lda = BaselineLda::init(&eng, tuning, triples.clone(), 30, 40, 2, 0.1, 0.1, 9);
            // 10 sweeps (not 6): the vendored RNG stream differs from
            // crates.io rand's, and the slowest rung needs the extra burn-in
            // to clear the sharpness bar.
            for _ in 0..10 {
                lda.iterate();
            }
            let theta: Vec<(i64, Vec<f64>)> = lda
                .theta()
                .iter()
                .cloned()
                .enumerate()
                .map(|(d, p)| (d as i64, p))
                .collect();
            let sharp = topic_sharpness(&theta);
            assert!(sharp > 0.7, "{tuning:?}: sharpness {sharp}");
        }
    }
}
