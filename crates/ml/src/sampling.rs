//! Statistical sampling routines (the GSL replacement).

use rand::{Rng, RngExt};

/// Marsaglia-Tsang gamma sampler, shape `a > 0`, scale 1.
pub fn sample_gamma<R: Rng>(rng: &mut R, a: f64) -> f64 {
    if a < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.random::<f64>().max(1e-300);
        return sample_gamma(rng, a + 1.0) * u.powf(1.0 / a);
    }
    let d = a - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x: f64 = sample_std_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random::<f64>().max(1e-300);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Box-Muller standard normal.
pub fn sample_std_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples from Dirichlet(alpha) into `out` (normalized gammas).
pub fn sample_dirichlet<R: Rng>(rng: &mut R, alpha: &[f64], out: &mut [f64]) {
    debug_assert_eq!(alpha.len(), out.len());
    let mut sum = 0.0;
    for (o, &a) in out.iter_mut().zip(alpha) {
        *o = sample_gamma(rng, a.max(1e-9));
        sum += *o;
    }
    if sum <= 0.0 {
        let u = 1.0 / out.len() as f64;
        out.fill(u);
        return;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

/// One categorical draw by cumulative scan over unnormalized weights
/// (the "hand-coded multinomial" of Table 4's last tuning rung).
pub fn sample_categorical<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.random_range(0..weights.len());
    }
    let mut t = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// `n` multinomial draws, accumulated into per-category counts.
pub fn sample_multinomial<R: Rng>(rng: &mut R, weights: &[f64], n: u32, counts: &mut [u32]) {
    counts.fill(0);
    for _ in 0..n {
        counts[sample_categorical(rng, weights)] += 1;
    }
}

/// A deliberately allocation-heavy multinomial used by the *untuned*
/// baseline rungs (Table 4): it materializes a fresh normalized
/// distribution and a fresh cumulative vector per draw — the kind of
/// generic library code the paper's Spark expert had to replace.
pub fn sample_multinomial_generic<R: Rng>(
    rng: &mut R,
    weights: &[f64],
    n: u32,
    counts: &mut [u32],
) {
    counts.fill(0);
    for _ in 0..n {
        let total: f64 = weights.iter().sum();
        let normalized: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let cumulative: Vec<f64> = normalized
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w;
                Some(*acc)
            })
            .collect();
        let u: f64 = rng.random();
        let idx = cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(weights.len() - 1);
        counts[idx] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn gamma_mean_tracks_shape() {
        let mut r = rng();
        for &a in &[0.5, 1.0, 3.0, 10.0] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| sample_gamma(&mut r, a)).sum::<f64>() / n as f64;
            assert!(
                (mean - a).abs() < 0.25 * a.max(1.0),
                "shape {a}: mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one_and_tracks_alpha() {
        let mut r = rng();
        let alpha = [10.0, 1.0, 1.0];
        let mut out = [0.0; 3];
        let mut mean = [0.0; 3];
        for _ in 0..2000 {
            sample_dirichlet(&mut r, &alpha, &mut out);
            let s: f64 = out.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            for (m, o) in mean.iter_mut().zip(&out) {
                *m += o;
            }
        }
        for m in mean.iter_mut() {
            *m /= 2000.0;
        }
        assert!(
            mean[0] > 0.7,
            "alpha-heavy component should dominate: {mean:?}"
        );
    }

    #[test]
    fn multinomial_variants_agree_in_distribution() {
        let mut r = rng();
        let w = [1.0, 2.0, 7.0];
        let mut c1 = [0u32; 3];
        let mut c2 = [0u32; 3];
        sample_multinomial(&mut r, &w, 50_000, &mut c1);
        sample_multinomial_generic(&mut r, &w, 50_000, &mut c2);
        for i in 0..3 {
            let p1 = c1[i] as f64 / 50_000.0;
            let p2 = c2[i] as f64 / 50_000.0;
            let want = w[i] / 10.0;
            assert!(
                (p1 - want).abs() < 0.02,
                "fast sampler off at {i}: {p1} vs {want}"
            );
            assert!(
                (p2 - want).abs() < 0.02,
                "generic sampler off at {i}: {p2} vs {want}"
            );
        }
    }
}
