//! k-means (§8.5.1, Appendix A): one `AggregateComp` per iteration.
//!
//! Both implementations use the standard pruning trick: the lower bound
//! `‖a−b‖² ≥ (‖a‖−‖b‖)²` skips full distance computations when it already
//! exceeds the best distance so far.

use pc_baseline::{Rdd, SparkLike};
use pc_core::prelude::*;
use pc_object::PcValue;
use std::sync::Arc;

pc_object! {
    /// A feature vector (§3's DataPoint).
    pub struct DataPoint / DataPointView {
        (data, set_data): Handle<PcVec<f64>>,
    }
}

pc_object! {
    /// An updated centroid: id, member count, and coordinate sums
    /// (Appendix A's `Centroid` holding an `Avg`).
    pub struct Centroid / CentroidView {
        (centroid_id, set_centroid_id): i64,
        (count, set_count): i64,
        (sums, set_sums): Handle<PcVec<f64>>,
    }
}

/// Index of the closest centroid, with the norm lower-bound prune.
pub fn closest_centroid(point: &[f64], centroids: &[Vec<f64>], norms: &[f64]) -> usize {
    let pn = point.iter().map(|x| x * x).sum::<f64>().sqrt();
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (k, c) in centroids.iter().enumerate() {
        let lb = (pn - norms[k]) * (pn - norms[k]);
        if lb >= best_d {
            continue; // pruned without touching the coordinates
        }
        let d: f64 = point.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    best
}

/// The per-iteration aggregation: key = closest centroid, value = running
/// `(count, sum-vector)` packed as `[count, sums...]` on the map page.
struct KMeansAgg {
    centroids: Vec<Vec<f64>>,
    norms: Vec<f64>,
}

impl AggregateSpec for KMeansAgg {
    type In = DataPoint;
    type Key = i64;
    type Val = Handle<PcVec<f64>>;
    type Out = Centroid;

    fn key_of(&self, rec: &Handle<DataPoint>) -> PcResult<i64> {
        let data = rec.v().data();
        Ok(closest_centroid(data.as_slice(), &self.centroids, &self.norms) as i64)
    }

    fn init(&self, b: &BlockRef, rec: &Handle<DataPoint>) -> PcResult<Handle<PcVec<f64>>> {
        let data = rec.v().data();
        let v = b.make_object::<PcVec<f64>>()?;
        v.reserve(1 + data.len())?;
        v.extend_from_slice(&[1.0])?;
        v.extend_from_slice(data.as_slice())?;
        Ok(v)
    }

    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<DataPoint>) -> PcResult<()> {
        let acc = <Handle<PcVec<f64>> as PcValue>::load(b, slot);
        let s = acc.as_mut_slice();
        s[0] += 1.0;
        let data = rec.v().data();
        for (d, x) in s[1..].iter_mut().zip(data.as_slice()) {
            *d += x;
        }
        Ok(())
    }

    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()> {
        let a = <Handle<PcVec<f64>> as PcValue>::load(dst, dst_slot);
        let b2 = <Handle<PcVec<f64>> as PcValue>::load(src, src_slot);
        let d = a.as_mut_slice();
        for (x, y) in d.iter_mut().zip(b2.as_slice()) {
            *x += y;
        }
        Ok(())
    }

    fn finalize(&self, key: &i64, b: &BlockRef, slot: u32) -> PcResult<Handle<Centroid>> {
        let acc = <Handle<PcVec<f64>> as PcValue>::load(b, slot);
        let s = acc.as_slice();
        let out = make_object::<Centroid>()?;
        out.v().set_centroid_id(*key)?;
        out.v().set_count(s[0] as i64)?;
        let sums = make_object::<PcVec<f64>>()?;
        sums.extend_from_slice(&s[1..])?;
        out.v().set_sums(sums)?;
        Ok(out)
    }
}

/// k-means on PlinyCompute.
pub struct PcKMeans {
    pub client: PcClient,
    pub db: String,
    pub set: String,
    pub centroids: Vec<Vec<f64>>,
}

impl PcKMeans {
    /// Loads points and initializes centroids from the first `k` points.
    pub fn init(
        client: &PcClient,
        db: &str,
        set: &str,
        points: &[Vec<f64>],
        k: usize,
    ) -> PcResult<Self> {
        client.create_or_clear_set(db, set)?;
        // Index by `i`: the page-fault retry may re-invoke the builder for
        // the same object.
        client.store(db, set, points.len(), |i| {
            let p = &points[i];
            let obj = make_object::<DataPoint>()?;
            let v = make_object::<PcVec<f64>>()?;
            v.extend_from_slice(p)?;
            obj.v().set_data(v)?;
            Ok(obj.erase())
        })?;
        Ok(PcKMeans {
            client: client.clone(),
            db: db.to_string(),
            set: set.to_string(),
            centroids: points.iter().take(k).cloned().collect(),
        })
    }

    /// One Lloyd iteration: aggregate, gather the k updated centroids, and
    /// install them in the model (the Appendix A loop body).
    pub fn iterate(&mut self) -> PcResult<()> {
        let norms: Vec<f64> = self
            .centroids
            .iter()
            .map(|c| c.iter().map(|x| x * x).sum::<f64>().sqrt())
            .collect();
        let updated = self
            .client
            .set::<DataPoint>(&self.db, &self.set)
            .aggregate(KMeansAgg {
                centroids: self.centroids.clone(),
                norms,
            })
            .collect()?;
        for c in updated {
            let id = c.v().centroid_id() as usize;
            let n = c.v().count() as f64;
            let sums = c.v().sums();
            for (dst, s) in self.centroids[id].iter_mut().zip(sums.as_slice()) {
                *dst = s / n;
            }
        }
        Ok(())
    }
}

/// The baseline (Spark mllib-style) k-means over the RDD API.
pub struct BaselineKMeans {
    pub points: Rdd<Vec<f64>>,
    pub centroids: Vec<Vec<f64>>,
}

impl BaselineKMeans {
    pub fn init(eng: &SparkLike, points: Vec<Vec<f64>>, k: usize) -> Self {
        let centroids = points.iter().take(k).cloned().collect();
        BaselineKMeans {
            points: eng.parallelize(points),
            centroids,
        }
    }

    pub fn iterate(&mut self) {
        let centroids = Arc::new(self.centroids.clone());
        let norms: Arc<Vec<f64>> = Arc::new(
            centroids
                .iter()
                .map(|c| c.iter().map(|x| x * x).sum::<f64>().sqrt())
                .collect(),
        );
        let c2 = centroids.clone();
        let n2 = norms.clone();
        let assigned: Rdd<(i64, (i64, Vec<f64>))> = self.points.map(move |p| {
            let k = closest_centroid(&p, &c2, &n2) as i64;
            (k, (1i64, p))
        });
        let reduced = assigned.reduce_by_key(|(c1, mut s1), (c2, s2)| {
            for (a, b) in s1.iter_mut().zip(&s2) {
                *a += b;
            }
            (c1 + c2, s1)
        });
        for (k, (n, sums)) in reduced.collect() {
            let c = &mut self.centroids[k as usize];
            for (dst, s) in c.iter_mut().zip(&sums) {
                *dst = s / n as f64;
            }
        }
    }
}

/// Generates clustered synthetic data: `n` points in `d` dims around `k`
/// well-separated centers.
pub fn synthetic_points(n: usize, d: usize, k: usize, seed: u64) -> Vec<Vec<f64>> {
    use rand::{RngExt as _, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|c| (0..d).map(|j| ((c * 7 + j) % 13) as f64 * 3.0).collect())
        .collect();
    (0..n)
        .map(|i| {
            let c = &centers[i % k];
            c.iter().map(|x| x + rng.random::<f64>() - 0.5).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_baseline::{SparkConfig, StorageLevel};

    #[test]
    fn pc_and_baseline_converge_to_the_same_centroids() {
        let pts = synthetic_points(300, 4, 3, 11);
        let client = PcClient::local_small().unwrap();
        let mut pc = PcKMeans::init(&client, "ml", "pts", &pts, 3).unwrap();
        let eng = SparkLike::new(SparkConfig {
            partitions: 2,
            storage: StorageLevel::Serialized,
            ..Default::default()
        });
        let mut base = BaselineKMeans::init(&eng, pts, 3);
        for _ in 0..5 {
            pc.iterate().unwrap();
            base.iterate();
        }
        let mut a = pc.centroids.clone();
        let mut b = base.centroids.clone();
        let key = |c: &Vec<f64>| (c[0] * 1e6) as i64;
        a.sort_by_key(key);
        b.sort_by_key(key);
        for (x, y) in a.iter().zip(&b) {
            for (p, q) in x.iter().zip(y) {
                assert!((p - q).abs() < 1e-9, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn pruning_never_changes_the_answer() {
        let pts = synthetic_points(100, 6, 4, 3);
        let centroids: Vec<Vec<f64>> = pts.iter().take(4).cloned().collect();
        let norms: Vec<f64> = centroids
            .iter()
            .map(|c| c.iter().map(|x| x * x).sum::<f64>().sqrt())
            .collect();
        for p in &pts {
            let fast = closest_centroid(p, &centroids, &norms);
            // brute force
            let mut best = 0;
            let mut bd = f64::INFINITY;
            for (k, c) in centroids.iter().enumerate() {
                let d: f64 = p.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < bd {
                    bd = d;
                    best = k;
                }
            }
            assert_eq!(fast, best);
        }
    }
}
