//! Gaussian mixture model learning via EM (§8.5.1).
//!
//! One `AggregateComp` per iteration carries the current model inside it
//! (as the paper's implementation does); the E-step computes log-space soft
//! assignments ("the standard log-space trick to avoid underflow"), the
//! M-step accumulates per-component responsibilities, weighted sums, and
//! weighted squared sums (diagonal covariance — a documented substitution
//! for the paper's GSL-backed dense covariance; the data flow is
//! identical).

use crate::kmeans::DataPoint;
use pc_baseline::{Rdd, SparkLike};
use pc_core::prelude::*;
use pc_object::PcValue;
use std::sync::Arc;

/// A diagonal-covariance Gaussian mixture.
#[derive(Debug, Clone, PartialEq)]
pub struct GmmModel {
    pub weights: Vec<f64>,
    pub means: Vec<Vec<f64>>,
    pub vars: Vec<Vec<f64>>,
}

impl GmmModel {
    /// Initializes from the first `k` points (the shared "same random
    /// initialization" of §8.5.1).
    pub fn init(points: &[Vec<f64>], k: usize) -> Self {
        let d = points[0].len();
        GmmModel {
            weights: vec![1.0 / k as f64; k],
            means: points.iter().take(k).cloned().collect(),
            vars: vec![vec![1.0; d]; k],
        }
    }

    /// Log density of one component at `x`, up to the shared constant.
    fn log_comp(&self, k: usize, x: &[f64]) -> f64 {
        let mut acc = self.weights[k].max(1e-300).ln();
        for ((xi, mi), vi) in x.iter().zip(&self.means[k]).zip(&self.vars[k]) {
            let v = vi.max(1e-6);
            acc -= 0.5 * ((xi - mi) * (xi - mi) / v + v.ln());
        }
        acc
    }

    /// Soft assignment in log space: responsibilities of each component.
    pub fn responsibilities(&self, x: &[f64], out: &mut [f64]) {
        let k = self.weights.len();
        let mut mx = f64::NEG_INFINITY;
        for c in 0..k {
            out[c] = self.log_comp(c, x);
            mx = mx.max(out[c]);
        }
        let mut sum = 0.0;
        for o in out.iter_mut() {
            *o = (*o - mx).exp();
            sum += *o;
        }
        for o in out.iter_mut() {
            *o /= sum;
        }
    }

    /// Applies accumulated sufficient statistics
    /// `[resp, sum(d), sumsq(d)]` per component.
    pub fn update(&mut self, stats: &[(usize, Vec<f64>)], total: f64) {
        let d = self.means[0].len();
        for (k, s) in stats {
            let nk = s[0];
            if nk <= 0.0 {
                continue;
            }
            self.weights[*k] = nk / total;
            for j in 0..d {
                let mean = s[1 + j] / nk;
                self.means[*k][j] = mean;
                self.vars[*k][j] = (s[1 + d + j] / nk - mean * mean).max(1e-6);
            }
        }
    }

    pub fn max_abs_diff(&self, other: &GmmModel) -> f64 {
        let mut m: f64 = 0.0;
        for (a, b) in self
            .means
            .iter()
            .flatten()
            .zip(other.means.iter().flatten())
        {
            m = m.max((a - b).abs());
        }
        for (a, b) in self.vars.iter().flatten().zip(other.vars.iter().flatten()) {
            m = m.max((a - b).abs());
        }
        m
    }
}

/// Accumulates per-point sufficient statistics into per-component packed
/// vectors `[resp, sum(d), sumsq(d)]`. All points contribute to all
/// components (soft assignment), so the flat-map key is the component id.
struct GmmAgg {
    model: Arc<GmmModel>,
}

pc_object! {
    /// One component's sufficient statistics after an iteration.
    pub struct GmmStat / GmmStatView {
        (component, set_component): i64,
        (stats, set_stats): Handle<PcVec<f64>>,
    }
}

impl AggregateSpec for GmmAgg {
    type In = DataPoint;
    type Key = i64;
    type Val = Handle<PcVec<f64>>;
    type Out = GmmStat;

    // Soft assignment: each record contributes to ONE key per call, so the
    // engine calls us once per (record, component) via key fan-out... PC's
    // AggregateComp maps each record to one key, so instead we fold the
    // whole per-record contribution into component `argmax` — no: we fold
    // into EVERY component by storing the full K×(1+2d) statistics under a
    // single key and updating all components per record. Key 0 = "the
    // model"; the value is the concatenated per-component stats, exactly
    // how the paper's single AggregateComp carries the whole update.
    fn key_of(&self, _rec: &Handle<DataPoint>) -> PcResult<i64> {
        Ok(0)
    }

    fn init(&self, b: &BlockRef, rec: &Handle<DataPoint>) -> PcResult<Handle<PcVec<f64>>> {
        let k = self.model.weights.len();
        let d = self.model.means[0].len();
        let v = b.make_object::<PcVec<f64>>()?;
        v.reserve(k * (1 + 2 * d))?;
        v.extend_from_slice(&vec![0.0; k * (1 + 2 * d)])?;
        // fold the first record immediately
        let data = rec.v().data();
        fold_point(&self.model, data.as_slice(), v.as_mut_slice());
        Ok(v)
    }

    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<DataPoint>) -> PcResult<()> {
        let acc = <Handle<PcVec<f64>> as PcValue>::load(b, slot);
        let data = rec.v().data();
        fold_point(&self.model, data.as_slice(), acc.as_mut_slice());
        Ok(())
    }

    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()> {
        let a = <Handle<PcVec<f64>> as PcValue>::load(dst, dst_slot);
        let b2 = <Handle<PcVec<f64>> as PcValue>::load(src, src_slot);
        for (x, y) in a.as_mut_slice().iter_mut().zip(b2.as_slice()) {
            *x += y;
        }
        Ok(())
    }

    fn finalize(&self, key: &i64, b: &BlockRef, slot: u32) -> PcResult<Handle<GmmStat>> {
        let acc = <Handle<PcVec<f64>> as PcValue>::load(b, slot);
        let out = make_object::<GmmStat>()?;
        out.v().set_component(*key)?;
        let v = make_object::<PcVec<f64>>()?;
        v.extend_from_slice(acc.as_slice())?;
        out.v().set_stats(v)?;
        Ok(out)
    }
}

/// Folds one point's soft-assigned statistics into the packed accumulator.
fn fold_point(model: &GmmModel, x: &[f64], acc: &mut [f64]) {
    let k = model.weights.len();
    let d = model.means[0].len();
    let mut resp = vec![0.0; k];
    model.responsibilities(x, &mut resp);
    for (c, r) in resp.iter().enumerate() {
        let base = c * (1 + 2 * d);
        acc[base] += r;
        for (j, xi) in x.iter().enumerate() {
            acc[base + 1 + j] += r * xi;
            acc[base + 1 + d + j] += r * xi * xi;
        }
    }
}

/// GMM/EM on PlinyCompute.
pub struct PcGmm {
    pub client: PcClient,
    pub db: String,
    pub set: String,
    pub model: GmmModel,
    n: usize,
}

impl PcGmm {
    pub fn init(
        client: &PcClient,
        db: &str,
        set: &str,
        points: &[Vec<f64>],
        k: usize,
    ) -> PcResult<Self> {
        client.create_or_clear_set(db, set)?;
        client.store(db, set, points.len(), |i| {
            let p = &points[i];
            let obj = make_object::<DataPoint>()?;
            let v = make_object::<PcVec<f64>>()?;
            v.extend_from_slice(p)?;
            obj.v().set_data(v)?;
            Ok(obj.erase())
        })?;
        Ok(PcGmm {
            client: client.clone(),
            db: db.to_string(),
            set: set.to_string(),
            model: GmmModel::init(points, k),
            n: points.len(),
        })
    }

    pub fn iterate(&mut self) -> PcResult<()> {
        let stats = self
            .client
            .set::<DataPoint>(&self.db, &self.set)
            .aggregate(GmmAgg {
                model: Arc::new(self.model.clone()),
            })
            .collect()?;
        // One packed stat object comes back; unpack per component.
        let k = self.model.weights.len();
        let d = self.model.means[0].len();
        for stat in stats {
            let sv = stat.v().stats();
            let s = sv.as_slice();
            let per: Vec<(usize, Vec<f64>)> = (0..k)
                .map(|c| (c, s[c * (1 + 2 * d)..(c + 1) * (1 + 2 * d)].to_vec()))
                .collect();
            self.model.update(&per, self.n as f64);
        }
        Ok(())
    }
}

/// The baseline (mllib-style) GMM over the RDD API.
pub struct BaselineGmm {
    pub points: Rdd<Vec<f64>>,
    pub model: GmmModel,
    n: usize,
}

impl BaselineGmm {
    pub fn init(eng: &SparkLike, points: Vec<Vec<f64>>, k: usize) -> Self {
        let model = GmmModel::init(&points, k);
        let n = points.len();
        BaselineGmm {
            points: eng.parallelize(points),
            model,
            n,
        }
    }

    pub fn iterate(&mut self) {
        let model = Arc::new(self.model.clone());
        let k = model.weights.len();
        let d = model.means[0].len();
        let stats: Rdd<(i64, Vec<f64>)> = self.points.map_partitions(move |part| {
            let mut acc = vec![0.0; k * (1 + 2 * d)];
            for x in &part {
                fold_point(&model, x, &mut acc);
            }
            vec![(0i64, acc)]
        });
        let reduced = stats.reduce_by_key(|mut a, b| {
            for (x, y) in a.iter_mut().zip(&b) {
                *x += y;
            }
            a
        });
        for (_, s) in reduced.collect() {
            let per: Vec<(usize, Vec<f64>)> = (0..k)
                .map(|c| (c, s[c * (1 + 2 * d)..(c + 1) * (1 + 2 * d)].to_vec()))
                .collect();
            self.model.update(&per, self.n as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::synthetic_points;
    use pc_baseline::{SparkConfig, StorageLevel};

    #[test]
    fn pc_and_baseline_gmm_learn_identically() {
        let pts = synthetic_points(200, 3, 2, 5);
        let client = PcClient::local_small().unwrap();
        let mut pc = PcGmm::init(&client, "ml", "gmmpts", &pts, 2).unwrap();
        let eng = SparkLike::new(SparkConfig {
            partitions: 2,
            storage: StorageLevel::Serialized,
            ..Default::default()
        });
        let mut base = BaselineGmm::init(&eng, pts, 2);
        for _ in 0..4 {
            pc.iterate().unwrap();
            base.iterate();
        }
        assert!(
            pc.model.max_abs_diff(&base.model) < 1e-9,
            "diff {}",
            pc.model.max_abs_diff(&base.model)
        );
        // Components must have separated onto the two clusters.
        assert!(pc.model.means[0] != pc.model.means[1]);
    }
}
