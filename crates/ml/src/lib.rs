//! # pc-ml — machine learning on PlinyCompute (§8.5)
//!
//! The three iterative algorithms the paper benchmarks, each implemented
//! twice: on PC (computation graphs over page-resident objects) and on the
//! managed-runtime baseline (`pc-baseline`), algorithmically equivalent:
//!
//! * [`kmeans`] — Appendix A's aggregation-only k-means, with the
//!   norm lower-bound pruning trick of §8.5.1;
//! * [`gmm`] — EM for a diagonal-covariance Gaussian mixture via a single
//!   `AggregateComp` carrying the model, with the log-space trick;
//! * [`lda`] — the word-based, non-collapsed Gibbs sampler: a join of
//!   (doc, word, count) triples against per-doc topic probabilities and
//!   per-word topic probabilities, multinomial assignment sampling, and
//!   Dirichlet resampling of both factor matrices. The baseline version
//!   exposes Table 4's tuning ladder (vanilla → join hint → persist →
//!   hand-coded multinomial).
//!
//! Sampling uses [`sampling`] (Marsaglia-Tsang gamma → Dirichlet,
//! cumulative-scan multinomial), replacing the paper's GSL.

pub mod gmm;
pub mod kmeans;
pub mod lda;
pub mod sampling;
