//! The storage manager: named sets of pages, backed by the buffer pool.

use crate::catalog::Catalog;
use crate::pool::BufferPool;
use parking_lot::RwLock;
use pc_object::{PcError, PcResult, SealedPage};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Numeric identity of a set inside one storage manager.
pub type SetId = u64;

/// One node's storage service: a catalog of sets plus a buffer pool of
/// their pages. Cloning shares the underlying storage.
#[derive(Clone)]
pub struct StorageManager {
    inner: Arc<StorageInner>,
}

struct StorageInner {
    catalog: Arc<Catalog>,
    pool: BufferPool,
    ids: RwLock<HashMap<(String, String), SetId>>,
    pages: RwLock<HashMap<SetId, usize>>,
    next_id: AtomicU64,
}

impl StorageManager {
    /// Creates a storage manager with `pool_capacity` bytes of page cache,
    /// spilling under `dir`.
    pub fn new(catalog: Arc<Catalog>, pool_capacity: usize, dir: PathBuf) -> PcResult<Self> {
        Self::with_pressure(catalog, pool_capacity, dir, None)
    }

    /// Like [`Self::new`], with a seeded memory-pressure injection schedule
    /// armed on the pool's budget (chaos testing).
    pub fn with_pressure(
        catalog: Arc<Catalog>,
        pool_capacity: usize,
        dir: PathBuf,
        pressure: Option<pc_object::PressureSpec>,
    ) -> PcResult<Self> {
        Ok(StorageManager {
            inner: Arc::new(StorageInner {
                catalog,
                pool: BufferPool::with_pressure(pool_capacity, dir, pressure)?,
                ids: RwLock::new(HashMap::new()),
                pages: RwLock::new(HashMap::new()),
                next_id: AtomicU64::new(1),
            }),
        })
    }

    /// Convenience constructor with a temp spill dir and a large cache.
    pub fn in_temp(label: &str) -> PcResult<Self> {
        let dir = std::env::temp_dir().join(format!("pcstore_{label}_{}", std::process::id()));
        Self::new(Arc::new(Catalog::new()), 1 << 30, dir)
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.inner.catalog
    }

    pub fn pool(&self) -> &BufferPool {
        &self.inner.pool
    }

    fn set_id(&self, db: &str, set: &str) -> SetId {
        let key = (db.to_string(), set.to_string());
        if let Some(id) = self.inner.ids.read().get(&key) {
            return *id;
        }
        let mut ids = self.inner.ids.write();
        *ids.entry(key)
            .or_insert_with(|| self.inner.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Creates a set (errors if it exists).
    pub fn create_set(&self, db: &str, set: &str) -> PcResult<()> {
        self.inner.catalog.create_set(db, set)?;
        let id = self.set_id(db, set);
        self.inner.pages.write().insert(id, 0);
        Ok(())
    }

    /// Creates the set if missing, clears it if present.
    pub fn create_or_clear_set(&self, db: &str, set: &str) -> PcResult<()> {
        self.inner.catalog.ensure_set(db, set);
        self.inner.catalog.reset_set(db, set);
        let id = self.set_id(db, set);
        self.inner.pages.write().insert(id, 0);
        self.inner.pool.drop_set(id);
        Ok(())
    }

    /// Appends a sealed page to a set.
    pub fn append_page(&self, db: &str, set: &str, page: SealedPage) -> PcResult<()> {
        if !self.inner.catalog.exists(db, set) {
            return Err(PcError::Catalog(format!("set {db}.{set} does not exist")));
        }
        let objects = count_objects(&page);
        let bytes = page.used() as u64;
        let id = self.set_id(db, set);
        let n = {
            let mut pages = self.inner.pages.write();
            let slot = pages.entry(id).or_insert(0);
            let n = *slot;
            *slot += 1;
            n
        };
        self.inner.pool.put((id, n), page)?;
        self.inner.catalog.record_append(db, set, objects, bytes);
        Ok(())
    }

    /// Number of pages stored for a set.
    pub fn page_count(&self, db: &str, set: &str) -> usize {
        let id = self.set_id(db, set);
        self.inner.pages.read().get(&id).copied().unwrap_or(0)
    }

    /// Fetches one page of a set (pinning it while the `Arc` is held).
    pub fn page(&self, db: &str, set: &str, n: usize) -> PcResult<Arc<SealedPage>> {
        let id = self.set_id(db, set);
        self.inner.pool.get((id, n))
    }

    /// Fetches all pages of a set in order.
    pub fn scan(&self, db: &str, set: &str) -> PcResult<Vec<Arc<SealedPage>>> {
        let n = self.page_count(db, set);
        (0..n).map(|i| self.page(db, set, i)).collect()
    }

    /// Evicts everything evictable to the file store (cold-start setup).
    pub fn flush_all(&self) -> PcResult<()> {
        self.inner.pool.flush_all()
    }

    /// Drops a set and its pages.
    pub fn drop_set(&self, db: &str, set: &str) {
        let id = self.set_id(db, set);
        self.inner.pages.write().remove(&id);
        self.inner.pool.drop_set(id);
        self.inner.catalog.drop_set(db, set);
    }
}

/// Counts root-vector entries on a page (for catalog statistics).
fn count_objects(page: &SealedPage) -> u64 {
    // The root of a set page is a PcVec<Handle<AnyObj>>; its length prefix
    // sits at the root offset. A page with a different root still ships;
    // we just report zero objects for it.
    let bytes = page.payload();
    let root = page.root() as usize;
    if root + 4 <= bytes.len() {
        u32::from_le_bytes(bytes[root..root + 4].try_into().unwrap()) as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_object::{make_object, AllocScope, AnyObj, Handle, PcVec};

    fn page_with_n_objects(n: usize) -> SealedPage {
        let scope = AllocScope::new(1 << 16);
        let root = make_object::<PcVec<Handle<AnyObj>>>().unwrap();
        for i in 0..n {
            let v = make_object::<PcVec<i64>>().unwrap();
            v.push(i as i64).unwrap();
            root.push(v.erase().as_any_obj()).unwrap();
        }
        scope.block().set_root(&root);
        drop(root);
        let b = scope.block().clone();
        drop(scope);
        b.try_seal().unwrap()
    }

    #[test]
    fn set_lifecycle_and_scan() {
        let s = StorageManager::in_temp("lifecycle").unwrap();
        s.create_set("db", "xs").unwrap();
        s.append_page("db", "xs", page_with_n_objects(5)).unwrap();
        s.append_page("db", "xs", page_with_n_objects(7)).unwrap();
        assert_eq!(s.page_count("db", "xs"), 2);
        let meta = s.catalog().set_meta("db", "xs").unwrap();
        assert_eq!(meta.objects, 12);
        let pages = s.scan("db", "xs").unwrap();
        assert_eq!(pages.len(), 2);
        s.drop_set("db", "xs");
        assert!(s.append_page("db", "xs", page_with_n_objects(1)).is_err());
    }

    #[test]
    fn cold_scan_after_flush() {
        let s = StorageManager::in_temp("cold").unwrap();
        s.create_set("db", "cold").unwrap();
        for _ in 0..4 {
            s.append_page("db", "cold", page_with_n_objects(3)).unwrap();
        }
        s.flush_all().unwrap();
        let stats_before = s.pool().stats();
        let pages = s.scan("db", "cold").unwrap();
        assert_eq!(pages.len(), 4);
        let stats_after = s.pool().stats();
        assert!(
            stats_after.misses > stats_before.misses,
            "cold scan must fault pages back"
        );
    }
}
