//! The catalog manager (§2, §6.3, Appendix D.1).
//!
//! The master catalog tracks databases, sets, and registered object types.
//! Worker front-end processes keep a *local* catalog that faults missing
//! entries from the master — in the original system that fault ships a
//! compiled `.so` and calls `getVTablePtr()`; here the vtables live in the
//! process-wide registry, and [`WorkerTypeCatalog`] reproduces the
//! fetch-on-miss protocol (and its statistics) faithfully.

use parking_lot::RwLock;
use pc_object::{registry, PcError, PcResult, TypeCode};
use std::collections::{HashMap, HashSet};

/// Metadata about one stored set.
#[derive(Debug, Clone, Default)]
pub struct SetMeta {
    pub db: String,
    pub set: String,
    /// Number of stored pages.
    pub pages: usize,
    /// Total objects across pages.
    pub objects: u64,
    /// Total bytes across page payloads.
    pub bytes: u64,
}

/// The master catalog: system metadata served to every node.
#[derive(Default)]
pub struct Catalog {
    sets: RwLock<HashMap<(String, String), SetMeta>>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn create_set(&self, db: &str, set: &str) -> PcResult<()> {
        let mut sets = self.sets.write();
        let key = (db.to_string(), set.to_string());
        if sets.contains_key(&key) {
            return Err(PcError::Catalog(format!("set {db}.{set} already exists")));
        }
        sets.insert(
            key,
            SetMeta {
                db: db.to_string(),
                set: set.to_string(),
                ..Default::default()
            },
        );
        Ok(())
    }

    pub fn ensure_set(&self, db: &str, set: &str) {
        let mut sets = self.sets.write();
        sets.entry((db.to_string(), set.to_string()))
            .or_insert_with(|| SetMeta {
                db: db.to_string(),
                set: set.to_string(),
                ..Default::default()
            });
    }

    pub fn drop_set(&self, db: &str, set: &str) {
        self.sets.write().remove(&(db.to_string(), set.to_string()));
    }

    pub fn set_meta(&self, db: &str, set: &str) -> Option<SetMeta> {
        self.sets
            .read()
            .get(&(db.to_string(), set.to_string()))
            .cloned()
    }

    pub fn exists(&self, db: &str, set: &str) -> bool {
        self.sets
            .read()
            .contains_key(&(db.to_string(), set.to_string()))
    }

    pub fn record_append(&self, db: &str, set: &str, objects: u64, bytes: u64) {
        if let Some(m) = self
            .sets
            .write()
            .get_mut(&(db.to_string(), set.to_string()))
        {
            m.pages += 1;
            m.objects += objects;
            m.bytes += bytes;
        }
    }

    pub fn reset_set(&self, db: &str, set: &str) {
        if let Some(m) = self
            .sets
            .write()
            .get_mut(&(db.to_string(), set.to_string()))
        {
            m.pages = 0;
            m.objects = 0;
            m.bytes = 0;
        }
    }

    pub fn list_sets(&self) -> Vec<SetMeta> {
        let mut v: Vec<SetMeta> = self.sets.read().values().cloned().collect();
        v.sort_by(|a, b| (a.db.clone(), a.set.clone()).cmp(&(b.db.clone(), b.set.clone())));
        v
    }
}

/// A worker's local type catalog: resolves type codes, faulting unknown ones
/// from the master (the `.so`-shipping protocol of §6.3).
pub struct WorkerTypeCatalog {
    known: RwLock<HashSet<TypeCode>>,
    /// How many times a missing type had to be fetched from the master.
    fetches: RwLock<u64>,
}

impl Default for WorkerTypeCatalog {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerTypeCatalog {
    pub fn new() -> Self {
        WorkerTypeCatalog {
            known: RwLock::new(HashSet::new()),
            fetches: RwLock::new(0),
        }
    }

    /// Resolves a type code: a hit on the local table is free; a miss
    /// "ships the .so" (consults the process registry) and caches it.
    pub fn resolve(&self, code: TypeCode) -> PcResult<&'static pc_object::TypeVTable> {
        if !self.known.read().contains(&code) {
            *self.fetches.write() += 1;
            let vt = registry::require_vtable(code)?;
            self.known.write().insert(code);
            return Ok(vt);
        }
        registry::require_vtable(code)
    }

    /// Number of catalog fetches performed so far.
    pub fn fetches(&self) -> u64 {
        *self.fetches.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_object::PcObjType;

    #[test]
    fn create_and_drop_sets() {
        let c = Catalog::new();
        c.create_set("db", "a").unwrap();
        assert!(c.create_set("db", "a").is_err());
        assert!(c.exists("db", "a"));
        c.record_append("db", "a", 10, 4096);
        assert_eq!(c.set_meta("db", "a").unwrap().objects, 10);
        c.drop_set("db", "a");
        assert!(!c.exists("db", "a"));
    }

    #[test]
    fn worker_catalog_faults_once_per_type() {
        pc_object::ensure_builtins_registered();
        let w = WorkerTypeCatalog::new();
        let code = pc_object::containers::PcString::type_code();
        w.resolve(code).unwrap();
        w.resolve(code).unwrap();
        assert_eq!(w.fetches(), 1);
        // Unknown codes are a catalog error (missing .so).
        assert!(w.resolve(TypeCode(0xdeadbeef)).is_err());
    }
}
