//! # pc-storage — PlinyCompute's storage services
//!
//! The storage subsystem of §2 and Appendix D.1: a database/set **catalog**,
//! a **buffer pool** that pins pages in RAM and spills cold pages to a
//! user-level file store, and the **type catalog** simulation of PC's `.so`
//! shipping (worker-local type tables faulting to the master).
//!
//! Pages enter and leave storage as [`SealedPage`]s: writing a set to disk
//! is `memcpy` of the page payload, reading it back is the same — there is
//! no serialization layer anywhere (the object model's zero-cost movement
//! property, §3).
//!
//! [`SealedPage`]: pc_object::SealedPage

pub mod catalog;
pub mod pool;
pub mod store;

pub use catalog::{Catalog, SetMeta, WorkerTypeCatalog};
pub use pool::{BufferPool, PoolStats, SpillSet};
pub use store::{SetId, StorageManager};
