//! The buffer pool (§2, Appendix D.1).
//!
//! Pages live in RAM as shared [`SealedPage`]s; under memory pressure,
//! unpinned pages are evicted to the user-level file store (one file per
//! page) and faulted back on access. Eviction and reload move raw page
//! bytes — never a serializer. A page is *pinned* while anyone outside the
//! pool holds its `Arc`; pinned pages are never evicted (the paper's rule
//! that input pages stay buffered while vector lists built from them are in
//! flight).

use parking_lot::Mutex;
use pc_object::{PcError, PcResult, SealedPage};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Identifies one page of one set.
pub type PageKey = (u64, usize); // (set id, page number)

/// Buffer pool statistics (exposed for the hot/cold storage experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub resident_bytes: usize,
    pub resident_pages: usize,
}

/// A resident page plus its recency stamp.
struct Resident {
    page: Arc<SealedPage>,
    /// Generation stamp: monotonically increasing, bumped on every touch.
    /// The LRU victim is simply the unpinned page with the smallest stamp —
    /// hits are O(1) (one counter bump), and only eviction scans.
    stamp: u64,
}

struct PoolInner {
    resident: HashMap<PageKey, Resident>,
    /// Next generation stamp to hand out.
    tick: u64,
    used_bytes: usize,
    stats: PoolStats,
}

impl PoolInner {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// A capacity-bounded page cache with spill-to-file eviction.
pub struct BufferPool {
    capacity: usize,
    dir: PathBuf,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` bytes of resident pages,
    /// spilling into `dir`.
    pub fn new(capacity: usize, dir: PathBuf) -> PcResult<Self> {
        std::fs::create_dir_all(&dir)
            .map_err(|e| PcError::Catalog(format!("cannot create pool dir: {e}")))?;
        Ok(BufferPool {
            capacity,
            dir,
            inner: Mutex::new(PoolInner {
                resident: HashMap::new(),
                tick: 0,
                used_bytes: 0,
                stats: PoolStats::default(),
            }),
        })
    }

    fn file_for(&self, key: PageKey) -> PathBuf {
        self.dir.join(format!("set{}_page{}.pcpage", key.0, key.1))
    }

    /// Inserts a freshly produced page, evicting cold pages if needed.
    pub fn put(&self, key: PageKey, page: SealedPage) -> PcResult<Arc<SealedPage>> {
        let page = Arc::new(page);
        let mut inner = self.inner.lock();
        inner.used_bytes += page.used();
        let stamp = inner.touch();
        let replaced = inner.resident.insert(
            key,
            Resident {
                page: page.clone(),
                stamp,
            },
        );
        if let Some(old) = replaced {
            // Re-inserting an already-resident key (or losing a concurrent
            // fault race) must not leak phantom bytes into the accounting.
            inner.used_bytes -= old.page.used();
        }
        self.evict_if_needed(&mut inner)?;
        Ok(page)
    }

    /// Fetches a page, faulting it from the file store if evicted. A hit is
    /// O(1): one hash lookup plus a generation-stamp bump.
    pub fn get(&self, key: PageKey) -> PcResult<Arc<SealedPage>> {
        {
            let mut inner = self.inner.lock();
            let stamp = inner.touch();
            if let Some(r) = inner.resident.get_mut(&key) {
                r.stamp = stamp;
                let page = r.page.clone();
                inner.stats.hits += 1;
                return Ok(page);
            }
            inner.stats.misses += 1;
        }
        // Fault from file (one read + one memcpy; no decode).
        let bytes = std::fs::read(self.file_for(key))
            .map_err(|e| PcError::Catalog(format!("page {key:?} not on disk: {e}")))?;
        let page = Arc::new(SealedPage::from_bytes(&bytes)?);
        let mut inner = self.inner.lock();
        inner.used_bytes += page.used();
        let stamp = inner.touch();
        let replaced = inner.resident.insert(
            key,
            Resident {
                page: page.clone(),
                stamp,
            },
        );
        if let Some(old) = replaced {
            // Two threads can race the same fault; only one copy stays
            // resident, so only one copy's bytes may count.
            inner.used_bytes -= old.page.used();
        }
        self.evict_if_needed(&mut inner)?;
        Ok(page)
    }

    /// Drops all pages of a set (and their spill files).
    pub fn drop_set(&self, set_id: u64, pages: usize) {
        let mut inner = self.inner.lock();
        for n in 0..pages {
            let key = (set_id, n);
            if let Some(r) = inner.resident.remove(&key) {
                inner.used_bytes -= r.page.used();
            }
            let _ = std::fs::remove_file(self.file_for(key));
        }
    }

    /// Forces every unpinned page out to files (cold-storage experiments),
    /// oldest first.
    pub fn flush_all(&self) -> PcResult<()> {
        let mut inner = self.inner.lock();
        let mut keys: Vec<(u64, PageKey)> =
            inner.resident.iter().map(|(k, r)| (r.stamp, *k)).collect();
        keys.sort_unstable();
        for (_, key) in keys {
            self.evict_one(&mut inner, key)?;
        }
        Ok(())
    }

    fn evict_if_needed(&self, inner: &mut PoolInner) -> PcResult<()> {
        while inner.used_bytes > self.capacity {
            // The LRU victim: smallest stamp among unpinned pages. Only the
            // eviction path scans; hits never do.
            let victim = inner
                .resident
                .iter()
                .filter(|(_, r)| Arc::strong_count(&r.page) == 1)
                .min_by_key(|(_, r)| r.stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(key) => self.evict_one(inner, key)?,
                None => break, // everything pinned; allow temporary overshoot
            }
        }
        Ok(())
    }

    fn evict_one(&self, inner: &mut PoolInner, key: PageKey) -> PcResult<()> {
        let Some(r) = inner.resident.get(&key) else {
            return Ok(());
        };
        if Arc::strong_count(&r.page) > 1 {
            return Ok(()); // pinned
        }
        let path = self.file_for(key);
        if !path.exists() {
            std::fs::write(&path, r.page.to_bytes())
                .map_err(|e| PcError::Catalog(format!("evict write failed: {e}")))?;
        }
        let r = inner.resident.remove(&key).unwrap();
        inner.used_bytes -= r.page.used();
        inner.stats.evictions += 1;
        Ok(())
    }

    /// Writes a page straight to the file store without caching it
    /// (initial bulk loads in cold-storage experiments).
    pub fn write_through(&self, key: PageKey, page: &SealedPage) -> PcResult<()> {
        std::fs::write(self.file_for(key), page.to_bytes())
            .map_err(|e| PcError::Catalog(format!("write-through failed: {e}")))
    }

    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        PoolStats {
            resident_bytes: inner.used_bytes,
            resident_pages: inner.resident.len(),
            ..inner.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_object::{make_object, AllocScope, PcVec};

    fn page_of(vals: &[f64]) -> SealedPage {
        let scope = AllocScope::new(1 << 14);
        let v = make_object::<PcVec<f64>>().unwrap();
        v.extend_from_slice(vals).unwrap();
        scope.block().set_root(&v);
        drop(v);
        let b = scope.block().clone();
        drop(scope);
        b.try_seal().unwrap()
    }

    #[test]
    fn eviction_and_refault_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pcpool_test_{}", std::process::id()));
        let pool = BufferPool::new(8 * 1024, dir.clone()).unwrap();
        // Insert pages well beyond capacity.
        for i in 0..20 {
            pool.put((1, i), page_of(&[i as f64; 256])).unwrap();
        }
        let s = pool.stats();
        assert!(s.evictions > 0, "pool must evict beyond capacity");
        // Every page must still be readable (faulted from files).
        for i in 0..20 {
            let p = pool.get((1, i)).unwrap();
            let (_b, root) = SealedPage::from_bytes(&p.to_bytes())
                .unwrap()
                .open()
                .unwrap();
            let v = root.downcast::<PcVec<f64>>().unwrap();
            assert_eq!(v.get(0), i as f64);
        }
        pool.drop_set(1, 20);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn reinserting_a_resident_key_does_not_leak_accounting() {
        let dir = std::env::temp_dir().join(format!("pcpool_reins_{}", std::process::id()));
        let pool = BufferPool::new(1 << 20, dir.clone()).unwrap();
        let once = pool.put((5, 0), page_of(&[1.0; 64])).unwrap();
        let used_once = pool.stats().resident_bytes;
        drop(once);
        // Re-inserting the same key (the shape of a lost fault race) must
        // replace the resident page, not double-count its bytes.
        let _again = pool.put((5, 0), page_of(&[2.0; 64])).unwrap();
        assert_eq!(pool.stats().resident_bytes, used_once);
        assert_eq!(pool.stats().resident_pages, 1);
        pool.drop_set(5, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn hits_refresh_recency_and_eviction_follows_lru_order() {
        let dir = std::env::temp_dir().join(format!("pcpool_lru_{}", std::process::id()));
        // Size the pool to hold exactly three of our test pages, so the
        // fourth put evicts exactly one victim.
        let probe = page_of(&[0.0; 128]);
        let sz = probe.used();
        let pool = BufferPool::new(3 * sz + sz / 2, dir.clone()).unwrap();
        for i in 0..3 {
            // Drop the returned Arc immediately: pages are unpinned.
            pool.put((9, i), page_of(&[i as f64; 128])).unwrap();
        }
        // Touch page 0 on the hit path: it must become the most recent.
        let _ = pool.get((9, 0)).unwrap();
        // Pressure: page 1 is now the least recently used and must go.
        pool.put((9, 3), page_of(&[3.0; 128])).unwrap();
        let s = pool.stats();
        assert_eq!(s.evictions, 1, "exactly one page over capacity");
        let hits_before = s.hits;
        let _ = pool.get((9, 0)).unwrap(); // refreshed → still resident
        let _ = pool.get((9, 2)).unwrap(); // newer than 1 → still resident
        assert_eq!(pool.stats().hits, hits_before + 2);
        let misses_before = pool.stats().misses;
        let _ = pool.get((9, 1)).unwrap(); // the LRU victim → faulted back
        assert_eq!(pool.stats().misses, misses_before + 1);
        pool.drop_set(9, 4);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let dir = std::env::temp_dir().join(format!("pcpool_pin_{}", std::process::id()));
        let pool = BufferPool::new(4 * 1024, dir.clone()).unwrap();
        let pinned = pool.put((2, 0), page_of(&[7.0; 128])).unwrap();
        for i in 1..10 {
            pool.put((2, i), page_of(&[i as f64; 128])).unwrap();
        }
        // The pinned page must still be resident (we hold its Arc).
        let again = pool.get((2, 0)).unwrap();
        assert!(
            Arc::ptr_eq(&pinned, &again),
            "pinned page must not be evicted"
        );
        pool.drop_set(2, 10);
        let _ = std::fs::remove_dir_all(dir);
    }
}
