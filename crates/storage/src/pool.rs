//! The buffer pool (§2, Appendix D.1).
//!
//! Pages live in RAM as shared [`SealedPage`]s; under memory pressure,
//! unpinned pages are evicted to the user-level file store (one file per
//! page) and faulted back on access. Eviction and reload move raw page
//! bytes — never a serializer. A page is *pinned* while anyone outside the
//! pool holds its `Arc`; pinned pages are never evicted (the paper's rule
//! that input pages stay buffered while vector lists built from them are in
//! flight).
//!
//! The pool also arbitrates *operator* working memory: its capacity backs a
//! shared [`MemoryBudget`] that join builds and aggregation sinks reserve
//! against, and operators that lose a reservation spill page chains through
//! a [`SpillSet`] — a pool-managed spill namespace whose files are tracked
//! internally, so an early abort can never leak them.

use parking_lot::Mutex;
use pc_object::{MemoryBudget, PageSpiller, PcError, PcResult, PressureSpec, SealedPage};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Identifies one page of one set.
pub type PageKey = (u64, usize); // (set id, page number)

/// Set ids at or above this base are operator spill sets (see
/// [`BufferPool::spill_set`]); the storage manager's catalog ids stay far
/// below it, so spill files are recognizable by name alone.
const SPILL_SET_BASE: u64 = 1 << 32;

/// Buffer pool statistics (exposed for the hot/cold storage experiments and
/// the out-of-core workload tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Operator pages spilled through a [`SpillSet`] (grace-style spilling),
    /// as distinct from LRU `evictions` of stored-set pages.
    pub spills: u64,
    /// Total bytes written by operator spills.
    pub bytes_spilled: u64,
    pub resident_bytes: usize,
    pub resident_pages: usize,
}

/// A resident page plus its recency stamp.
struct Resident {
    page: Arc<SealedPage>,
    /// Generation stamp: monotonically increasing, bumped on every touch.
    /// The LRU victim is simply the unpinned page with the smallest stamp —
    /// hits are O(1) (one counter bump), and only eviction scans.
    stamp: u64,
}

struct PoolInner {
    resident: HashMap<PageKey, Resident>,
    /// Every page number ever materialized per set (resident or on disk).
    /// `drop_set` walks this — never a caller-supplied count — so no spill
    /// or eviction file can outlive its set.
    set_keys: HashMap<u64, HashSet<usize>>,
    /// Next generation stamp to hand out.
    tick: u64,
    used_bytes: usize,
    stats: PoolStats,
}

impl PoolInner {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn track(&mut self, key: PageKey) {
        self.set_keys.entry(key.0).or_default().insert(key.1);
    }
}

struct PoolShared {
    capacity: usize,
    dir: PathBuf,
    budget: MemoryBudget,
    next_spill_set: AtomicU64,
    inner: Mutex<PoolInner>,
}

/// A capacity-bounded page cache with spill-to-file eviction. Cloning is
/// cheap and shares the pool.
#[derive(Clone)]
pub struct BufferPool {
    shared: Arc<PoolShared>,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` bytes of resident pages,
    /// spilling into `dir`. The same `capacity` backs the pool's operator
    /// [`MemoryBudget`]: reserved operator bytes displace cached pages.
    pub fn new(capacity: usize, dir: PathBuf) -> PcResult<Self> {
        Self::with_pressure(capacity, dir, None)
    }

    /// Like [`new`](Self::new), with seeded memory-pressure injection armed
    /// on the operator budget (chaos testing).
    pub fn with_pressure(
        capacity: usize,
        dir: PathBuf,
        pressure: Option<PressureSpec>,
    ) -> PcResult<Self> {
        std::fs::create_dir_all(&dir)
            .map_err(|e| PcError::Catalog(format!("cannot create pool dir: {e}")))?;
        Ok(BufferPool {
            shared: Arc::new(PoolShared {
                capacity,
                dir,
                budget: MemoryBudget::with_pressure(capacity, pressure),
                next_spill_set: AtomicU64::new(SPILL_SET_BASE),
                inner: Mutex::new(PoolInner {
                    resident: HashMap::new(),
                    set_keys: HashMap::new(),
                    tick: 0,
                    used_bytes: 0,
                    stats: PoolStats::default(),
                }),
            }),
        })
    }

    /// The pool's byte capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// The operator memory budget backed by this pool's capacity. Cloning
    /// the returned handle shares the ledger.
    pub fn budget(&self) -> MemoryBudget {
        self.shared.budget.clone()
    }

    fn file_for(&self, key: PageKey) -> PathBuf {
        self.shared
            .dir
            .join(format!("set{}_page{}.pcpage", key.0, key.1))
    }

    /// Inserts a freshly produced page, evicting cold pages if needed.
    pub fn put(&self, key: PageKey, page: SealedPage) -> PcResult<Arc<SealedPage>> {
        let page = Arc::new(page);
        let mut inner = self.shared.inner.lock();
        inner.track(key);
        inner.used_bytes += page.used();
        let stamp = inner.touch();
        let replaced = inner.resident.insert(
            key,
            Resident {
                page: page.clone(),
                stamp,
            },
        );
        if let Some(old) = replaced {
            // Re-inserting an already-resident key (or losing a concurrent
            // fault race) must not leak phantom bytes into the accounting.
            inner.used_bytes -= old.page.used();
        }
        self.evict_if_needed(&mut inner)?;
        Ok(page)
    }

    /// Fetches a page, faulting it from the file store if evicted. A hit is
    /// O(1): one hash lookup plus a generation-stamp bump.
    pub fn get(&self, key: PageKey) -> PcResult<Arc<SealedPage>> {
        {
            let mut inner = self.shared.inner.lock();
            let stamp = inner.touch();
            if let Some(r) = inner.resident.get_mut(&key) {
                r.stamp = stamp;
                let page = r.page.clone();
                inner.stats.hits += 1;
                return Ok(page);
            }
            inner.stats.misses += 1;
        }
        // Fault from file (one read + one memcpy; no decode).
        let bytes = std::fs::read(self.file_for(key))
            .map_err(|e| PcError::Catalog(format!("page {key:?} not on disk: {e}")))?;
        let page = Arc::new(SealedPage::from_bytes(&bytes)?);
        let mut inner = self.shared.inner.lock();
        inner.track(key);
        inner.used_bytes += page.used();
        let stamp = inner.touch();
        let replaced = inner.resident.insert(
            key,
            Resident {
                page: page.clone(),
                stamp,
            },
        );
        if let Some(old) = replaced {
            // Two threads can race the same fault; only one copy stays
            // resident, so only one copy's bytes may count.
            inner.used_bytes -= old.page.used();
        }
        self.evict_if_needed(&mut inner)?;
        Ok(page)
    }

    /// Drops all pages of a set (and their spill files). The page list is
    /// the pool's own key tracking — callers cannot under-report a count and
    /// strand files on disk.
    pub fn drop_set(&self, set_id: u64) {
        let mut inner = self.shared.inner.lock();
        let Some(pages) = inner.set_keys.remove(&set_id) else {
            return;
        };
        for n in pages {
            let key = (set_id, n);
            if let Some(r) = inner.resident.remove(&key) {
                inner.used_bytes -= r.page.used();
            }
            let _ = std::fs::remove_file(self.file_for(key));
        }
    }

    /// Forces every unpinned page out to files (cold-storage experiments),
    /// oldest first.
    pub fn flush_all(&self) -> PcResult<()> {
        let mut inner = self.shared.inner.lock();
        let mut keys: Vec<(u64, PageKey)> =
            inner.resident.iter().map(|(k, r)| (r.stamp, *k)).collect();
        keys.sort_unstable();
        for (_, key) in keys {
            self.evict_one(&mut inner, key)?;
        }
        Ok(())
    }

    fn evict_if_needed(&self, inner: &mut PoolInner) -> PcResult<()> {
        // Operator reservations displace cached pages: the cache may only
        // keep what the budget has not granted away.
        let target = self
            .shared
            .capacity
            .saturating_sub(self.shared.budget.reserved());
        while inner.used_bytes > target {
            // The LRU victim: smallest stamp among unpinned pages. Only the
            // eviction path scans; hits never do.
            let victim = inner
                .resident
                .iter()
                .filter(|(_, r)| Arc::strong_count(&r.page) == 1)
                .min_by_key(|(_, r)| r.stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(key) => self.evict_one(inner, key)?,
                None => break, // everything pinned; allow temporary overshoot
            }
        }
        Ok(())
    }

    fn evict_one(&self, inner: &mut PoolInner, key: PageKey) -> PcResult<()> {
        let Some(r) = inner.resident.get(&key) else {
            return Ok(());
        };
        if Arc::strong_count(&r.page) > 1 {
            return Ok(()); // pinned
        }
        let path = self.file_for(key);
        if !path.exists() {
            std::fs::write(&path, r.page.to_bytes())
                .map_err(|e| PcError::Catalog(format!("evict write failed: {e}")))?;
        }
        let r = inner.resident.remove(&key).unwrap();
        inner.used_bytes -= r.page.used();
        inner.stats.evictions += 1;
        Ok(())
    }

    /// Writes a page straight to the file store without caching it
    /// (initial bulk loads in cold-storage experiments).
    pub fn write_through(&self, key: PageKey, page: &SealedPage) -> PcResult<()> {
        self.shared.inner.lock().track(key);
        std::fs::write(self.file_for(key), page.to_bytes())
            .map_err(|e| PcError::Catalog(format!("write-through failed: {e}")))
    }

    /// Opens a fresh spill namespace: operators hand the returned
    /// [`SpillSet`] around as `Arc<dyn PageSpiller>`. Every spilled page is
    /// key-tracked by the pool, and the whole namespace is reclaimed when
    /// the `SpillSet` drops — including on an abort partway through a stage.
    pub fn spill_set(&self) -> SpillSet {
        SpillSet {
            pool: self.clone(),
            set_id: self.shared.next_spill_set.fetch_add(1, Ordering::Relaxed),
            next_page: AtomicUsize::new(0),
        }
    }

    /// Number of spill-set files currently on disk (zero after every clean
    /// run — the leak gate for the out-of-core workload and chaos tests).
    pub fn leaked_spill_files(&self) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.shared.dir) else {
            return 0;
        };
        entries
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy();
                name.strip_prefix("set")
                    .and_then(|rest| rest.split('_').next())
                    .and_then(|id| id.parse::<u64>().ok())
                    .is_some_and(|id| id >= SPILL_SET_BASE)
            })
            .count()
    }

    pub fn stats(&self) -> PoolStats {
        let inner = self.shared.inner.lock();
        PoolStats {
            resident_bytes: inner.used_bytes,
            resident_pages: inner.resident.len(),
            ..inner.stats
        }
    }
}

/// A pool-backed spill target for out-of-core operators. Pages written here
/// bypass the resident cache (a spilled chain is cold by definition); they
/// are reloaded page-at-a-time on the second pass and the whole namespace
/// is deleted when the set drops.
pub struct SpillSet {
    pool: BufferPool,
    set_id: u64,
    next_page: AtomicUsize,
}

impl SpillSet {
    /// The spill namespace's set id (useful in tests and diagnostics).
    pub fn set_id(&self) -> u64 {
        self.set_id
    }
}

impl PageSpiller for SpillSet {
    fn spill(&self, page: &SealedPage) -> PcResult<u64> {
        let n = self.next_page.fetch_add(1, Ordering::Relaxed);
        let key = (self.set_id, n);
        self.pool.write_through(key, page)?;
        let mut inner = self.pool.shared.inner.lock();
        inner.stats.spills += 1;
        inner.stats.bytes_spilled += page.used() as u64;
        Ok(n as u64)
    }

    fn reload(&self, token: u64) -> PcResult<SealedPage> {
        let key = (self.set_id, token as usize);
        let bytes = std::fs::read(self.pool.file_for(key))
            .map_err(|e| PcError::Catalog(format!("spilled page {key:?} not on disk: {e}")))?;
        SealedPage::from_bytes(&bytes)
    }

    fn discard(&self, token: u64) {
        let key = (self.set_id, token as usize);
        let _ = std::fs::remove_file(self.pool.file_for(key));
        // The key stays tracked; a tracked-but-deleted file makes drop_set's
        // remove_file a no-op, which is fine.
    }
}

impl Drop for SpillSet {
    fn drop(&mut self) {
        self.pool.drop_set(self.set_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_object::{make_object, AllocScope, PcVec};

    fn page_of(vals: &[f64]) -> SealedPage {
        let scope = AllocScope::new(1 << 14);
        let v = make_object::<PcVec<f64>>().unwrap();
        v.extend_from_slice(vals).unwrap();
        scope.block().set_root(&v);
        drop(v);
        let b = scope.block().clone();
        drop(scope);
        b.try_seal().unwrap()
    }

    #[test]
    fn eviction_and_refault_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pcpool_test_{}", std::process::id()));
        let pool = BufferPool::new(8 * 1024, dir.clone()).unwrap();
        // Insert pages well beyond capacity.
        for i in 0..20 {
            pool.put((1, i), page_of(&[i as f64; 256])).unwrap();
        }
        let s = pool.stats();
        assert!(s.evictions > 0, "pool must evict beyond capacity");
        // Every page must still be readable (faulted from files).
        for i in 0..20 {
            let p = pool.get((1, i)).unwrap();
            let (_b, root) = SealedPage::from_bytes(&p.to_bytes())
                .unwrap()
                .open()
                .unwrap();
            let v = root.downcast::<PcVec<f64>>().unwrap();
            assert_eq!(v.get(0), i as f64);
        }
        pool.drop_set(1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn reinserting_a_resident_key_does_not_leak_accounting() {
        let dir = std::env::temp_dir().join(format!("pcpool_reins_{}", std::process::id()));
        let pool = BufferPool::new(1 << 20, dir.clone()).unwrap();
        let once = pool.put((5, 0), page_of(&[1.0; 64])).unwrap();
        let used_once = pool.stats().resident_bytes;
        drop(once);
        // Re-inserting the same key (the shape of a lost fault race) must
        // replace the resident page, not double-count its bytes.
        let _again = pool.put((5, 0), page_of(&[2.0; 64])).unwrap();
        assert_eq!(pool.stats().resident_bytes, used_once);
        assert_eq!(pool.stats().resident_pages, 1);
        pool.drop_set(5);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn hits_refresh_recency_and_eviction_follows_lru_order() {
        let dir = std::env::temp_dir().join(format!("pcpool_lru_{}", std::process::id()));
        // Size the pool to hold exactly three of our test pages, so the
        // fourth put evicts exactly one victim.
        let probe = page_of(&[0.0; 128]);
        let sz = probe.used();
        let pool = BufferPool::new(3 * sz + sz / 2, dir.clone()).unwrap();
        for i in 0..3 {
            // Drop the returned Arc immediately: pages are unpinned.
            pool.put((9, i), page_of(&[i as f64; 128])).unwrap();
        }
        // Touch page 0 on the hit path: it must become the most recent.
        let _ = pool.get((9, 0)).unwrap();
        // Pressure: page 1 is now the least recently used and must go.
        pool.put((9, 3), page_of(&[3.0; 128])).unwrap();
        let s = pool.stats();
        assert_eq!(s.evictions, 1, "exactly one page over capacity");
        let hits_before = s.hits;
        let _ = pool.get((9, 0)).unwrap(); // refreshed → still resident
        let _ = pool.get((9, 2)).unwrap(); // newer than 1 → still resident
        assert_eq!(pool.stats().hits, hits_before + 2);
        let misses_before = pool.stats().misses;
        let _ = pool.get((9, 1)).unwrap(); // the LRU victim → faulted back
        assert_eq!(pool.stats().misses, misses_before + 1);
        pool.drop_set(9);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let dir = std::env::temp_dir().join(format!("pcpool_pin_{}", std::process::id()));
        let pool = BufferPool::new(4 * 1024, dir.clone()).unwrap();
        let pinned = pool.put((2, 0), page_of(&[7.0; 128])).unwrap();
        for i in 1..10 {
            pool.put((2, i), page_of(&[i as f64; 128])).unwrap();
        }
        // The pinned page must still be resident (we hold its Arc).
        let again = pool.get((2, 0)).unwrap();
        assert!(
            Arc::ptr_eq(&pinned, &again),
            "pinned page must not be evicted"
        );
        pool.drop_set(2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn operator_reservations_displace_cached_pages() {
        let dir = std::env::temp_dir().join(format!("pcpool_budget_{}", std::process::id()));
        let probe = page_of(&[0.0; 128]);
        let sz = probe.used();
        let pool = BufferPool::new(4 * sz, dir.clone()).unwrap();
        for i in 0..3 {
            pool.put((3, i), page_of(&[i as f64; 128])).unwrap();
        }
        assert_eq!(pool.stats().evictions, 0);
        // Reserving half the capacity squeezes the cache on the next touch.
        let g = pool.budget().reserve(2 * sz).unwrap();
        pool.put((3, 3), page_of(&[3.0; 128])).unwrap();
        let s = pool.stats();
        assert!(
            s.evictions >= 2,
            "grant must displace cached pages, evictions = {}",
            s.evictions
        );
        assert!(s.resident_bytes + pool.budget().reserved() <= pool.capacity());
        drop(g);
        pool.drop_set(3);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn spill_set_tracks_and_reclaims_its_files() {
        let dir = std::env::temp_dir().join(format!("pcpool_spill_{}", std::process::id()));
        let pool = BufferPool::new(1 << 20, dir.clone()).unwrap();
        let spiller = pool.spill_set();
        let page = page_of(&[42.0; 64]);
        let want = page.to_bytes();
        let t0 = spiller.spill(&page).unwrap();
        let t1 = spiller.spill(&page_of(&[7.0; 64])).unwrap();
        assert_ne!(t0, t1);
        assert_eq!(pool.leaked_spill_files(), 2);
        let back = spiller.reload(t0).unwrap();
        assert_eq!(back.to_bytes(), want);
        let s = pool.stats();
        assert_eq!(s.spills, 2);
        assert!(s.bytes_spilled > 0);
        // Dropping the namespace reclaims every file — even ones never
        // reloaded (the early-abort shape).
        drop(spiller);
        assert_eq!(pool.leaked_spill_files(), 0);
        let _ = std::fs::remove_dir_all(dir);
    }
}
