//! Property test: the buffer pool must behave like a perfect page store
//! under arbitrary put/get/flush sequences — eviction and refaulting are
//! invisible to readers.

use pc_object::{make_object, AllocScope, PageSpiller, PcVec, PressureSpec, SealedPage};
use pc_storage::BufferPool;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn page_of(tag: u64) -> SealedPage {
    let scope = AllocScope::new(8 * 1024);
    let v = make_object::<PcVec<i64>>().unwrap();
    for i in 0..64 {
        v.push((tag * 1000 + i) as i64).unwrap();
    }
    scope.block().set_root(&v);
    drop(v);
    let b = scope.block().clone();
    drop(scope);
    b.try_seal().unwrap()
}

fn read_tag(page: &SealedPage) -> u64 {
    let (_b, root) = page.open_view().unwrap();
    let v = root.downcast::<PcVec<i64>>().unwrap();
    (v.get(0) as u64) / 1000
}

#[derive(Debug, Clone)]
enum Op {
    Put(u8),
    Get(u8),
    Flush,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12).prop_map(Op::Put),
        (0u8..12).prop_map(Op::Get),
        Just(Op::Flush),
    ]
}

static POOL_ID: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pool_is_transparent_under_pressure(ops in proptest::collection::vec(op(), 1..60)) {
        let dir = std::env::temp_dir().join(format!(
            "pcpool_prop_{}_{}",
            std::process::id(),
            POOL_ID.fetch_add(1, Ordering::Relaxed)
        ));
        // Capacity fits only ~4 pages: constant eviction pressure.
        let pool = BufferPool::new(4 * 1024, dir.clone()).unwrap();
        let mut stored: std::collections::HashMap<u8, u64> = Default::default();
        let mut versions: std::collections::HashMap<u8, usize> = Default::default();
        for o in ops {
            match o {
                Op::Put(k) => {
                    // New version of logical page k at a fresh page number
                    // (set pages are append-only in the storage manager).
                    let ver = versions.entry(k).or_insert(0);
                    *ver += 1;
                    let tag = (k as u64) * 100 + *ver as u64;
                    pool.put((k as u64, *ver), page_of(tag)).unwrap();
                    stored.insert(k, tag);
                }
                Op::Get(k) => {
                    if let (Some(&tag), Some(&ver)) = (stored.get(&k), versions.get(&k)) {
                        let page = pool.get((k as u64, ver)).unwrap();
                        prop_assert_eq!(read_tag(&page), tag);
                    }
                }
                Op::Flush => pool.flush_all().unwrap(),
            }
        }
        // Everything ever stored is still readable.
        for (k, tag) in &stored {
            let page = pool.get((*k as u64, versions[k])).unwrap();
            prop_assert_eq!(read_tag(&page), *tag);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    /// The out-of-core spill path: pages pushed through a [`SpillSet`]
    /// under a tiny pool — with seeded memory-pressure injection armed —
    /// reload byte-identical in arbitrary order, and dropping the set
    /// reclaims every spill file (the leak gate).
    #[test]
    fn spilled_pages_reload_byte_identical(
        tags in proptest::collection::vec(0u64..1000, 1..24),
        reload_seed in 0u64..u64::MAX,
        pressure_seed in 0u64..u64::MAX,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "pcpool_spill_{}_{}",
            std::process::id(),
            POOL_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let pool = BufferPool::with_pressure(
            4 * 1024,
            dir.clone(),
            Some(PressureSpec::seeded(pressure_seed)),
        )
        .unwrap();
        let originals: Vec<(u64, Vec<u8>)> = {
            let spiller = pool.spill_set();
            let mut out = Vec::new();
            for &tag in &tags {
                let page = page_of(tag);
                let bytes = page.to_bytes();
                let token = spiller.spill(&page).unwrap();
                out.push((token, bytes));
            }
            // Reload in a seed-shuffled order, twice: reload must not
            // consume the page, and order must not matter.
            for round in 0..2u64 {
                let mut order: Vec<usize> = (0..out.len()).collect();
                order.sort_by_key(|&i| {
                    (reload_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).rotate_left((round * 7) as u32)
                });
                for i in order {
                    let (token, ref bytes) = out[i];
                    let back = spiller.reload(token).unwrap();
                    prop_assert_eq!(&back.to_bytes(), bytes);
                }
            }
            prop_assert!(pool.leaked_spill_files() > 0, "spill files must exist while the set lives");
            out
        };
        // The SpillSet dropped with the block above: its whole namespace
        // must be gone, even though nothing called discard().
        prop_assert_eq!(pool.leaked_spill_files(), 0);
        prop_assert!(!originals.is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Pinned pages are never evicted or spilled, no matter how hard the
    /// pool is squeezed: while a reader holds a page's `Arc`, later `get`s
    /// return the *same* allocation (pointer-identical — a refault would
    /// mint a new one), under churn and injected pressure alike.
    #[test]
    fn pinned_pages_survive_pressure(
        churn in proptest::collection::vec(0u64..1000, 4..40),
        pressure_seed in 0u64..u64::MAX,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "pcpool_pin_{}_{}",
            std::process::id(),
            POOL_ID.fetch_add(1, Ordering::Relaxed)
        ));
        // Capacity of ~2 pages: every churn put wants an eviction.
        let pool = BufferPool::with_pressure(
            2 * 1024,
            dir.clone(),
            Some(PressureSpec::seeded(pressure_seed)),
        )
        .unwrap();
        let budget = pool.budget();
        let pinned = pool.put((1, 0), page_of(7)).unwrap();
        let pinned_bytes = pinned.to_bytes();
        for (i, &tag) in churn.iter().enumerate() {
            pool.put((2, i), page_of(tag)).unwrap();
            // Exercise the budget alongside (denials expected and fine).
            if let Ok(grant) = budget.reserve(512) {
                drop(grant);
            }
            let again = pool.get((1, 0)).unwrap();
            prop_assert!(
                std::sync::Arc::ptr_eq(&pinned, &again),
                "pinned page was evicted and refaulted at churn step {}", i
            );
        }
        prop_assert_eq!(&pool.get((1, 0)).unwrap().to_bytes(), &pinned_bytes);
        prop_assert_eq!(budget.reserved(), 0, "sizing probes must release");
        let _ = std::fs::remove_dir_all(dir);
    }
}
