//! Property test: the buffer pool must behave like a perfect page store
//! under arbitrary put/get/flush sequences — eviction and refaulting are
//! invisible to readers.

use pc_object::{make_object, AllocScope, PcVec, SealedPage};
use pc_storage::BufferPool;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn page_of(tag: u64) -> SealedPage {
    let scope = AllocScope::new(8 * 1024);
    let v = make_object::<PcVec<i64>>().unwrap();
    for i in 0..64 {
        v.push((tag * 1000 + i) as i64).unwrap();
    }
    scope.block().set_root(&v);
    drop(v);
    let b = scope.block().clone();
    drop(scope);
    b.try_seal().unwrap()
}

fn read_tag(page: &SealedPage) -> u64 {
    let (_b, root) = page.open_view().unwrap();
    let v = root.downcast::<PcVec<i64>>().unwrap();
    (v.get(0) as u64) / 1000
}

#[derive(Debug, Clone)]
enum Op {
    Put(u8),
    Get(u8),
    Flush,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12).prop_map(Op::Put),
        (0u8..12).prop_map(Op::Get),
        Just(Op::Flush),
    ]
}

static POOL_ID: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pool_is_transparent_under_pressure(ops in proptest::collection::vec(op(), 1..60)) {
        let dir = std::env::temp_dir().join(format!(
            "pcpool_prop_{}_{}",
            std::process::id(),
            POOL_ID.fetch_add(1, Ordering::Relaxed)
        ));
        // Capacity fits only ~4 pages: constant eviction pressure.
        let pool = BufferPool::new(4 * 1024, dir.clone()).unwrap();
        let mut stored: std::collections::HashMap<u8, u64> = Default::default();
        let mut versions: std::collections::HashMap<u8, usize> = Default::default();
        for o in ops {
            match o {
                Op::Put(k) => {
                    // New version of logical page k at a fresh page number
                    // (set pages are append-only in the storage manager).
                    let ver = versions.entry(k).or_insert(0);
                    *ver += 1;
                    let tag = (k as u64) * 100 + *ver as u64;
                    pool.put((k as u64, *ver), page_of(tag)).unwrap();
                    stored.insert(k, tag);
                }
                Op::Get(k) => {
                    if let (Some(&tag), Some(&ver)) = (stored.get(&k), versions.get(&k)) {
                        let page = pool.get((k as u64, ver)).unwrap();
                        prop_assert_eq!(read_tag(&page), tag);
                    }
                }
                Op::Flush => pool.flush_all().unwrap(),
            }
        }
        // Everything ever stored is still readable.
        for (k, tag) in &stored {
            let page = pool.get((*k as u64, versions[k])).unwrap();
            prop_assert_eq!(read_tag(&page), *tag);
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}
