//! Model-checking the [`BufferPool`](pc_storage) pin-vs-evict protocol: a
//! page with live references (strong count > 1) must never be evicted, no
//! matter how a reader's `get` interleaves with the evictor.
//!
//! The model replicates the pool's discipline: the page table lives behind
//! one mutex, "pinned" means a refcount above one, and the evictor
//! re-checks the refcount *under the table lock* before dropping a page
//! (`evict_one` in `pool.rs`). The known-bad variant checks the refcount
//! before taking the lock — exactly the stale-read race the re-check
//! exists to close.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};

/// One cached page: its refcount (1 = only the pool holds it) and whether
/// the evictor has dropped it from the table.
struct Slot {
    refs: usize,
    resident: bool,
}

#[test]
fn pinned_pages_survive_eviction_under_all_interleavings() {
    let n = loom::model(|| {
        let table = Arc::new(Mutex::new(Slot {
            refs: 1,
            resident: true,
        }));

        // Reader: pin the page (get), observe it, unpin.
        let t_reader = {
            let table = table.clone();
            loom::thread::spawn(move || {
                let pinned = {
                    let mut t = table.lock().unwrap();
                    if t.resident {
                        t.refs += 1; // clone of the Arc<Page>
                        true
                    } else {
                        false // miss: page already evicted, reload path
                    }
                };
                if pinned {
                    // While we hold the pin, the page must stay resident.
                    {
                        let t = table.lock().unwrap();
                        assert!(t.resident, "page evicted while pinned");
                    }
                    let mut t = table.lock().unwrap();
                    t.refs -= 1;
                }
            })
        };

        // Evictor: evict_one — re-check the refcount under the table lock.
        let t_evict = {
            let table = table.clone();
            loom::thread::spawn(move || {
                let mut t = table.lock().unwrap();
                if t.refs == 1 && t.resident {
                    t.resident = false; // drop from the table
                }
            })
        };

        t_reader.join().unwrap();
        t_evict.join().unwrap();

        let t = table.lock().unwrap();
        assert_eq!(t.refs, 1, "pin leaked");
    });
    assert!(n > 1, "expected multiple interleavings, explored {n}");
}

#[test]
fn repeated_pin_unpin_vs_evictor_explores_deeply() {
    let n = loom::model_bounded(2, || {
        let table = Arc::new(Mutex::new(Slot {
            refs: 1,
            resident: true,
        }));
        let evictions = Arc::new(AtomicUsize::new(0));

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let table = table.clone();
                loom::thread::spawn(move || {
                    for _ in 0..2 {
                        let pinned = {
                            let mut t = table.lock().unwrap();
                            if t.resident {
                                t.refs += 1;
                                true
                            } else {
                                false
                            }
                        };
                        if pinned {
                            {
                                let t = table.lock().unwrap();
                                assert!(t.resident, "page evicted while pinned");
                            }
                            let mut t = table.lock().unwrap();
                            t.refs -= 1;
                        }
                    }
                })
            })
            .collect();

        let t_evict = {
            let table = table.clone();
            let evictions = evictions.clone();
            loom::thread::spawn(move || {
                let mut t = table.lock().unwrap();
                if t.refs == 1 && t.resident {
                    t.resident = false;
                    drop(t);
                    evictions.fetch_add(1, Ordering::SeqCst);
                }
            })
        };

        for r in readers {
            r.join().unwrap();
        }
        t_evict.join().unwrap();
        assert!(evictions.unsync_load() <= 1, "page evicted twice");
        assert_eq!(table.lock().unwrap().refs, 1, "pin leaked");
    });
    assert!(
        n > 1000,
        "expected >1000 distinct interleavings, explored {n}"
    );
}

#[test]
fn known_bad_unlocked_refcount_check_is_caught() {
    // Broken evictor: reads the refcount *before* taking the table lock
    // (no re-check), so a reader can pin between the check and the evict.
    let v = loom::try_model(|| {
        let refs = Arc::new(AtomicUsize::new(1));
        let resident = Arc::new(Mutex::new(true));

        let t_reader = {
            let refs = refs.clone();
            let resident = resident.clone();
            loom::thread::spawn(move || {
                // get(): pin only while the page is still resident.
                let pinned = {
                    let r = resident.lock().unwrap();
                    if *r {
                        refs.fetch_add(1, Ordering::SeqCst);
                        true
                    } else {
                        false
                    }
                };
                if pinned {
                    {
                        let r = resident.lock().unwrap();
                        assert!(*r, "page evicted while pinned");
                    }
                    refs.fetch_sub(1, Ordering::SeqCst);
                }
            })
        };

        let t_evict = {
            let refs = refs.clone();
            let resident = resident.clone();
            loom::thread::spawn(move || {
                let unpinned = refs.load(Ordering::SeqCst) == 1; // stale!
                let mut r = resident.lock().unwrap();
                if unpinned && *r {
                    *r = false; // evicts without re-checking the pin
                }
            })
        };

        t_reader.join().unwrap();
        t_evict.join().unwrap();
    })
    .expect_err("the unlocked refcount check must evict a pinned page");
    assert!(
        v.message.contains("evicted while pinned"),
        "unexpected violation: {}",
        v.message
    );
}
