//! The Matlab-like surface language (§8.3.1).
//!
//! Grammar (a small expression language over distributed matrices):
//!
//! ```text
//! program := stmt*
//! stmt    := IDENT '=' expr ';'?
//! expr    := term (('+'|'-') term)*
//! term    := postfix (('%*%' | "'*") postfix)*
//! postfix := atom ('^-1')*
//! atom    := IDENT | NUMBER '*' atom | '(' expr ')'
//! ```
//!
//! `'*` is transpose-then-multiply, `%*%` plain multiply, `^-1` inversion —
//! so the paper's least squares program runs verbatim:
//!
//! ```text
//! beta = (X '* X)^-1 %*% (X '* y)
//! ```

use crate::matrix::DistMatrix;
use pc_core::prelude::*;
use std::collections::HashMap;

/// A lilLinAlg session: named distributed matrices plus an evaluator.
pub struct LilLinAlg {
    pub client: PcClient,
    vars: HashMap<String, DistMatrix>,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Assign,
    Plus,
    Minus,
    Multiply,  // %*%
    TMultiply, // '*
    Inverse,   // ^-1
    LParen,
    RParen,
    Semi,
}

fn lex(src: &str) -> PcResult<Vec<Tok>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        match b[i] as char {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            ';' => {
                out.push(Tok::Semi);
                i += 1;
            }
            '=' => {
                out.push(Tok::Assign);
                i += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '%' if src[i..].starts_with("%*%") => {
                out.push(Tok::Multiply);
                i += 3;
            }
            '\'' if src[i..].starts_with("'*") => {
                out.push(Tok::TMultiply);
                i += 2;
            }
            '^' if src[i..].starts_with("^-1") => {
                out.push(Tok::Inverse);
                i += 3;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Tok::Ident(src[start..i].to_string()));
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < b.len() && ((b[i] as char).is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                let n: f64 = src[start..i]
                    .parse()
                    .map_err(|e| PcError::Catalog(format!("bad number: {e}")))?;
                out.push(Tok::Num(n));
                // Scalar multiplication: `2.0 * X` (with or without spaces).
                let mut j = i;
                while j < b.len() && (b[j] == b' ' || b[j] == b'\t') {
                    j += 1;
                }
                if j < b.len() && b[j] == b'*' {
                    i = j + 1;
                }
            }
            other => return Err(PcError::Catalog(format!("lilLinAlg: unexpected {other:?}"))),
        }
    }
    Ok(out)
}

/// Parsed expression tree.
#[derive(Debug, Clone)]
enum Expr {
    Var(String),
    Scale(f64, Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    TMul(Box<Expr>, Box<Expr>),
    Inv(Box<Expr>),
}

struct Parser {
    toks: Vec<Tok>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn eat(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn expr(&mut self) -> PcResult<Expr> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.eat();
                    lhs = Expr::Add(Box::new(lhs), Box::new(self.term()?));
                }
                Some(Tok::Minus) => {
                    self.eat();
                    lhs = Expr::Sub(Box::new(lhs), Box::new(self.term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> PcResult<Expr> {
        let mut lhs = self.postfix()?;
        loop {
            match self.peek() {
                Some(Tok::Multiply) => {
                    self.eat();
                    lhs = Expr::Mul(Box::new(lhs), Box::new(self.postfix()?));
                }
                Some(Tok::TMultiply) => {
                    self.eat();
                    lhs = Expr::TMul(Box::new(lhs), Box::new(self.postfix()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn postfix(&mut self) -> PcResult<Expr> {
        let mut e = self.atom()?;
        while self.peek() == Some(&Tok::Inverse) {
            self.eat();
            e = Expr::Inv(Box::new(e));
        }
        Ok(e)
    }

    fn atom(&mut self) -> PcResult<Expr> {
        match self.eat() {
            Some(Tok::Ident(name)) => Ok(Expr::Var(name)),
            Some(Tok::Num(n)) => Ok(Expr::Scale(n, Box::new(self.atom()?))),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                match self.eat() {
                    Some(Tok::RParen) => Ok(e),
                    other => Err(PcError::Catalog(format!("expected ')', found {other:?}"))),
                }
            }
            other => Err(PcError::Catalog(format!("unexpected token {other:?}"))),
        }
    }
}

impl LilLinAlg {
    pub fn new(client: PcClient) -> Self {
        LilLinAlg {
            client,
            vars: HashMap::new(),
        }
    }

    /// Registers a matrix under a DSL variable name (the `load(...)` step).
    pub fn load(&mut self, name: &str, m: DistMatrix) {
        self.vars.insert(name.to_string(), m);
    }

    pub fn get(&self, name: &str) -> Option<&DistMatrix> {
        self.vars.get(name)
    }

    /// Runs a program: each statement assigns an expression result to a
    /// variable. Returns the name of the last assigned variable.
    pub fn run(&mut self, program: &str) -> PcResult<String> {
        let toks = lex(program)?;
        let mut p = Parser { toks, i: 0 };
        let mut last = String::new();
        while p.peek().is_some() {
            let Some(Tok::Ident(target)) = p.eat() else {
                return Err(PcError::Catalog(
                    "statement must start with a variable".into(),
                ));
            };
            if p.eat() != Some(Tok::Assign) {
                return Err(PcError::Catalog(format!("expected '=' after {target}")));
            }
            let e = p.expr()?;
            let m = self.eval(&e)?;
            self.vars.insert(target.clone(), m);
            last = target;
            while p.peek() == Some(&Tok::Semi) {
                p.eat();
            }
        }
        Ok(last)
    }

    fn eval(&self, e: &Expr) -> PcResult<DistMatrix> {
        match e {
            Expr::Var(name) => self
                .vars
                .get(name)
                .cloned()
                .ok_or_else(|| PcError::Catalog(format!("unknown matrix {name}"))),
            Expr::Scale(a, inner) => self.eval(inner)?.scale(*a),
            Expr::Add(l, r) => self.eval(l)?.add(&self.eval(r)?),
            Expr::Sub(l, r) => self.eval(l)?.subtract(&self.eval(r)?),
            Expr::Mul(l, r) => self.eval(l)?.multiply(&self.eval(r)?),
            Expr::TMul(l, r) => self.eval(l)?.transpose_multiply(&self.eval(r)?),
            Expr::Inv(inner) => self.eval(inner)?.inverse(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::DenseMatrix;

    fn rand_dense(r: usize, c: usize, seed: u64) -> DenseMatrix {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        };
        DenseMatrix {
            rows: r,
            cols: c,
            data: (0..r * c).map(|_| next()).collect(),
        }
    }

    #[test]
    fn least_squares_program_recovers_beta() {
        let client = PcClient::local_small().unwrap();
        // y = X β* exactly, so the solve must recover β*.
        let n = 60;
        let d = 5;
        let x = rand_dense(n, d, 7);
        let beta_true = DenseMatrix::from_rows((0..d).map(|i| vec![i as f64 - 2.0]).collect());
        let y = x.matmul(&beta_true);

        let mut la = LilLinAlg::new(client.clone());
        la.load(
            "X",
            DistMatrix::from_dense(&client, "la", "dslx", &x, 16, d).unwrap(),
        );
        la.load(
            "y",
            DistMatrix::from_dense(&client, "la", "dsly", &y, 16, 1).unwrap(),
        );
        let out = la.run("beta = (X '* X)^-1 %*% (X '* y)").unwrap();
        assert_eq!(out, "beta");
        let beta = la.get("beta").unwrap().to_dense().unwrap();
        assert!(
            beta.max_abs_diff(&beta_true) < 1e-6,
            "diff {}",
            beta.max_abs_diff(&beta_true)
        );
    }

    #[test]
    fn arithmetic_and_scaling_parse() {
        let client = PcClient::local_small().unwrap();
        let a = rand_dense(12, 12, 9);
        let mut la = LilLinAlg::new(client.clone());
        la.load(
            "A",
            DistMatrix::from_dense(&client, "la", "dsla", &a, 6, 6).unwrap(),
        );
        la.run("B = A + A; C = 2.0 * A; D = B - C").unwrap();
        let d = la.get("D").unwrap().to_dense().unwrap();
        assert!(d.max_abs_diff(&DenseMatrix::zeros(12, 12)) < 1e-12);
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let client = PcClient::local_small().unwrap();
        let mut la = LilLinAlg::new(client);
        assert!(la.run("B = missing %*% missing").is_err());
    }
}
