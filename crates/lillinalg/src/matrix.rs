//! Distributed matrices: `MatrixBlock` PC objects plus the client-side
//! operations that compile to PC computation graphs.

use crate::kernels::{self, DenseMatrix};
use pc_core::prelude::*;
use pc_object::PcValue;
use std::sync::atomic::{AtomicU64, Ordering};

pc_object! {
    /// A contiguous sub-matrix chunk (§6.1's example class): grid position,
    /// chunk dimensions, and a page-resident row-major value vector.
    pub struct MatrixBlock / MatrixBlockView {
        (chunk_row, set_chunk_row): i64,
        (chunk_col, set_chunk_col): i64,
        (height, set_height): i64,
        (width, set_width): i64,
        (values, set_values): Handle<PcVec<f64>>,
    }
}

/// Builds a `MatrixBlock` on the active allocation block.
pub fn make_matrix_block(
    chunk_row: i64,
    chunk_col: i64,
    height: usize,
    width: usize,
    data: &[f64],
) -> PcResult<Handle<MatrixBlock>> {
    debug_assert_eq!(data.len(), height * width);
    let blk = make_object::<MatrixBlock>()?;
    blk.v().set_chunk_row(chunk_row)?;
    blk.v().set_chunk_col(chunk_col)?;
    blk.v().set_height(height as i64)?;
    blk.v().set_width(width as i64)?;
    let vals = make_object::<PcVec<f64>>()?;
    vals.extend_from_slice(data)?;
    blk.v().set_values(vals)?;
    Ok(blk)
}

static NEXT_TMP: AtomicU64 = AtomicU64::new(0);

fn tmp_set() -> String {
    format!("__la_tmp_{}", NEXT_TMP.fetch_add(1, Ordering::Relaxed))
}

/// A handle to a distributed matrix: a stored set of `MatrixBlock`s plus
/// shape metadata.
#[derive(Clone)]
pub struct DistMatrix {
    pub client: PcClient,
    pub db: String,
    pub set: String,
    pub rows: usize,
    pub cols: usize,
    pub block_rows: usize,
    pub block_cols: usize,
}

/// The aggregation summing partial product blocks
/// (the paper's `LAMultiplyAggregate`). Values are packed page vectors
/// `[h, w, data...]` folded in place on the aggregation map pages.
struct SumPartials;

impl AggregateSpec for SumPartials {
    type In = MatrixBlock;
    type Key = (i32, i32);
    type Val = Handle<PcVec<f64>>;
    type Out = MatrixBlock;

    fn key_of(&self, rec: &Handle<MatrixBlock>) -> PcResult<(i32, i32)> {
        Ok((rec.v().chunk_row() as i32, rec.v().chunk_col() as i32))
    }

    fn init(&self, b: &BlockRef, rec: &Handle<MatrixBlock>) -> PcResult<Handle<PcVec<f64>>> {
        let src = rec.v().values();
        let v = b.make_object::<PcVec<f64>>()?;
        v.reserve(2 + src.len())?;
        v.extend_from_slice(&[rec.v().height() as f64, rec.v().width() as f64])?;
        v.extend_from_slice(src.as_slice())?;
        Ok(v)
    }

    fn combine(&self, b: &BlockRef, slot: u32, rec: &Handle<MatrixBlock>) -> PcResult<()> {
        let acc = <Handle<PcVec<f64>> as PcValue>::load(b, slot);
        let dst = acc.as_mut_slice();
        let src = rec.v().values();
        for (d, s) in dst[2..].iter_mut().zip(src.as_slice()) {
            *d += s;
        }
        Ok(())
    }

    fn merge(&self, dst: &BlockRef, dst_slot: u32, src: &BlockRef, src_slot: u32) -> PcResult<()> {
        let acc = <Handle<PcVec<f64>> as PcValue>::load(dst, dst_slot);
        let part = <Handle<PcVec<f64>> as PcValue>::load(src, src_slot);
        let d = acc.as_mut_slice();
        let s = part.as_slice();
        for (x, y) in d[2..].iter_mut().zip(&s[2..]) {
            *x += y;
        }
        Ok(())
    }

    fn finalize(&self, key: &(i32, i32), b: &BlockRef, slot: u32) -> PcResult<Handle<MatrixBlock>> {
        let acc = <Handle<PcVec<f64>> as PcValue>::load(b, slot);
        let s = acc.as_slice();
        let (h, w) = (s[0] as usize, s[1] as usize);
        make_matrix_block(key.0 as i64, key.1 as i64, h, w, &s[2..])
    }
}

impl DistMatrix {
    /// Chops a dense matrix into blocks and ships it into the cluster.
    pub fn from_dense(
        client: &PcClient,
        db: &str,
        set: &str,
        dense: &DenseMatrix,
        block_rows: usize,
        block_cols: usize,
    ) -> PcResult<DistMatrix> {
        client.create_or_clear_set(db, set)?;
        let mut chunks: Vec<(i64, i64, usize, usize, Vec<f64>)> = Vec::new();
        let mut r = 0;
        while r < dense.rows {
            let h = block_rows.min(dense.rows - r);
            let mut c = 0;
            while c < dense.cols {
                let w = block_cols.min(dense.cols - c);
                let mut data = Vec::with_capacity(h * w);
                for i in 0..h {
                    for j in 0..w {
                        data.push(dense.at(r + i, c + j));
                    }
                }
                chunks.push(((r / block_rows) as i64, (c / block_cols) as i64, h, w, data));
                c += w;
            }
            r += h;
        }
        let total = chunks.len();
        client.store(db, set, total, |i| {
            let (cr, cc, h, w, data) = &chunks[i];
            Ok(make_matrix_block(*cr, *cc, *h, *w, data)?.erase())
        })?;
        Ok(DistMatrix {
            client: client.clone(),
            db: db.to_string(),
            set: set.to_string(),
            rows: dense.rows,
            cols: dense.cols,
            block_rows,
            block_cols,
        })
    }

    /// Gathers the distributed matrix back to a driver-side dense matrix.
    pub fn to_dense(&self) -> PcResult<DenseMatrix> {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for blk in self.blocks().collect()? {
            let r0 = blk.v().chunk_row() as usize * self.block_rows;
            let c0 = blk.v().chunk_col() as usize * self.block_cols;
            let (h, w) = (blk.v().height() as usize, blk.v().width() as usize);
            let vals = blk.v().values();
            let s = vals.as_slice();
            for i in 0..h {
                for j in 0..w {
                    out.set(r0 + i, c0 + j, s[i * w + j]);
                }
            }
        }
        Ok(out)
    }

    fn result(&self, set: String, rows: usize, cols: usize, br: usize, bc: usize) -> DistMatrix {
        DistMatrix {
            client: self.client.clone(),
            db: self.db.clone(),
            set,
            rows,
            cols,
            block_rows: br,
            block_cols: bc,
        }
    }

    /// The typed dataset over this matrix's stored blocks.
    fn blocks(&self) -> pc_core::Dataset<MatrixBlock> {
        self.client.set::<MatrixBlock>(&self.db, &self.set)
    }

    /// Distributed multiply `self · other` — a join on the inner block
    /// index feeding an aggregation, exactly the paper's
    /// `LAMultiplyJoin` + `LAMultiplyAggregate` pair.
    pub fn multiply(&self, other: &DistMatrix) -> PcResult<DistMatrix> {
        assert_eq!(self.cols, other.rows, "dimension mismatch in multiply");
        let out = tmp_set();
        self.blocks()
            .join(
                &other.blocks(),
                |a, b| {
                    a.member("chunkCol", |m| m.v().chunk_col())
                        .eq(b.member("chunkRow", |m| m.v().chunk_row()))
                },
                "blockMultiply",
                |x, y| {
                    let (m, k) = (x.v().height() as usize, x.v().width() as usize);
                    let n = y.v().width() as usize;
                    debug_assert_eq!(k, y.v().height() as usize);
                    let out = make_matrix_block(
                        x.v().chunk_row(),
                        y.v().chunk_col(),
                        m,
                        n,
                        &vec![0.0; m * n],
                    )?;
                    let xv = x.v().values();
                    let yv = y.v().values();
                    let ov = out.v().values();
                    // Numeric work happens directly on page memory (the
                    // c_ptr trick).
                    kernels::matmul_blocked(
                        xv.as_slice(),
                        yv.as_slice(),
                        ov.as_mut_slice(),
                        m,
                        k,
                        n,
                    );
                    Ok(out)
                },
            )
            .aggregate(SumPartials)
            .write_to(&self.db, &out)
            .run(&self.client)?;
        Ok(self.result(
            out,
            self.rows,
            other.cols,
            self.block_rows,
            other.block_cols,
        ))
    }

    /// Distributed transpose-multiply `selfᵀ · other` (the DSL's `'*`):
    /// joins on the *row* block index, so a Gram matrix is a self-join.
    pub fn transpose_multiply(&self, other: &DistMatrix) -> PcResult<DistMatrix> {
        assert_eq!(
            self.rows, other.rows,
            "dimension mismatch in transpose-multiply"
        );
        let out = tmp_set();
        self.blocks()
            .join(
                &other.blocks(),
                |a, b| {
                    a.member("chunkRow", |m| m.v().chunk_row())
                        .eq(b.member("chunkRow", |m| m.v().chunk_row()))
                },
                "blockAtB",
                |x, y| {
                    let (m, k) = (x.v().height() as usize, x.v().width() as usize);
                    let n = y.v().width() as usize;
                    debug_assert_eq!(m, y.v().height() as usize);
                    let out = make_matrix_block(
                        x.v().chunk_col(),
                        y.v().chunk_col(),
                        k,
                        n,
                        &vec![0.0; k * n],
                    )?;
                    let xv = x.v().values();
                    let yv = y.v().values();
                    let ov = out.v().values();
                    kernels::matmul_at_b(xv.as_slice(), yv.as_slice(), ov.as_mut_slice(), m, k, n);
                    Ok(out)
                },
            )
            .aggregate(SumPartials)
            .write_to(&self.db, &out)
            .run(&self.client)?;
        Ok(self.result(
            out,
            self.cols,
            other.cols,
            self.block_cols,
            other.block_cols,
        ))
    }

    /// Block-wise binary op (`+` / `-`): a join on the grid position.
    fn zip_with(
        &self,
        other: &DistMatrix,
        label: &str,
        f: fn(f64, f64) -> f64,
    ) -> PcResult<DistMatrix> {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        let out = tmp_set();
        let grid = |m: &Handle<MatrixBlock>| m.v().chunk_row() * 1_000_003 + m.v().chunk_col();
        self.blocks()
            .join(
                &other.blocks(),
                |a, b| a.method("gridKey", grid).eq(b.method("gridKey", grid)),
                label,
                move |x, y| {
                    let (h, w) = (x.v().height() as usize, x.v().width() as usize);
                    let out = make_matrix_block(
                        x.v().chunk_row(),
                        x.v().chunk_col(),
                        h,
                        w,
                        &vec![0.0; h * w],
                    )?;
                    let xs = x.v().values();
                    let ys = y.v().values();
                    let ov = out.v().values();
                    let o = ov.as_mut_slice();
                    for ((o, a), b) in o.iter_mut().zip(xs.as_slice()).zip(ys.as_slice()) {
                        *o = f(*a, *b);
                    }
                    Ok(out)
                },
            )
            .write_to(&self.db, &out)
            .run(&self.client)?;
        Ok(self.result(out, self.rows, self.cols, self.block_rows, self.block_cols))
    }

    pub fn add(&self, other: &DistMatrix) -> PcResult<DistMatrix> {
        self.zip_with(other, "blockAdd", |a, b| a + b)
    }

    pub fn subtract(&self, other: &DistMatrix) -> PcResult<DistMatrix> {
        self.zip_with(other, "blockSub", |a, b| a - b)
    }

    /// Element-wise scaling (a `SelectionComp`).
    pub fn scale(&self, alpha: f64) -> PcResult<DistMatrix> {
        let out = tmp_set();
        self.blocks()
            .select("blockScale", move |x| {
                let (h, w) = (x.v().height() as usize, x.v().width() as usize);
                let out = make_matrix_block(
                    x.v().chunk_row(),
                    x.v().chunk_col(),
                    h,
                    w,
                    &vec![0.0; h * w],
                )?;
                let xs = x.v().values();
                let ov = out.v().values();
                for (o, v) in ov.as_mut_slice().iter_mut().zip(xs.as_slice()) {
                    *o = v * alpha;
                }
                Ok(out)
            })
            .write_to(&self.db, &out)
            .run(&self.client)?;
        Ok(self.result(out, self.rows, self.cols, self.block_rows, self.block_cols))
    }

    /// Distributed transpose (a `SelectionComp` swapping grid indices and
    /// transposing each chunk in place on the output page).
    pub fn transpose(&self) -> PcResult<DistMatrix> {
        let out = tmp_set();
        self.blocks()
            .select("blockTranspose", |x| {
                let (h, w) = (x.v().height() as usize, x.v().width() as usize);
                let out = make_matrix_block(
                    x.v().chunk_col(),
                    x.v().chunk_row(),
                    w,
                    h,
                    &vec![0.0; h * w],
                )?;
                let xs = x.v().values();
                let ov = out.v().values();
                kernels::transpose(xs.as_slice(), ov.as_mut_slice(), h, w);
                Ok(out)
            })
            .write_to(&self.db, &out)
            .run(&self.client)?;
        Ok(self.result(out, self.cols, self.rows, self.block_cols, self.block_rows))
    }

    /// Per-row sums as an n×1 distributed matrix: a `SelectionComp`
    /// producing per-chunk row sums followed by an `AggregateComp` summing
    /// across column chunks.
    pub fn row_sum(&self) -> PcResult<DistMatrix> {
        let out = tmp_set();
        self.blocks()
            .select("chunkRowSum", |x| {
                let (h, w) = (x.v().height() as usize, x.v().width() as usize);
                let out = make_matrix_block(x.v().chunk_row(), 0, h, 1, &vec![0.0; h])?;
                let xs = x.v().values();
                let s = xs.as_slice();
                let ov = out.v().values();
                let o = ov.as_mut_slice();
                for (r, o) in o.iter_mut().enumerate() {
                    *o = s[r * w..(r + 1) * w].iter().sum();
                }
                Ok(out)
            })
            .aggregate(SumPartials)
            .write_to(&self.db, &out)
            .run(&self.client)?;
        Ok(self.result(out, self.rows, 1, self.block_rows, 1))
    }

    /// Per-column sums as a 1×n distributed matrix.
    pub fn col_sum(&self) -> PcResult<DistMatrix> {
        self.transpose()?.row_sum()
    }

    /// The minimum element (gathered reduction over the blocks).
    pub fn min_element(&self) -> PcResult<f64> {
        self.fold_elements(f64::INFINITY, f64::min)
    }

    /// The maximum element.
    pub fn max_element(&self) -> PcResult<f64> {
        self.fold_elements(f64::NEG_INFINITY, f64::max)
    }

    fn fold_elements(&self, init: f64, f: fn(f64, f64) -> f64) -> PcResult<f64> {
        let mut acc = init;
        for blk in self.blocks().collect()? {
            let vals = blk.v().values();
            for v in vals.as_slice() {
                acc = f(acc, *v);
            }
        }
        Ok(acc)
    }

    /// Gathers, inverts on the driver (valid for small matrices, like the
    /// normal-equation solve), and redistributes.
    pub fn inverse(&self) -> PcResult<DistMatrix> {
        let dense = self.to_dense()?;
        let inv = dense.inverse().map_err(PcError::Catalog)?;
        let out = tmp_set();
        DistMatrix::from_dense(
            &self.client,
            &self.db,
            &out,
            &inv,
            self.block_rows,
            self.block_cols,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_dense(r: usize, c: usize, seed: u64) -> DenseMatrix {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        };
        DenseMatrix {
            rows: r,
            cols: c,
            data: (0..r * c).map(|_| next()).collect(),
        }
    }

    #[test]
    fn distributed_multiply_matches_dense() {
        let client = PcClient::local_small().unwrap();
        let a = rand_dense(30, 20, 1);
        let b = rand_dense(20, 25, 2);
        let da = DistMatrix::from_dense(&client, "la", "a", &a, 8, 8).unwrap();
        let db = DistMatrix::from_dense(&client, "la", "b", &b, 8, 8).unwrap();
        let dc = da.multiply(&db).unwrap();
        let got = dc.to_dense().unwrap();
        let want = a.matmul(&b);
        assert!(
            got.max_abs_diff(&want) < 1e-9,
            "diff {}",
            got.max_abs_diff(&want)
        );
    }

    #[test]
    fn gram_matrix_via_transpose_multiply() {
        let client = PcClient::local_small().unwrap();
        let x = rand_dense(40, 6, 3);
        let dx = DistMatrix::from_dense(&client, "la", "x", &x, 16, 6).unwrap();
        let gram = dx.transpose_multiply(&dx).unwrap().to_dense().unwrap();
        let want = x.transposed().matmul(&x);
        assert!(gram.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn row_and_col_sums_match_dense() {
        let client = PcClient::local_small().unwrap();
        let a = rand_dense(22, 13, 8);
        let da = DistMatrix::from_dense(&client, "la", "sums", &a, 7, 5).unwrap();
        let rs = da.row_sum().unwrap().to_dense().unwrap();
        for i in 0..22 {
            let want: f64 = (0..13).map(|j| a.at(i, j)).sum();
            assert!((rs.at(i, 0) - want).abs() < 1e-9, "row {i}");
        }
        let cs = da.col_sum().unwrap().to_dense().unwrap();
        for j in 0..13 {
            let want: f64 = (0..22).map(|i| a.at(i, j)).sum();
            assert!((cs.at(j, 0) - want).abs() < 1e-9, "col {j}");
        }
        let mn = da.min_element().unwrap();
        let mx = da.max_element().unwrap();
        assert_eq!(mn, a.data.iter().cloned().fold(f64::INFINITY, f64::min));
        assert_eq!(mx, a.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn add_scale_transpose_roundtrip() {
        let client = PcClient::local_small().unwrap();
        let a = rand_dense(15, 9, 4);
        let da = DistMatrix::from_dense(&client, "la", "aa", &a, 4, 4).unwrap();
        let doubled = da.add(&da).unwrap().to_dense().unwrap();
        let scaled = da.scale(2.0).unwrap().to_dense().unwrap();
        assert!(doubled.max_abs_diff(&scaled) < 1e-12);
        let t = da.transpose().unwrap().to_dense().unwrap();
        assert_eq!(t, a.transposed());
    }
}
