//! # lillinalg — distributed linear algebra on PlinyCompute (§8.3)
//!
//! The paper's `lilLinAlg`: a small Matlab-like language and library for
//! distributed matrix operations, built by one developer on top of PC to
//! test the platform's fitness for tool construction.
//!
//! * Huge matrices are chunked into [`MatrixBlock`] PC objects (§6.1's
//!   example class), each holding a contiguous sub-matrix in a page-resident
//!   `PcVec<f64>` that numeric kernels address **in place** — the Rust
//!   analogue of handing Eigen a raw `c_ptr()` into the page (§8.3.1).
//! * Distributed multiply is a `JoinComp` (pair blocks on inner index,
//!   multiply chunk pairs) followed by an `AggregateComp` (sum partial
//!   products) — the paper's `LAMultiplyJoin` / `LAMultiplyAggregate`.
//! * [`dsl`] parses the Matlab-like surface syntax, e.g. the paper's least
//!   squares one-liner `beta = (X '* X)^-1 %*% (X '* y)`.
//! * [`kernels`] provides the dense math (naive and cache-blocked matmul —
//!   the "GSL vs Eigen" axis of Table 8 — plus Gauss-Jordan inversion).

pub mod dsl;
pub mod kernels;
pub mod matrix;

pub use dsl::LilLinAlg;
pub use kernels::DenseMatrix;
pub use matrix::{DistMatrix, MatrixBlock};
