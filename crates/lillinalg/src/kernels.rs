//! Dense numeric kernels.
//!
//! Two matrix-multiply implementations reproduce Table 8's axis: the naive
//! triple loop (standing in for GSL's reference BLAS) and a cache-blocked,
//! transposed-operand kernel (standing in for Eigen / netlib-backed
//! breeze). Both operate on raw `&[f64]` row-major buffers, so they run
//! equally well over page-resident `PcVec<f64>` data and driver-side
//! `DenseMatrix` storage.

/// Naive row-major triple loop: `C[m×n] += A[m×k] · B[k×n]`.
/// Reference-BLAS-like ("GSL" in Table 8).
pub fn matmul_naive(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a[i * k + l] * b[l * n + j];
            }
            c[i * n + j] += acc;
        }
    }
}

/// Cache-blocked multiply with i-k-j loop order (unit-stride inner loop):
/// `C[m×n] += A[m×k] · B[k×n]`. The "Eigen/breeze" kernel of Table 8.
pub fn matmul_blocked(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    const BS: usize = 64;
    let mut ib = 0;
    while ib < m {
        let imax = (ib + BS).min(m);
        let mut lb = 0;
        while lb < k {
            let lmax = (lb + BS).min(k);
            let mut jb = 0;
            while jb < n {
                let jmax = (jb + BS).min(n);
                for i in ib..imax {
                    for l in lb..lmax {
                        let av = a[i * k + l];
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &b[l * n + jb..l * n + jmax];
                        let crow = &mut c[i * n + jb..i * n + jmax];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += av * bv;
                        }
                    }
                }
                jb += BS;
            }
            lb += BS;
        }
        ib += BS;
    }
}

/// `C[k×n] += Aᵀ[k×m] · B[m×n]` where `a` is stored `m×k` (transpose-
/// multiply, the `'*` operator — used without materializing Aᵀ).
pub fn matmul_at_b(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(c.len(), k * n);
    for row in 0..m {
        let arow = &a[row * k..(row + 1) * k];
        let brow = &b[row * n..(row + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Out-of-place transpose: `B[n×m] = Aᵀ` for `A[m×n]`.
pub fn transpose(a: &[f64], b: &mut [f64], m: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            b[j * m + i] = a[i * n + j];
        }
    }
}

/// A small driver-side dense matrix (row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f64>,
}

impl DenseMatrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let r = rows.len();
        let c = rows.first().map(|x| x.len()).unwrap_or(0);
        DenseMatrix {
            rows: r,
            cols: c,
            data: rows.into_iter().flatten().collect(),
        }
    }

    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows);
        let mut c = DenseMatrix::zeros(self.rows, other.cols);
        matmul_blocked(
            &self.data,
            &other.data,
            &mut c.data,
            self.rows,
            self.cols,
            other.cols,
        );
        c
    }

    pub fn transposed(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        transpose(&self.data, &mut t.data, self.rows, self.cols);
        t
    }

    /// Gauss-Jordan inversion with partial pivoting. Errors on singular
    /// input. Used driver-side for the normal-equation solve (`^-1` in the
    /// DSL is only valid on small gathered matrices, as in SystemML's
    /// local-mode solves).
    pub fn inverse(&self) -> Result<DenseMatrix, String> {
        assert_eq!(self.rows, self.cols, "inverse of a non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = DenseMatrix::identity(n);
        for col in 0..n {
            // Pivot.
            let mut pivot = col;
            let mut best = a.at(col, col).abs();
            for r in (col + 1)..n {
                let v = a.at(r, col).abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return Err(format!("matrix is singular at column {col}"));
            }
            if pivot != col {
                for j in 0..n {
                    let (x, y) = (a.at(col, j), a.at(pivot, j));
                    a.set(col, j, y);
                    a.set(pivot, j, x);
                    let (x, y) = (inv.at(col, j), inv.at(pivot, j));
                    inv.set(col, j, y);
                    inv.set(pivot, j, x);
                }
            }
            // Normalize and eliminate.
            let d = a.at(col, col);
            for j in 0..n {
                a.set(col, j, a.at(col, j) / d);
                inv.set(col, j, inv.at(col, j) / d);
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a.at(r, col);
                if f == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a.set(r, j, a.at(r, j) - f * a.at(col, j));
                    inv.set(r, j, inv.at(r, j) - f * inv.at(col, j));
                }
            }
        }
        Ok(inv)
    }

    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(r: usize, c: usize, seed: u64) -> DenseMatrix {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        };
        let data = (0..r * c).map(|_| next()).collect();
        DenseMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    #[test]
    fn blocked_matches_naive() {
        let a = rand_mat(37, 23, 1);
        let b = rand_mat(23, 41, 2);
        let mut c1 = vec![0.0; 37 * 41];
        let mut c2 = vec![0.0; 37 * 41];
        matmul_naive(&a.data, &b.data, &mut c1, 37, 23, 41);
        matmul_blocked(&a.data, &b.data, &mut c2, 37, 23, 41);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = rand_mat(30, 7, 3);
        let b = rand_mat(30, 5, 4);
        let mut c1 = vec![0.0; 7 * 5];
        matmul_at_b(&a.data, &b.data, &mut c1, 30, 7, 5);
        let c2 = a.transposed().matmul(&b);
        for (x, y) in c1.iter().zip(&c2.data) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let mut a = rand_mat(12, 12, 5);
        for i in 0..12 {
            a.set(i, i, a.at(i, i) + 6.0); // diagonally dominant → invertible
        }
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&DenseMatrix::identity(12)) < 1e-8);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.inverse().is_err());
    }
}
