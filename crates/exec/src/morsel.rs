//! Morsel-driven parallel stage execution with work stealing.
//!
//! A stage's input pages are carved into fixed-size **morsels** (a bounded
//! run of rows that never spans a page). Morsels are dealt round-robin into
//! per-thread deques; each worker thread pops from the front of its own
//! deque and, when it drains, steals from the **back** of a victim's — the
//! classic morsel-driven scheme (Leis et al.): cheap local FIFO dispatch,
//! skew absorbed by stealing the coldest work furthest from the victim's
//! current position.
//!
//! **Determinism.** Stealing makes the *schedule* timing-dependent, so no
//! state may accumulate across morsels in a thread (PC map layout is
//! insertion-order-sensitive). Every morsel therefore runs with fresh sink
//! state ([`crate::local::run_span`]) and seals its output inside the
//! producing thread; the driver merges sealed outputs strictly by **morsel
//! index**. The morsel decomposition is a pure function of the input pages
//! and `morsel_rows`, so the merged bytes are identical for every thread
//! count and every steal schedule. What *is* thread-affine — the
//! `ColumnPool` buffer cache and the flat-map fan-out hint — only affects
//! allocation, never output bytes.

use crate::jointable::{JoinTable, TagFilter};
use crate::local::{run_span, ExecConfig, ExecStats, PipelineOutput, ThreadState};
use crate::plan::PipelineSpec;
use pc_lambda::{AggPage, ErasedAgg, SpillCtx, StageLibrary};
use pc_object::{
    AnyObj, Handle, MemoryBudget, MemoryGrant, PageSpiller, PcError, PcResult, PcVec, SealedPage,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One unit of schedulable work: rows `lo..hi` of a single sealed page.
pub struct Morsel {
    /// Position in the stage's global morsel order (the merge key).
    pub index: usize,
    /// The input page this morsel reads (shared, zero-copy).
    pub page: Arc<SealedPage>,
    /// First row of the run.
    pub lo: usize,
    /// One past the last row of the run.
    pub hi: usize,
}

/// Carves `pages` into morsels of at most `morsel_rows` rows. The result
/// depends only on the pages' row counts and `morsel_rows` — never on
/// thread count — which is what makes morsel-order merging deterministic.
pub fn carve_morsels(pages: &[Arc<SealedPage>], morsel_rows: usize) -> PcResult<Vec<Morsel>> {
    let step = morsel_rows.max(1);
    let mut morsels = Vec::new();
    for page in pages {
        let (_block, root) = page.open_view()?;
        let root: Handle<PcVec<Handle<AnyObj>>> = root.downcast()?;
        let total = root.len();
        let mut at = 0usize;
        while at < total {
            let hi = (at + step).min(total);
            morsels.push(Morsel {
                index: morsels.len(),
                page: page.clone(),
                lo: at,
                hi,
            });
            at = hi;
        }
    }
    Ok(morsels)
}

/// The shared morsel scheduler: per-thread deques with steal-on-drain.
pub struct MorselQueue {
    deques: Vec<Mutex<VecDeque<Morsel>>>,
    dispatched: AtomicU64,
    stolen: AtomicU64,
}

impl MorselQueue {
    /// Deals morsels round-robin by index over `threads` deques.
    pub fn deal(morsels: Vec<Morsel>, threads: usize) -> Self {
        let threads = threads.max(1);
        let mut deques: Vec<VecDeque<Morsel>> = (0..threads).map(|_| VecDeque::new()).collect();
        for m in morsels {
            deques[m.index % threads].push_back(m);
        }
        MorselQueue {
            deques: deques.into_iter().map(Mutex::new).collect(),
            dispatched: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
        }
    }

    /// Next morsel for thread `me`: front of its own deque, else stolen
    /// from the back of the nearest non-empty victim. `None` means every
    /// deque has drained — the work set is fixed up front, so no new
    /// morsels can appear afterwards.
    pub fn next(&self, me: usize) -> Option<Morsel> {
        if let Some(m) = self.deques[me].lock().expect("morsel deque").pop_front() {
            self.dispatched.fetch_add(1, Ordering::Relaxed);
            return Some(m);
        }
        for k in 1..self.deques.len() {
            let victim = (me + k) % self.deques.len();
            if let Some(m) = self.deques[victim].lock().expect("morsel deque").pop_back() {
                self.dispatched.fetch_add(1, Ordering::Relaxed);
                self.stolen.fetch_add(1, Ordering::Relaxed);
                return Some(m);
            }
        }
        None
    }

    /// Total morsels handed out so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// How many of those were steals.
    pub fn stolen(&self) -> u64 {
        self.stolen.load(Ordering::Relaxed)
    }
}

/// A `Send` form of [`PipelineOutput`]: one morsel's sink result, sealed
/// into pages inside the producing thread (handles never cross threads —
/// §6.5). The same type rides the cluster's transport per worker.
pub enum MorselOutput {
    /// Sealed output pages (OUTPUT / materialization sinks).
    Pages(Vec<SealedPage>),
    /// A sealed join build table: partition-tagged pages plus its summary
    /// numbers (groups folded, table bytes, radix partition count).
    TablePages {
        /// Groups folded into this morsel's table.
        groups: u64,
        /// Bytes across the table's pages (broadcast-threshold signal).
        bytes: usize,
        /// Radix partition count the pages are tagged with.
        partitions: usize,
        /// The partition-tagged sealed map pages.
        pages: Vec<(usize, SealedPage)>,
    },
    /// Pre-aggregated `(partition, page)` pairs awaiting merge; a page may
    /// be resident or spilled (it reloads lazily at merge time).
    AggPartitions(Vec<(usize, AggPage)>),
}

impl MorselOutput {
    /// Seals a [`PipelineOutput`] into its `Send` form (must run on the
    /// thread that produced it, while its handles are still thread-local).
    pub fn seal(out: PipelineOutput) -> PcResult<Self> {
        Ok(match out {
            PipelineOutput::Pages(p) => MorselOutput::Pages(p),
            PipelineOutput::BuiltTable(t) => {
                let (groups, bytes, partitions) = (t.groups, t.bytes(), t.partitions());
                MorselOutput::TablePages {
                    groups,
                    bytes,
                    partitions,
                    pages: t.into_pages()?,
                }
            }
            PipelineOutput::AggPartitions(p) => MorselOutput::AggPartitions(p),
        })
    }
}

/// One planned second-pass chunk: `(spilled-partition index, lo page, hi
/// page)` — the half-open token range a wave reloads together.
type ChunkPlan = (usize, usize, usize);

/// A join build partition shed whole under memory pressure: its page chain
/// lives in the spill store until a second-pass wave reloads it.
pub struct SpilledPartition {
    /// The radix partition index the chain's pages are tagged with.
    pub part: usize,
    /// Spill-store tokens for the chain's pages, in chain order.
    pub tokens: Vec<u64>,
    /// Per-page payload bytes (the unit the wave chunker budgets in).
    pub page_bytes: Vec<usize>,
    /// Total bytes across the chain.
    pub bytes: usize,
}

/// A sealed, shareable join build table: partition-tagged pages plus the
/// tag filters built once at merge/gather time. Probe threads (local
/// morsel workers and remote cluster workers alike) reopen zero-copy
/// [`JoinTable`] views over it with [`SharedTable::open`].
///
/// Under a memory budget the table may be *partial*: partitions that did
/// not fit their reservation were sealed and spilled whole at gather time
/// (`spilled`), and the stage driver probes them in second-pass waves that
/// reload one budget-sized chunk of a chain at a time. The tag filters
/// always cover the **full** table — a spilled partition's filter is
/// exactly the reload skip-check the second pass reuses.
pub struct SharedTable {
    /// Build-side column count.
    pub arity: usize,
    /// Radix partition count the pages are tagged with.
    pub partitions: usize,
    /// Resident partition-tagged sealed map pages, in deterministic
    /// (morsel / gather) order.
    pub pages: Vec<(usize, Arc<SealedPage>)>,
    /// Per-partition 16-bit blocked-Bloom tag filters, built once over the
    /// full table (before any spilling) and shared by every reopening
    /// thread and every wave.
    pub filters: Vec<TagFilter>,
    /// Partitions shed whole to the spill store at gather time, sorted by
    /// partition index.
    pub spilled: Vec<SpilledPartition>,
    /// Where the spilled chains live (present iff anything spilled).
    spiller: Option<Arc<dyn PageSpiller>>,
    /// The budget reservation backing the resident pages; returned when the
    /// table drops.
    _grant: Option<MemoryGrant>,
}

impl SharedTable {
    /// Builds the shared form from partition-tagged pages, constructing the
    /// tag filters once from the stored entry hashes.
    pub fn from_tagged_pages(
        arity: usize,
        partitions: usize,
        pages: Vec<(usize, Arc<SealedPage>)>,
    ) -> PcResult<Self> {
        Self::from_tagged_pages_budgeted(arity, partitions, pages, None)
    }

    /// Builds the shared form under an optional memory budget. The gathered
    /// table's bytes are reserved against the budget; while the reservation
    /// is denied, the **largest** resident partition's whole page chain is
    /// sealed to the spill store and the (smaller) reservation retried —
    /// grace-style shedding. The loop always terminates: every denial sheds
    /// at least one page, and a zero-byte reservation is never denied, so
    /// in the worst case the table ends fully spilled with no grant held.
    pub fn from_tagged_pages_budgeted(
        arity: usize,
        partitions: usize,
        pages: Vec<(usize, Arc<SealedPage>)>,
        spill: Option<&SpillCtx>,
    ) -> PcResult<Self> {
        let partitions = JoinTable::round_partitions(partitions);
        // Filters cover the FULL table, built before anything spills: a
        // spilled partition's filter doubles as the second pass's reload
        // skip-check, and wave views reuse the same filter set unchanged.
        let filters = JoinTable::build_shared_tag_filters(partitions, &pages)?;
        let Some(ctx) = spill else {
            return Ok(SharedTable {
                arity,
                partitions,
                pages,
                filters,
                spilled: Vec::new(),
                spiller: None,
                _grant: None,
            });
        };
        let mut resident = pages;
        let mut spilled: Vec<SpilledPartition> = Vec::new();
        let mut total: usize = resident.iter().map(|(_, pg)| pg.used()).sum();
        let grant = loop {
            match ctx.budget.reserve(total) {
                Ok(g) => break Some(g),
                Err(PcError::MemoryPressure { .. }) => {
                    let mut per: HashMap<usize, usize> = HashMap::new();
                    for (part, pg) in &resident {
                        *per.entry(*part).or_insert(0) += pg.used();
                    }
                    // Largest partition first; ties break to the smallest
                    // index so the shed order is deterministic.
                    let Some((&victim, _)) = per
                        .iter()
                        .max_by_key(|(part, bytes)| (**bytes, std::cmp::Reverse(**part)))
                    else {
                        break None;
                    };
                    let mut keep = Vec::with_capacity(resident.len());
                    let mut tokens = Vec::new();
                    let mut page_bytes = Vec::new();
                    let mut bytes = 0usize;
                    for (part, pg) in resident {
                        if part == victim {
                            let used = pg.used();
                            tokens.push(ctx.spiller.spill(&pg)?);
                            page_bytes.push(used);
                            bytes += used;
                        } else {
                            keep.push((part, pg));
                        }
                    }
                    resident = keep;
                    total -= bytes;
                    spilled.push(SpilledPartition {
                        part: victim,
                        tokens,
                        page_bytes,
                        bytes,
                    });
                }
                Err(e) => return Err(e),
            }
        };
        spilled.sort_by_key(|sp| sp.part);
        let spiller = if spilled.is_empty() {
            None
        } else {
            Some(ctx.spiller.clone())
        };
        Ok(SharedTable {
            arity,
            partitions,
            pages: resident,
            filters,
            spilled,
            spiller,
            _grant: grant,
        })
    }

    /// Opens a read-only probe view (zero-copy page reopen, shared
    /// filters). Each probing thread opens its own view once and probes it
    /// for every morsel it runs. Spilled partitions simply have no resident
    /// pages: their probes route to an empty chain and match nothing — the
    /// second-pass waves own those rows.
    pub fn open(&self, page_size: usize) -> PcResult<JoinTable> {
        JoinTable::from_shared_pages(
            self.arity,
            page_size,
            self.partitions,
            &self.pages,
            &self.filters,
        )
    }

    /// How many partitions were shed to the spill store.
    pub fn spilled_partitions(&self) -> usize {
        self.spilled.len()
    }

    /// Total bytes across all spilled chains.
    pub fn spilled_bytes(&self) -> usize {
        self.spilled.iter().map(|sp| sp.bytes).sum()
    }

    /// A resident-only clone (shared pages and filters, no spill state) —
    /// the view of this table a second-pass wave uses when the wave is
    /// reloading some *other* table's chunk.
    fn resident_view(&self) -> SharedTable {
        SharedTable {
            arity: self.arity,
            partitions: self.partitions,
            pages: self.pages.clone(),
            filters: self.filters.clone(),
            spilled: Vec::new(),
            spiller: None,
            _grant: None,
        }
    }

    /// Plans the second-pass chunking of every spilled chain: each chunk is
    /// at least one page, grown greedily while the budget grants more. The
    /// planning reservations are sizing probes only (released immediately);
    /// [`Self::open_chunk`] re-reserves when a wave actually reloads.
    fn plan_chunks(&self, budget: Option<&MemoryBudget>) -> Vec<ChunkPlan> {
        let mut chunks = Vec::new();
        for (si, sp) in self.spilled.iter().enumerate() {
            let mut lo = 0;
            while lo < sp.page_bytes.len() {
                let mut hi = lo + 1;
                match budget {
                    Some(b) => {
                        if let Ok(mut g) = b.reserve(sp.page_bytes[lo]) {
                            while hi < sp.page_bytes.len() && g.grow(sp.page_bytes[hi]).is_ok() {
                                hi += 1;
                            }
                        }
                        // A denied first page still chunks alone: the wave
                        // must make progress under any denial pattern.
                    }
                    None => hi = sp.page_bytes.len(),
                }
                chunks.push((si, lo, hi));
                lo = hi;
            }
        }
        chunks
    }

    /// Reloads pages `lo..hi` of spilled chain `si` into a probe-able view.
    /// The reservation is best-effort: a denial must not stall the wave —
    /// reloading is the only path that drains the spill store.
    fn open_chunk(
        &self,
        si: usize,
        lo: usize,
        hi: usize,
        budget: Option<&MemoryBudget>,
    ) -> PcResult<SharedTable> {
        let sp = &self.spilled[si];
        let spiller = self
            .spiller
            .as_ref()
            .ok_or_else(|| PcError::Catalog("spilled join table has no spiller".into()))?;
        let bytes: usize = sp.page_bytes[lo..hi].iter().sum();
        let grant = budget.and_then(|b| b.reserve(bytes).ok());
        let mut pages = Vec::with_capacity(hi - lo);
        for k in lo..hi {
            pages.push((sp.part, Arc::new(spiller.reload(sp.tokens[k])?)));
        }
        Ok(SharedTable {
            arity: self.arity,
            partitions: self.partitions,
            pages,
            filters: self.filters.clone(),
            spilled: Vec::new(),
            spiller: None,
            _grant: grant,
        })
    }
}

/// Opens thread-local probe views of every table this pipeline probes.
fn open_probe_tables(
    config: &ExecConfig,
    p: &PipelineSpec,
    shared: &HashMap<String, SharedTable>,
) -> PcResult<HashMap<String, JoinTable>> {
    let mut local = HashMap::new();
    for t in p.probes() {
        let st = shared
            .get(t)
            .ok_or_else(|| PcError::Catalog(format!("join table {t} not built")))?;
        local.insert(t.to_string(), st.open(config.page_size)?);
    }
    Ok(local)
}

type MorselResults = PcResult<Vec<(usize, MorselOutput, ExecStats)>>;

/// One worker thread's loop: pull morsels (own deque first, then steal),
/// run each as an independent span with fresh sink state, seal its output,
/// and tag it with its morsel index for the deterministic merge.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    config: &ExecConfig,
    p: &PipelineSpec,
    rp: &crate::plan::ResolvedPipeline,
    aggs: &HashMap<String, Arc<dyn ErasedAgg>>,
    shared: &HashMap<String, SharedTable>,
    queue: &MorselQueue,
    me: usize,
) -> MorselResults {
    let mut state = ThreadState::new(rp.ops.len());
    let local_tables = open_probe_tables(config, p, shared)?;
    let mut acc = Vec::new();
    while let Some(m) = queue.next(me) {
        let (out, stats) = run_span(
            config,
            p,
            rp,
            aggs,
            &local_tables,
            &mut state,
            std::iter::once((&m.page, m.lo, m.hi)),
        )?;
        acc.push((m.index, MorselOutput::seal(out)?, stats));
    }
    Ok(acc)
}

/// Runs one pipeline stage morsel-driven over `config.threads`
/// work-stealing threads. Returns each morsel's sealed output **in morsel
/// order** plus the merged stats (also folded in morsel order, so even
/// stats are schedule-independent apart from `morsels_stolen`).
///
/// If any probed table shed partitions to the spill store at gather time,
/// the stage runs **second-pass waves** after the resident pass: one wave
/// per budget-sized chunk of each spilled chain (cartesian across tables
/// when several spilled), each wave re-scanning the input against a view
/// holding only that chunk. A build row lives in exactly one chunk, so the
/// waves' outputs union disjointly to the unbudgeted result; outputs
/// concatenate in wave order, which is deterministic given the chunk plan.
pub fn run_stage_morsels(
    config: &ExecConfig,
    p: &PipelineSpec,
    pages: &[Arc<SealedPage>],
    stages: &StageLibrary,
    aggs: &HashMap<String, Arc<dyn ErasedAgg>>,
    shared: &HashMap<String, SharedTable>,
) -> PcResult<(Vec<MorselOutput>, ExecStats)> {
    let rp = p.resolve(stages)?;
    let (mut outputs, mut stats) = run_wave(config, p, &rp, pages, aggs, shared)?;

    // ---- second pass: probe waves over spilled join partitions ----
    let spilled_tables: Vec<&str> = p
        .probes()
        .into_iter()
        .filter(|t| shared.get(*t).is_some_and(|st| !st.spilled.is_empty()))
        .collect();
    if spilled_tables.is_empty() || pages.is_empty() {
        return Ok((outputs, stats));
    }
    let budget = config.spill.as_ref().map(|s| s.budget.clone());
    // Per spilled table: its chunk plan. A wave picks, for every spilled
    // table, either the resident view (index 0) or one chunk (index i+1);
    // the all-resident combination was the first pass above.
    let plans: Vec<(&str, Vec<ChunkPlan>)> = spilled_tables
        .iter()
        .map(|t| (*t, shared[*t].plan_chunks(budget.as_ref())))
        .collect();
    let lens: Vec<usize> = plans.iter().map(|(_, c)| c.len() + 1).collect();
    let mut idx = vec![0usize; plans.len()];
    'waves: loop {
        // Odometer advance; starting from all-zero naturally skips the
        // resident×resident combination.
        let mut k = 0;
        loop {
            idx[k] += 1;
            if idx[k] < lens[k] {
                break;
            }
            idx[k] = 0;
            k += 1;
            if k == idx.len() {
                break 'waves;
            }
        }
        let mut wave_shared: HashMap<String, SharedTable> = HashMap::new();
        for t in p.probes() {
            let st = &shared[t];
            let view = match plans.iter().position(|(n, _)| *n == t) {
                Some(pi) if idx[pi] > 0 => {
                    let (si, lo, hi) = plans[pi].1[idx[pi] - 1];
                    st.open_chunk(si, lo, hi, budget.as_ref())?
                }
                _ => st.resident_view(),
            };
            wave_shared.insert(t.to_string(), view);
        }
        let (wave_out, wave_stats) = run_wave(config, p, &rp, pages, aggs, &wave_shared)?;
        stats.absorb(&wave_stats);
        stats.spill_waves += 1;
        outputs.extend(wave_out);
    }
    Ok((outputs, stats))
}

/// One pass of a stage over `pages` against one set of probe views: the
/// morsel-driven core of [`run_stage_morsels`].
fn run_wave(
    config: &ExecConfig,
    p: &PipelineSpec,
    rp: &crate::plan::ResolvedPipeline,
    pages: &[Arc<SealedPage>],
    aggs: &HashMap<String, Arc<dyn ErasedAgg>>,
    shared: &HashMap<String, SharedTable>,
) -> PcResult<(Vec<MorselOutput>, ExecStats)> {
    let morsels = carve_morsels(pages, config.morsel_rows)?;

    if morsels.is_empty() {
        // No input rows: still run the sink machinery once so an empty
        // input yields the sink's (empty) output — a finished empty table,
        // a flushed map — exactly as the single-threaded engine does.
        let mut state = ThreadState::new(rp.ops.len());
        let local_tables = open_probe_tables(config, p, shared)?;
        let (out, mut stats) = run_span(
            config,
            p,
            rp,
            aggs,
            &local_tables,
            &mut state,
            std::iter::empty(),
        )?;
        stats.threads_used = stats.threads_used.max(1);
        return Ok((vec![MorselOutput::seal(out)?], stats));
    }

    // Never spawn more threads than there are morsels to run.
    let nthreads = config.threads.max(1).min(morsels.len());
    let queue = MorselQueue::deal(morsels, nthreads);

    let per_thread: Vec<MorselResults> = if nthreads == 1 {
        // Single-threaded: run inline, no spawn overhead.
        vec![run_worker(config, p, rp, aggs, shared, &queue, 0)]
    } else {
        std::thread::scope(|scope| {
            let queue = &queue;
            let handles: Vec<_> = (0..nthreads)
                .map(|t| scope.spawn(move || run_worker(config, p, rp, aggs, shared, queue, t)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("morsel worker"))
                .collect()
        })
    };

    let mut tagged = Vec::new();
    for r in per_thread {
        tagged.extend(r?);
    }
    // The deterministic merge: outputs and stats fold by morsel index, not
    // completion order.
    tagged.sort_by_key(|(i, _, _)| *i);
    let mut stats = ExecStats::default();
    let mut outputs = Vec::with_capacity(tagged.len());
    for (_, out, s) in tagged {
        stats.absorb(&s);
        outputs.push(out);
    }
    stats.morsels_dispatched += queue.dispatched();
    stats.morsels_stolen += queue.stolen();
    stats.threads_used = stats.threads_used.max(nthreads);
    Ok((outputs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_lambda::SetWriter;
    use pc_object::{make_object, PcVec};

    fn page_with(rows: usize) -> Arc<SealedPage> {
        let mut w = SetWriter::new(1 << 20);
        for i in 0..rows {
            w.write_with(|| {
                let v = make_object::<PcVec<i64>>()?;
                v.push(i as i64)?;
                Ok(v.erase())
            })
            .unwrap();
        }
        let pages = w.finish().unwrap();
        assert_eq!(pages.len(), 1);
        Arc::new(pages.into_iter().next().unwrap())
    }

    #[test]
    fn carve_respects_page_boundaries_and_morsel_rows() {
        let pages = vec![page_with(10), page_with(3), page_with(7)];
        let morsels = carve_morsels(&pages, 4).unwrap();
        let runs: Vec<(usize, usize)> = morsels.iter().map(|m| (m.lo, m.hi)).collect();
        assert_eq!(
            runs,
            vec![(0, 4), (4, 8), (8, 10), (0, 3), (0, 4), (4, 7)],
            "morsels cover every row exactly once and never span a page"
        );
        assert!(morsels.iter().enumerate().all(|(i, m)| m.index == i));
        // The decomposition ignores thread count entirely — only rows and
        // morsel_rows matter.
        assert_eq!(carve_morsels(&pages, 4).unwrap().len(), morsels.len());
    }

    #[test]
    fn carve_of_empty_input_is_empty() {
        assert!(carve_morsels(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn queue_drains_every_morsel_exactly_once_and_counts_steals() {
        let pages = vec![page_with(64)];
        let morsels = carve_morsels(&pages, 4).unwrap();
        let n = morsels.len();
        assert_eq!(n, 16);
        let q = MorselQueue::deal(morsels, 4);
        // Thread 3 never shows up; thread 0 does all the work, stealing
        // everything dealt to 1, 2, and 3.
        let mut seen = Vec::new();
        while let Some(m) = q.next(0) {
            seen.push(m.index);
        }
        assert_eq!(q.dispatched(), n as u64);
        assert_eq!(q.stolen(), (n - n / 4) as u64);
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..n).collect::<Vec<_>>(),
            "no morsel lost or duplicated"
        );
    }

    #[test]
    fn steals_come_from_the_back_of_the_victim() {
        let pages = vec![page_with(8)];
        let q = MorselQueue::deal(carve_morsels(&pages, 1).unwrap(), 2);
        // Thread 1 owns indices 1,3,5,7 (front→back). A thief takes 7 first.
        let stolen = q.next(0); // own deque: 0
        assert_eq!(stolen.unwrap().index, 0);
        for _ in 0..3 {
            q.next(0);
        }
        // Own deque (0,2,4,6) is drained; next pull steals 1's back = 7.
        assert_eq!(q.next(0).unwrap().index, 7);
        assert_eq!(q.next(1).unwrap().index, 1, "victim still pops its front");
    }
}
