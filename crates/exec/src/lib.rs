//! # pc-exec — PlinyCompute's vectorized execution engine
//!
//! Implements §5 and Appendix C: the physical planner that breaks an
//! optimized TCAP program into **pipelines** ending in **pipe sinks**, and
//! the vectorized executor that pushes *vector lists* (batches of columns)
//! through compiled pipeline stages.
//!
//! Key behaviours reproduced from the paper:
//!
//! * pipelines are maximal APPLY/FILTER/HASH/FLATMAP chains; they end at
//!   JOIN build inputs, AGGREGATE, OUTPUT, or any multi-consumer edge, and
//!   a probe side runs *through* a JOIN into the next stages (Figure 3);
//! * output objects are allocated **in place on the live output page**;
//!   `BlockFull` faults retire the page (sealing it, or parking it as a
//!   *zombie output page* when in-flight columns still pin it — Appendix C);
//! * join hash tables and aggregation maps are PC `Map` objects on pages,
//!   built and probed with no serialization (Appendix D).

pub mod jointable;
pub mod local;
pub mod morsel;
pub mod plan;
pub mod vlist;

pub use jointable::{JoinTable, TagFilter, DEFAULT_JOIN_PARTITIONS};
pub use local::{
    default_threads, run_pipeline_stage, ExecConfig, ExecStats, LocalExecutor, PipelineOutput,
    TMP_DB,
};
pub use morsel::{
    carve_morsels, run_stage_morsels, Morsel, MorselOutput, MorselQueue, SharedTable,
};
pub use plan::{
    describe_decompositions, plan, AggDest, PhysicalPlan, PipeOp, PipelineSpec, ResolvedOp,
    ResolvedPipeline, ResolvedSink, Sink, Source,
};
pub use vlist::VectorList;
