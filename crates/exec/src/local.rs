//! Pipeline execution.
//!
//! [`run_pipeline_stage`] is the core engine: it pushes every batch of one
//! pipeline over a given list of input pages and returns what the pipe sink
//! produced. [`LocalExecutor`] composes it into a single-node engine; the
//! distributed runtime in `pc-cluster` calls the same function once per
//! worker (a `PipelineJobStage`) and shuffles the outputs between nodes.
//!
//! Batch mechanics follow Appendix C: input pages stay pinned while a batch
//! built from them is in flight; object-producing kernels allocate directly
//! on the live output page (or a recycled scratch page for non-output
//! sinks); `BlockFull` faults retire pages — zombifying them when in-flight
//! columns still pin them — and retry the failed stage.

use crate::jointable::JoinTable;
use crate::plan::{plan, AggDest, PhysicalPlan, PipeOp, PipelineSpec, Sink, Source};
use crate::vlist::VectorList;
use pc_lambda::{
    Column, ColumnKernel, CompiledQuery, ErasedAgg, ErasedAggSink, ExecCtx, SetWriter, StageKernel,
    StageLibrary,
};
use pc_object::{
    AllocPolicy, AllocScope, AnyHandle, AnyObj, BlockRef, Handle, PcError, PcResult, PcVec,
    SealedPage,
};
use pc_storage::StorageManager;
use std::collections::HashMap;
use std::sync::Arc;

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Rows per vector list ("the number of objects in a vector can be
    /// tuned to fit the L1 or L2 cache", §5.2).
    pub batch_size: usize,
    /// Output/table page size (PC's default is 256 MB; scaled down here).
    pub page_size: usize,
    /// Hash partitions for aggregation sinks.
    pub agg_partitions: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            batch_size: 1024,
            page_size: 1 << 20,
            agg_partitions: 4,
        }
    }
}

/// Run statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    pub pipelines_run: usize,
    pub batches: u64,
    pub rows_in: u64,
    pub rows_out: u64,
    pub pages_written: u64,
    pub join_groups: u64,
    pub agg_groups: u64,
    pub max_zombie_pages: usize,
}

impl ExecStats {
    pub fn absorb(&mut self, other: &ExecStats) {
        self.batches += other.batches;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.pages_written += other.pages_written;
        self.join_groups += other.join_groups;
        self.agg_groups += other.agg_groups;
        self.max_zombie_pages = self.max_zombie_pages.max(other.max_zombie_pages);
    }
}

/// What a pipeline's sink produced (before any storage/shuffle routing).
pub enum PipelineOutput {
    /// Sealed output pages (OUTPUT / materialization sinks).
    Pages(Vec<SealedPage>),
    /// A built join hash table.
    BuiltTable(JoinTable),
    /// Pre-aggregated `(partition, page)` pairs awaiting merge.
    AggPartitions(Vec<(usize, SealedPage)>),
}

/// The database name intermediates are materialized under.
pub const TMP_DB: &str = "__tmp";

/// Runs one pipeline over `pages` (a `PipelineJobStage` in Appendix D's
/// terms). `tables` supplies the hash tables for every join this pipeline
/// probes.
pub fn run_pipeline_stage(
    config: &ExecConfig,
    p: &PipelineSpec,
    pages: &[Arc<SealedPage>],
    stages: &StageLibrary,
    aggs: &HashMap<String, Arc<dyn ErasedAgg>>,
    tables: &HashMap<String, JoinTable>,
) -> PcResult<(PipelineOutput, ExecStats)> {
    let mut stats = ExecStats::default();
    let source_col = match &p.source {
        Source::Set { col, .. } | Source::Intermediate { col, .. } => col.clone(),
    };
    let mut writer: Option<SetWriter> = match &p.sink {
        Sink::Output { .. } | Sink::Materialize { .. } => Some(SetWriter::new(config.page_size)),
        _ => None,
    };
    let mut agg_sink: Option<Box<dyn ErasedAggSink>> = match &p.sink {
        Sink::AggProduce { comp, .. } => {
            let agg = aggs
                .get(comp)
                .ok_or_else(|| PcError::Catalog(format!("no aggregation engine for {comp}")))?;
            Some(agg.new_sink(config.agg_partitions, config.page_size))
        }
        _ => None,
    };
    let mut build_table = match &p.sink {
        Sink::JoinBuild { obj_cols, .. } => Some(JoinTable::new(obj_cols.len(), config.page_size)),
        _ => None,
    };
    let mut scratch = ScratchPage::new(config.page_size);

    for page in pages {
        // Zero-copy read view of the input page (pinned while the Arc and
        // the batch's handles live).
        let (_block, root) = page.open_view()?;
        let root: Handle<PcVec<Handle<AnyObj>>> = root.downcast()?;
        let total = root.len();
        let mut at = 0usize;
        while at < total {
            let hi = (at + config.batch_size).min(total);
            let mut vl = VectorList::new();
            let handles: Vec<AnyHandle> = (at..hi).map(|i| root.get(i).erase()).collect();
            stats.rows_in += handles.len() as u64;
            vl.push(&source_col, Column::Obj(handles));
            at = hi;

            run_batch(
                p,
                stages,
                tables,
                &mut vl,
                &mut writer,
                &mut agg_sink,
                &mut build_table,
                &mut scratch,
            )?;
            stats.batches += 1;
            // Batch boundary: the vector list dies, zombies release.
            vl.clear();
            if let Some(w) = writer.as_mut() {
                stats.max_zombie_pages = stats.max_zombie_pages.max(w.max_zombies);
                w.release_zombies()?;
            }
        }
    }

    let output = match &p.sink {
        Sink::Output { .. } | Sink::Materialize { .. } => {
            let w = writer.take().unwrap();
            stats.rows_out += w.objects_written;
            let pages = w.finish()?;
            stats.pages_written += pages.len() as u64;
            PipelineOutput::Pages(pages)
        }
        Sink::JoinBuild { .. } => {
            let t = build_table.take().unwrap();
            stats.join_groups += t.groups;
            PipelineOutput::BuiltTable(t)
        }
        Sink::AggProduce { .. } => {
            let mut sink = agg_sink.take().unwrap();
            PipelineOutput::AggPartitions(sink.flush()?)
        }
    };
    Ok((output, stats))
}

#[allow(clippy::too_many_arguments)]
fn run_batch(
    p: &PipelineSpec,
    stages: &StageLibrary,
    tables: &HashMap<String, JoinTable>,
    vl: &mut VectorList,
    writer: &mut Option<SetWriter>,
    agg_sink: &mut Option<Box<dyn ErasedAggSink>>,
    build_table: &mut Option<JoinTable>,
    scratch: &mut ScratchPage,
) -> PcResult<()> {
    for op in &p.ops {
        if vl.is_empty() {
            return Ok(());
        }
        match op {
            PipeOp::Apply {
                comp,
                stage,
                inputs,
                out,
                keep,
            } => {
                let kernel = match stages.get(comp, stage) {
                    Some(StageKernel::Map(k)) => k.clone(),
                    _ => {
                        return Err(PcError::Catalog(format!(
                            "no map kernel registered for {comp}.{stage}"
                        )))
                    }
                };
                let col = apply_with_retry(&kernel, inputs, vl, writer, scratch)?;
                vl.push(out, col);
                retain_with_hashes(vl, keep);
            }
            PipeOp::Filter { bool_col, keep } => {
                let mask: Vec<bool> = vl.col(bool_col)?.as_bool()?.to_vec();
                vl.filter(&mask);
                retain_with_hashes(vl, keep);
            }
            PipeOp::FlatMap {
                comp,
                stage,
                input,
                out,
                keep,
            } => {
                let kernel = match stages.get(comp, stage) {
                    Some(StageKernel::FlatMap(k)) => k.clone(),
                    _ => {
                        return Err(PcError::Catalog(format!(
                            "no flatmap kernel registered for {comp}.{stage}"
                        )))
                    }
                };
                let mut result = None;
                for attempt in 0..8 {
                    let block = kernel_block(writer, scratch)?;
                    let scope = AllocScope::install(block.clone());
                    let mut ctx = ExecCtx::new(block);
                    let r = kernel.apply(&[vl.col(input)?], &mut ctx);
                    drop(scope);
                    match r {
                        Ok(v) => {
                            result = Some(v);
                            break;
                        }
                        Err(PcError::BlockFull { .. }) if attempt < 7 => {
                            roll_kernel_page(writer, scratch)?;
                        }
                        Err(e) => return Err(e),
                    }
                }
                let (col, counts) = result.ok_or_else(|| {
                    PcError::Catalog("flatmap exceeded page-fault retries".into())
                })?;
                vl.replicate(&counts);
                vl.push(out, col);
                retain_with_hashes(vl, keep);
            }
            PipeOp::Hash { input, out, keep } => {
                let col = {
                    let mut ctx = ExecCtx::new(scratch.block()?);
                    pc_lambda::kernel::HashKernel.apply(&[vl.col(input)?], &mut ctx)?
                };
                vl.push(out, col);
                retain_with_hashes(vl, keep);
            }
            PipeOp::Probe {
                table,
                hash_col,
                build_cols,
                keep,
            } => {
                let t = tables
                    .get(table)
                    .ok_or_else(|| PcError::Catalog(format!("join table {table} not built")))?;
                let hashes: Vec<u64> = vl.col(hash_col)?.as_u64()?.to_vec();
                let mut idx: Vec<u32> = Vec::new();
                let mut built: Vec<Vec<AnyHandle>> = (0..t.arity()).map(|_| Vec::new()).collect();
                for (i, h) in hashes.iter().enumerate() {
                    t.probe(*h, |group| {
                        idx.push(i as u32);
                        for (k, g) in group.iter().enumerate() {
                            built[k].push(g.clone());
                        }
                        Ok(())
                    })?;
                }
                vl.gather(&idx);
                for (k, name) in build_cols.iter().enumerate() {
                    vl.push(name, Column::Obj(std::mem::take(&mut built[k])));
                }
                retain_with_hashes(vl, keep);
            }
        }
    }
    if vl.is_empty() {
        return Ok(());
    }
    match &p.sink {
        Sink::Output { col, .. } | Sink::Materialize { col, .. } => {
            let w = writer.as_mut().unwrap();
            let objs: Vec<AnyHandle> = vl.col(col)?.as_obj()?.to_vec();
            for h in &objs {
                w.write_handle(h)?;
            }
        }
        Sink::AggProduce { col, .. } => {
            agg_sink.as_mut().unwrap().absorb(vl.col(col)?)?;
        }
        Sink::JoinBuild {
            hash_col, obj_cols, ..
        } => {
            let t = build_table.as_mut().unwrap();
            let hashes: Vec<u64> = vl.col(hash_col)?.as_u64()?.to_vec();
            let cols: Vec<Vec<AnyHandle>> = obj_cols
                .iter()
                .map(|c| vl.col(c).and_then(|c| c.as_obj().map(|o| o.to_vec())))
                .collect::<PcResult<_>>()?;
            let mut group: Vec<AnyHandle> = Vec::with_capacity(cols.len());
            for (i, h) in hashes.iter().enumerate() {
                group.clear();
                for c in &cols {
                    group.push(c[i].clone());
                }
                t.insert(*h, &group)?;
            }
        }
    }
    Ok(())
}

/// The block kernels should allocate on: the live output page for
/// OUTPUT-like sinks (objects land where they are needed), a recycled
/// scratch page otherwise.
fn kernel_block(writer: &mut Option<SetWriter>, scratch: &mut ScratchPage) -> PcResult<BlockRef> {
    match writer {
        Some(w) => w.live_block(),
        None => scratch.block(),
    }
}

fn roll_kernel_page(writer: &mut Option<SetWriter>, scratch: &mut ScratchPage) -> PcResult<()> {
    match writer {
        Some(w) => {
            // Same-size retries can fault forever when one batch's output
            // exceeds a page; escalate the page size as we retry.
            w.escalate_page_size();
            w.retire_live_page()
        }
        None => scratch.roll(),
    }
}

fn apply_with_retry(
    kernel: &Arc<dyn ColumnKernel>,
    inputs: &[String],
    vl: &VectorList,
    writer: &mut Option<SetWriter>,
    scratch: &mut ScratchPage,
) -> PcResult<Column> {
    for attempt in 0..8 {
        let block = kernel_block(writer, scratch)?;
        let scope = AllocScope::install(block.clone());
        let mut ctx = ExecCtx::new(block);
        let cols: Vec<&Column> = inputs
            .iter()
            .map(|n| vl.col(n))
            .collect::<PcResult<Vec<_>>>()?;
        let r = kernel.apply(&cols, &mut ctx);
        drop(scope);
        match r {
            Ok(col) => return Ok(col),
            Err(PcError::BlockFull { .. }) if attempt < 7 => {
                // Page fault: retire the page (it may zombify if pinned by
                // this batch's earlier columns), escalate, retry the stage.
                roll_kernel_page(writer, scratch)?;
            }
            Err(e) => return Err(e),
        }
    }
    Err(PcError::Catalog(
        "pipeline stage exceeded page-fault retries".into(),
    ))
}

/// Hash columns the join ops still need may be missing from `keep` when the
/// optimizer pruned the original TCAP columns; conservatively retain every
/// `hash*` column.
fn retain_with_hashes(vl: &mut VectorList, keep: &[String]) {
    let mut keep2 = keep.to_vec();
    for n in vl.names() {
        if n.starts_with("hash") && !keep2.iter().any(|k| k == n) {
            keep2.push(n.to_string());
        }
    }
    vl.retain(&keep2);
}

/// A recycled allocation page for intermediate objects in pipelines whose
/// sink is not an output page (the paper's intermediate-data pages).
struct ScratchPage {
    size: usize,
    block: Option<BlockRef>,
}

impl ScratchPage {
    fn new(size: usize) -> Self {
        ScratchPage { size, block: None }
    }

    fn block(&mut self) -> PcResult<BlockRef> {
        if self.block.is_none() {
            self.block = Some(BlockRef::new(self.size, AllocPolicy::LightweightReuse));
        }
        Ok(self.block.as_ref().unwrap().clone())
    }

    /// Abandons the current scratch page (a zombie page in §C's taxonomy —
    /// it dies when the batch's handles drop) and escalates the size so a
    /// batch whose intermediates exceed one page eventually fits.
    fn roll(&mut self) -> PcResult<()> {
        self.block = None;
        self.size = (self.size * 2).min(256 << 20);
        Ok(())
    }
}

// --------------------------------------------------------- local executor

/// Executes physical plans on one node.
pub struct LocalExecutor {
    pub storage: StorageManager,
    pub config: ExecConfig,
}

impl LocalExecutor {
    pub fn new(storage: StorageManager, config: ExecConfig) -> Self {
        LocalExecutor { storage, config }
    }

    /// Plans and runs a compiled query.
    pub fn execute(&self, q: &CompiledQuery) -> PcResult<ExecStats> {
        let physical = plan(&q.tcap)?;
        self.run_plan(&physical, &q.stages, &q.aggs)
    }

    /// Runs an already-planned query.
    pub fn run_plan(
        &self,
        physical: &PhysicalPlan,
        stages: &StageLibrary,
        aggs: &HashMap<String, Arc<dyn ErasedAgg>>,
    ) -> PcResult<ExecStats> {
        let mut stats = ExecStats::default();
        let mut tables: HashMap<String, JoinTable> = HashMap::new();
        for p in &physical.pipelines {
            let pages = match &p.source {
                Source::Set { db, set, .. } => self.storage.scan(db, set)?,
                Source::Intermediate { list, .. } => self.storage.scan(TMP_DB, list)?,
            };
            let (output, s) = run_pipeline_stage(&self.config, p, &pages, stages, aggs, &tables)?;
            stats.absorb(&s);
            match output {
                PipelineOutput::Pages(pages) => {
                    let (db, set) = match &p.sink {
                        Sink::Output { db, set, .. } => (db.clone(), set.clone()),
                        Sink::Materialize { list, .. } => {
                            self.storage.catalog().ensure_set(TMP_DB, list);
                            (TMP_DB.to_string(), list.clone())
                        }
                        _ => unreachable!(),
                    };
                    for page in pages {
                        self.storage.append_page(&db, &set, page)?;
                    }
                }
                PipelineOutput::BuiltTable(t) => {
                    let Sink::JoinBuild { table, .. } = &p.sink else {
                        unreachable!()
                    };
                    tables.insert(table.clone(), t);
                }
                PipelineOutput::AggPartitions(parts) => {
                    // Local consuming stage (AggregationJobStage): merge all
                    // partition pages, then materialize groups.
                    let Sink::AggProduce { comp, dest, .. } = &p.sink else {
                        unreachable!()
                    };
                    let agg = aggs.get(comp).unwrap();
                    let mut merger = agg.new_merger(self.config.page_size);
                    for (_part, page) in parts {
                        merger.merge_page(page)?;
                    }
                    let mut out_writer = SetWriter::new(self.config.page_size);
                    stats.agg_groups += merger.finalize(&mut out_writer)?;
                    let (db, set): (&str, &str) = match dest {
                        AggDest::Set { db, set } => (db, set),
                        AggDest::Intermediate { list } => {
                            self.storage.catalog().ensure_set(TMP_DB, list);
                            (TMP_DB, list)
                        }
                    };
                    stats.rows_out += out_writer.objects_written;
                    for page in out_writer.finish()? {
                        self.storage.append_page(db, set, page)?;
                        stats.pages_written += 1;
                    }
                }
            }
            stats.pipelines_run += 1;
        }
        Ok(stats)
    }
}
