//! Pipeline execution.
//!
//! [`run_span`]-over-morsels is the core engine: `crate::morsel` carves a
//! stage's input pages into fixed-size morsels and worker threads pull them
//! from a work-stealing queue, each running the per-batch loop defined here
//! with its own sink state. [`run_pipeline_stage`] is the single-threaded
//! form (one span covering every page); [`LocalExecutor`] composes the
//! morsel driver into a single-node engine, and the distributed runtime in
//! `pc-cluster` calls the same driver once per worker (a
//! `PipelineJobStage`) and shuffles the outputs between nodes.
//!
//! Batch mechanics follow Appendix C: input pages stay pinned while a batch
//! built from them is in flight; object-producing kernels allocate directly
//! on the live output page (or a recycled scratch page for non-output
//! sinks); `BlockFull` faults retire pages — zombifying them when in-flight
//! columns still pin them — and retry the failed stage.

use crate::jointable::JoinTable;
use crate::morsel::{run_stage_morsels, MorselOutput, SharedTable};
use crate::plan::{
    plan, AggDest, PhysicalPlan, PipelineSpec, ResolvedOp, ResolvedPipeline, ResolvedSink, Sink,
    Source,
};
use crate::vlist::VectorList;
use pc_lambda::{
    for_each_sel, sel_len, AggPage, Column, ColumnKernel, ColumnPool, CompiledQuery, ErasedAgg,
    ErasedAggSink, ExecCtx, SetWriter, SpillCtx, StageLibrary,
};
use pc_object::{
    AllocPolicy, AllocScope, AnyHandle, AnyObj, BlockRef, Handle, PcError, PcResult, PcVec,
    SealedPage,
};
use pc_storage::StorageManager;
use std::collections::HashMap;
use std::sync::Arc;

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Rows per vector list ("the number of objects in a vector can be
    /// tuned to fit the L1 or L2 cache", §5.2).
    pub batch_size: usize,
    /// Output/table page size (PC's default is 256 MB; scaled down here).
    pub page_size: usize,
    /// Hash partitions for aggregation sinks.
    pub agg_partitions: usize,
    /// Radix partitions for join build tables (rounded to a power of two;
    /// probes route to one partition's page chain instead of scanning every
    /// table page).
    pub join_partitions: usize,
    /// Worker threads per pipeline stage (the paper's pipelining threads).
    /// Defaults to the available cores; the `PC_THREADS` environment
    /// variable overrides the default. Results are byte-identical for every
    /// value — outputs merge in morsel order, never completion order.
    pub threads: usize,
    /// Rows per morsel (the unit of work-stealing parallelism). A morsel
    /// never spans pages, so the effective size is
    /// `min(morsel_rows, rows left on the page)`. The decomposition — and
    /// therefore the merged output — depends only on this knob and the
    /// input pages, not on `threads`.
    pub morsel_rows: usize,
    /// Out-of-core context: the [`MemoryBudget`](pc_object::MemoryBudget)
    /// operators reserve working memory against, plus the spill store a
    /// partition's page chain is shed to when a reservation is denied.
    /// `None` (the default) is the old fully-in-memory behavior: nothing is
    /// reserved and nothing can spill.
    pub spill: Option<SpillCtx>,
    /// Run the [`pc_tcap::verify`] static verifier over every TCAP program
    /// before planning it, refusing ill-formed plans with
    /// [`PcError::PlanRejected`] instead of executing garbage. On by
    /// default; turn off only to benchmark the (tiny) verification cost or
    /// to deliberately feed the executor broken plans in tests.
    pub verify_plans: bool,
}

/// Default stage thread count: `PC_THREADS` when set to a positive integer,
/// otherwise the number of available cores.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("PC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            batch_size: 1024,
            page_size: 1 << 20,
            agg_partitions: 4,
            join_partitions: 8,
            threads: default_threads(),
            morsel_rows: 32 * 1024,
            spill: None,
            verify_plans: true,
        }
    }
}

/// Run statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    pub pipelines_run: usize,
    pub batches: u64,
    pub rows_in: u64,
    pub rows_out: u64,
    pub pages_written: u64,
    pub join_groups: u64,
    pub agg_groups: u64,
    /// Rows folded into pre-aggregation partition maps (the producing side
    /// of Appendix D.2's two-phase aggregation).
    pub rows_aggregated: u64,
    /// Partition map pages sealed for shuffling by pre-aggregation sinks.
    pub map_pages_sealed: u64,
    /// Rows that probed a join hash table.
    pub rows_probed: u64,
    /// Match groups those probes produced.
    pub join_matches: u64,
    /// Join build table pages finished by build sinks (the partitioned
    /// chains' pages, sealed for broadcast in the distributed runtime).
    pub build_pages_sealed: u64,
    /// Morsels handed out by stage schedulers (shared-queue dispatches;
    /// monotone across merges).
    pub morsels_dispatched: u64,
    /// Morsels a worker thread stole from another thread's deque after its
    /// own drained (monotone across merges).
    pub morsels_stolen: u64,
    /// High-water mark of worker threads any single stage actually used.
    pub threads_used: usize,
    pub max_zombie_pages: usize,
    /// Pre-aggregation partition pages spilled under memory pressure
    /// (whole-chain sheds plus the sealing page that triggered them).
    pub agg_pages_spilled: u64,
    /// Bytes of pre-aggregation pages spilled.
    pub agg_bytes_spilled: u64,
    /// Join build partitions shed whole to the spill store at gather time.
    pub join_partitions_spilled: u64,
    /// Bytes of join build pages spilled.
    pub join_bytes_spilled: u64,
    /// Second-pass probe waves run over reloaded spilled join partitions.
    pub spill_waves: u64,
    /// Buffer-pool counters over the run (deltas of the executing node's
    /// pool, surfaced so `repro` tables can print pool behavior per run).
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub pool_evictions: u64,
    pub pool_spills: u64,
    pub pool_bytes_spilled: u64,
}

impl ExecStats {
    pub fn absorb(&mut self, other: &ExecStats) {
        self.pipelines_run += other.pipelines_run;
        self.batches += other.batches;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.pages_written += other.pages_written;
        self.join_groups += other.join_groups;
        self.agg_groups += other.agg_groups;
        self.rows_aggregated += other.rows_aggregated;
        self.map_pages_sealed += other.map_pages_sealed;
        self.rows_probed += other.rows_probed;
        self.join_matches += other.join_matches;
        self.build_pages_sealed += other.build_pages_sealed;
        self.morsels_dispatched += other.morsels_dispatched;
        self.morsels_stolen += other.morsels_stolen;
        self.threads_used = self.threads_used.max(other.threads_used);
        self.max_zombie_pages = self.max_zombie_pages.max(other.max_zombie_pages);
        self.agg_pages_spilled += other.agg_pages_spilled;
        self.agg_bytes_spilled += other.agg_bytes_spilled;
        self.join_partitions_spilled += other.join_partitions_spilled;
        self.join_bytes_spilled += other.join_bytes_spilled;
        self.spill_waves += other.spill_waves;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
        self.pool_evictions += other.pool_evictions;
        self.pool_spills += other.pool_spills;
        self.pool_bytes_spilled += other.pool_bytes_spilled;
    }
}

/// Per-thread execution state that outlives any single morsel: the recycled
/// column-buffer pool (thread-affine, so a morsel's batch buffers stay hot
/// on the thread that ran it) and the observed per-op flat-map fan-out
/// ratios used to pre-size kernel output buffers on later morsels.
pub struct ThreadState {
    pool: ColumnPool,
    /// Cumulative `(rows_in, values_out)` per resolved op slot. Only
    /// flat-map slots are ever updated; a capacity hint never changes what
    /// a kernel produces, so this thread-history state is exempt from the
    /// determinism argument.
    fanout: Vec<(u64, u64)>,
}

impl ThreadState {
    /// Fresh state for a pipeline resolved to `ops` op slots.
    pub fn new(ops: usize) -> Self {
        ThreadState {
            pool: ColumnPool::default(),
            fanout: vec![(0, 0); ops],
        }
    }

    /// Predicted total output values for `live` input rows at op `op`,
    /// or 0 when this thread has observed nothing yet.
    fn fanout_hint(&self, op: usize, live: usize) -> usize {
        let (rows_in, vals_out) = self.fanout[op];
        vals_out
            .saturating_mul(live as u64)
            .checked_div(rows_in)
            .unwrap_or(0) as usize
    }

    fn record_fanout(&mut self, op: usize, live: usize, vals_out: usize) {
        let e = &mut self.fanout[op];
        e.0 += live as u64;
        e.1 += vals_out as u64;
    }
}

/// What a pipeline's sink produced (before any storage/shuffle routing).
pub enum PipelineOutput {
    /// Sealed output pages (OUTPUT / materialization sinks).
    Pages(Vec<SealedPage>),
    /// A built join hash table (boxed: the partitioned table's inline state
    /// dwarfs the other variants).
    BuiltTable(Box<JoinTable>),
    /// Pre-aggregated `(partition, page)` pairs awaiting merge; a page may
    /// be resident or spilled (it reloads lazily at merge time).
    AggPartitions(Vec<(usize, AggPage)>),
}

/// The database name intermediates are materialized under.
pub const TMP_DB: &str = "__tmp";

/// Runs one pipeline over `pages` single-threaded, as one span (the
/// pre-morsel engine entry point, kept for differential tests and simple
/// callers). `tables` supplies the hash tables for every join this
/// pipeline probes.
pub fn run_pipeline_stage(
    config: &ExecConfig,
    p: &PipelineSpec,
    pages: &[Arc<SealedPage>],
    stages: &StageLibrary,
    aggs: &HashMap<String, Arc<dyn ErasedAgg>>,
    tables: &HashMap<String, JoinTable>,
) -> PcResult<(PipelineOutput, ExecStats)> {
    // Resolve names → slots and stages → kernels once, off the batch path.
    let rp = p.resolve(stages)?;
    let mut state = ThreadState::new(rp.ops.len());
    run_span(
        config,
        p,
        &rp,
        aggs,
        tables,
        &mut state,
        pages.iter().map(|pg| (pg, 0, usize::MAX)),
    )
}

/// Runs one pipeline over a span of `(page, lo, hi)` row ranges with fresh
/// sink state, on the calling thread. This is the unit a morsel scheduler
/// dispatches: every morsel gets its own sinks, so its output depends only
/// on its input rows and merges deterministically by morsel index.
pub(crate) fn run_span<'a>(
    config: &ExecConfig,
    p: &PipelineSpec,
    rp: &ResolvedPipeline,
    aggs: &HashMap<String, Arc<dyn ErasedAgg>>,
    tables: &HashMap<String, JoinTable>,
    state: &mut ThreadState,
    spans: impl Iterator<Item = (&'a Arc<SealedPage>, usize, usize)>,
) -> PcResult<(PipelineOutput, ExecStats)> {
    let mut stats = ExecStats::default();
    let mut writer: Option<SetWriter> = match &p.sink {
        Sink::Output { .. } | Sink::Materialize { .. } => Some(SetWriter::new(config.page_size)),
        _ => None,
    };
    let mut agg_sink: Option<Box<dyn ErasedAggSink>> = match &p.sink {
        Sink::AggProduce { comp, .. } => {
            let agg = aggs
                .get(comp)
                .ok_or_else(|| PcError::Catalog(format!("no aggregation engine for {comp}")))?;
            Some(agg.new_sink(
                config.agg_partitions,
                config.page_size,
                config.spill.clone(),
            ))
        }
        _ => None,
    };
    let mut build_table = match &p.sink {
        Sink::JoinBuild { obj_cols, .. } => Some(JoinTable::with_partitions(
            obj_cols.len(),
            config.page_size,
            config.join_partitions,
        )),
        _ => None,
    };
    let mut scratch = ScratchPage::new(config.page_size);
    // One slot-addressed vector list and the thread's buffer pool serve
    // every batch: the batch boundary recycles column buffers instead of
    // freeing them, and the pool outlives the span so buffers stay affine
    // to the thread across morsels.
    let mut vl = VectorList::for_slots(rp.slot_names.clone());

    for (page, lo, span_hi) in spans {
        // Zero-copy read view of the input page (pinned while the Arc and
        // the batch's handles live).
        let (_block, root) = page.open_view()?;
        let root: Handle<PcVec<Handle<AnyObj>>> = root.downcast()?;
        let total = root.len().min(span_hi);
        let mut at = lo.min(total);
        while at < total {
            let hi = (at + config.batch_size).min(total);
            let mut handles = state.pool.take_objs();
            handles.extend((at..hi).map(|i| root.get(i).erase()));
            stats.rows_in += handles.len() as u64;
            vl.set_slot(rp.source_slot, Column::Obj(handles));
            at = hi;

            run_batch(
                rp,
                tables,
                &mut vl,
                &mut writer,
                &mut agg_sink,
                &mut build_table,
                &mut scratch,
                state,
                &mut stats,
            )?;
            stats.batches += 1;
            // Batch boundary: the vector list dies (its buffers return to
            // the pool, dropping object references), zombies release.
            vl.recycle(&mut state.pool);
            if let Some(w) = writer.as_mut() {
                stats.max_zombie_pages = stats.max_zombie_pages.max(w.max_zombies);
                w.release_zombies()?;
            }
        }
    }

    let output = match &p.sink {
        Sink::Output { .. } | Sink::Materialize { .. } => {
            let w = writer.take().unwrap();
            stats.rows_out += w.objects_written;
            let pages = w.finish()?;
            stats.pages_written += pages.len() as u64;
            PipelineOutput::Pages(pages)
        }
        Sink::JoinBuild { .. } => {
            let mut t = build_table.take().unwrap();
            // The build is complete: construct the probe-side tag filters
            // from the stored entry hashes (the seal point of the chains).
            t.finish_build();
            stats.join_groups += t.groups;
            stats.build_pages_sealed += t.page_count() as u64;
            PipelineOutput::BuiltTable(Box::new(t))
        }
        Sink::AggProduce { .. } => {
            let mut sink = agg_sink.take().unwrap();
            let parts = sink.flush()?;
            let s = sink.stats();
            stats.rows_aggregated += s.rows_absorbed;
            stats.map_pages_sealed += s.map_pages_sealed;
            stats.agg_pages_spilled += s.pages_spilled;
            stats.agg_bytes_spilled += s.bytes_spilled;
            PipelineOutput::AggPartitions(parts)
        }
    };
    Ok((output, stats))
}

#[allow(clippy::too_many_arguments)]
fn run_batch(
    rp: &ResolvedPipeline,
    tables: &HashMap<String, JoinTable>,
    vl: &mut VectorList,
    writer: &mut Option<SetWriter>,
    agg_sink: &mut Option<Box<dyn ErasedAggSink>>,
    build_table: &mut Option<JoinTable>,
    scratch: &mut ScratchPage,
    state: &mut ThreadState,
    stats: &mut ExecStats,
) -> PcResult<()> {
    for (op_idx, op) in rp.ops.iter().enumerate() {
        if vl.is_empty() {
            return Ok(());
        }
        let pool = &mut state.pool;
        match op {
            ResolvedOp::Apply {
                kernel,
                inputs,
                out,
                drop,
                drop_out,
            } => {
                let col = apply_with_retry(kernel, inputs, vl, writer, scratch)?;
                vl.drop_slots(drop, pool);
                vl.rebase_with(*out, col, pool);
                if *drop_out {
                    vl.clear_slot(*out, pool);
                }
            }
            ResolvedOp::Filter { bool_slot, drop } => {
                // The filter only marks surviving rows; no column moves.
                vl.filter_by_slot(*bool_slot, pool)?;
                vl.drop_slots(drop, pool);
            }
            ResolvedOp::FlatMap {
                kernel,
                input,
                out,
                drop,
                drop_out,
            } => {
                let live = sel_len(vl.slot(*input)?.len(), vl.sel());
                let hint = state.fanout_hint(op_idx, live);
                let mut result = None;
                for attempt in 0..8 {
                    let block = kernel_block(writer, scratch)?;
                    let scope = AllocScope::install(block.clone());
                    let mut ctx = ExecCtx::new(block);
                    ctx.fanout_hint = hint;
                    let r = kernel.apply(&[vl.slot(*input)?], vl.sel(), &mut ctx);
                    std::mem::drop(scope);
                    match r {
                        Ok(v) => {
                            result = Some(v);
                            break;
                        }
                        Err(PcError::BlockFull { .. }) if attempt < 7 => {
                            roll_kernel_page(writer, scratch)?;
                        }
                        Err(e) => return Err(e),
                    }
                }
                let (col, counts) = result.ok_or_else(|| {
                    PcError::Catalog("flatmap exceeded page-fault retries".into())
                })?;
                state.record_fanout(op_idx, live, col.len());
                let pool = &mut state.pool;
                vl.drop_slots(drop, pool);
                vl.replicate_with(&counts, *out, col, pool);
                if *drop_out {
                    vl.clear_slot(*out, pool);
                }
                pool.recycle_sel(counts);
            }
            ResolvedOp::Probe {
                table,
                hash_slot,
                build_slots,
                drop,
                drop_after,
            } => {
                let t = tables
                    .get(table)
                    .ok_or_else(|| PcError::Catalog(format!("join table {table} not built")))?;
                let mut idx = pool.take_sel();
                let mut built: Vec<Vec<AnyHandle>> =
                    (0..t.arity()).map(|_| pool.take_objs()).collect();
                {
                    let hashes = vl.slot(*hash_slot)?.as_u64()?;
                    // Fold the selection into the gather indices: only live
                    // rows probe, and `idx` carries base-row positions.
                    match vl.sel() {
                        None => {
                            stats.rows_probed += hashes.len() as u64;
                            for (i, h) in hashes.iter().enumerate() {
                                t.probe_into(*h, i as u32, &mut idx, &mut built);
                            }
                        }
                        Some(sel) => {
                            stats.rows_probed += sel.len() as u64;
                            for &i in sel {
                                t.probe_into(hashes[i as usize], i, &mut idx, &mut built);
                            }
                        }
                    }
                    stats.join_matches += idx.len() as u64;
                }
                vl.drop_slots(drop, pool);
                vl.gather_rebase(&idx, pool);
                for (k, slot) in build_slots.iter().enumerate() {
                    vl.set_slot(*slot, Column::Obj(std::mem::take(&mut built[k])));
                }
                vl.drop_slots(drop_after, pool);
                pool.recycle_sel(idx);
                // `built` now holds only the zero-capacity leftovers of
                // mem::take; the real buffers return to the pool when the
                // vector list recycles at the batch boundary.
            }
        }
    }
    if vl.is_empty() {
        return Ok(());
    }
    // Pipe sinks are contiguity boundaries: they consume the selection
    // directly (no compaction pass) by iterating live rows only.
    match &rp.sink {
        ResolvedSink::Write { slot } => {
            let w = writer.as_mut().unwrap();
            let objs = vl.slot(*slot)?.as_obj()?;
            for_each_sel(objs.len(), vl.sel(), |i| w.write_handle(&objs[i]))?;
        }
        ResolvedSink::AggProduce { slot } => {
            agg_sink
                .as_mut()
                .unwrap()
                .absorb(vl.slot(*slot)?, vl.sel())?;
        }
        ResolvedSink::JoinBuild {
            hash_slot,
            obj_slots,
        } => {
            // The vectorized build: the whole selection-live batch is
            // hashed, radix-partitioned, and bulk-folded into the table's
            // partition chains in one call — no per-row group Vec, no
            // per-column handle clone.
            let t = build_table.as_mut().unwrap();
            let hashes = vl.slot(*hash_slot)?.as_u64()?;
            let cols: Vec<&[AnyHandle]> = obj_slots
                .iter()
                .map(|s| vl.slot(*s).and_then(|c| c.as_obj()))
                .collect::<PcResult<_>>()?;
            t.insert_batch(hashes, vl.sel(), &cols)?;
        }
    }
    Ok(())
}

/// The block kernels should allocate on: the live output page for
/// OUTPUT-like sinks (objects land where they are needed), a recycled
/// scratch page otherwise.
fn kernel_block(writer: &mut Option<SetWriter>, scratch: &mut ScratchPage) -> PcResult<BlockRef> {
    match writer {
        Some(w) => w.live_block(),
        None => scratch.block(),
    }
}

fn roll_kernel_page(writer: &mut Option<SetWriter>, scratch: &mut ScratchPage) -> PcResult<()> {
    match writer {
        Some(w) => {
            // Same-size retries can fault forever when one batch's output
            // exceeds a page; escalate the page size as we retry.
            w.escalate_page_size();
            w.retire_live_page()
        }
        None => scratch.roll(),
    }
}

fn apply_with_retry(
    kernel: &Arc<dyn ColumnKernel>,
    inputs: &[usize],
    vl: &VectorList,
    writer: &mut Option<SetWriter>,
    scratch: &mut ScratchPage,
) -> PcResult<Column> {
    for attempt in 0..8 {
        let block = kernel_block(writer, scratch)?;
        let scope = AllocScope::install(block.clone());
        let mut ctx = ExecCtx::new(block);
        let cols: Vec<&Column> = inputs
            .iter()
            .map(|&s| vl.slot(s))
            .collect::<PcResult<Vec<_>>>()?;
        let r = kernel.apply(&cols, vl.sel(), &mut ctx);
        drop(scope);
        match r {
            Ok(col) => return Ok(col),
            Err(PcError::BlockFull { .. }) if attempt < 7 => {
                // Page fault: retire the page (it may zombify if pinned by
                // this batch's earlier columns), escalate, retry the stage.
                roll_kernel_page(writer, scratch)?;
            }
            Err(e) => return Err(e),
        }
    }
    Err(PcError::Catalog(
        "pipeline stage exceeded page-fault retries".into(),
    ))
}

/// A recycled allocation page for intermediate objects in pipelines whose
/// sink is not an output page (the paper's intermediate-data pages).
struct ScratchPage {
    size: usize,
    block: Option<BlockRef>,
}

impl ScratchPage {
    fn new(size: usize) -> Self {
        ScratchPage { size, block: None }
    }

    fn block(&mut self) -> PcResult<BlockRef> {
        if self.block.is_none() {
            self.block = Some(BlockRef::new(self.size, AllocPolicy::LightweightReuse));
        }
        Ok(self.block.as_ref().unwrap().clone())
    }

    /// Abandons the current scratch page (a zombie page in §C's taxonomy —
    /// it dies when the batch's handles drop) and escalates the size so a
    /// batch whose intermediates exceed one page eventually fits.
    fn roll(&mut self) -> PcResult<()> {
        self.block = None;
        self.size = (self.size * 2).min(256 << 20);
        Ok(())
    }
}

// --------------------------------------------------------- local executor

/// Executes physical plans on one node.
pub struct LocalExecutor {
    pub storage: StorageManager,
    pub config: ExecConfig,
}

impl LocalExecutor {
    pub fn new(storage: StorageManager, config: ExecConfig) -> Self {
        LocalExecutor { storage, config }
    }

    /// Plans and runs a compiled query. When `config.verify_plans` is set
    /// (the default) the TCAP program is statically verified first and an
    /// ill-formed plan is refused with [`PcError::PlanRejected`].
    pub fn execute(&self, q: &CompiledQuery) -> PcResult<ExecStats> {
        if self.config.verify_plans {
            pc_tcap::verify::require_clean(&q.tcap).map_err(PcError::PlanRejected)?;
        }
        let physical = plan(&q.tcap)?;
        self.run_plan(&physical, &q.stages, &q.aggs)
    }

    /// Runs an already-planned query. Every stage runs morsel-driven over
    /// `config.threads` work-stealing threads; outputs merge in morsel
    /// order, so the result bytes are independent of the thread count.
    pub fn run_plan(
        &self,
        physical: &PhysicalPlan,
        stages: &StageLibrary,
        aggs: &HashMap<String, Arc<dyn ErasedAgg>>,
    ) -> PcResult<ExecStats> {
        let mut stats = ExecStats::default();
        let pool_before = self.storage.pool().stats();
        let mut tables: HashMap<String, SharedTable> = HashMap::new();
        // A previous query's materialized pages must never leak into this
        // one's deterministically-named tmp lists.
        for list in physical.intermediate_lists() {
            self.storage.create_or_clear_set(TMP_DB, list)?;
        }
        for p in &physical.pipelines {
            let pages = match &p.source {
                Source::Set { db, set, .. } => self.storage.scan(db, set)?,
                Source::Intermediate { list, .. } => self.storage.scan(TMP_DB, list)?,
            };
            let (outputs, s) = run_stage_morsels(&self.config, p, &pages, stages, aggs, &tables)?;
            stats.absorb(&s);
            match &p.sink {
                Sink::Output { .. } | Sink::Materialize { .. } => {
                    let (db, set) = match &p.sink {
                        Sink::Output { db, set, .. } => (db.clone(), set.clone()),
                        Sink::Materialize { list, .. } => {
                            self.storage.catalog().ensure_set(TMP_DB, list);
                            (TMP_DB.to_string(), list.clone())
                        }
                        _ => unreachable!(),
                    };
                    for out in outputs {
                        let MorselOutput::Pages(pages) = out else {
                            unreachable!()
                        };
                        for page in pages {
                            self.storage.append_page(&db, &set, page)?;
                        }
                    }
                }
                Sink::JoinBuild {
                    table, obj_cols, ..
                } => {
                    // Per-morsel builds fold together partition-wise: a page
                    // tagged `p` joins every other morsel's partition-`p`
                    // chain, in morsel order, and probe threads reopen
                    // zero-copy views sharing one set of tag filters.
                    let mut partitions = JoinTable::round_partitions(self.config.join_partitions);
                    let mut tagged: Vec<(usize, Arc<SealedPage>)> = Vec::new();
                    for out in outputs {
                        let MorselOutput::TablePages {
                            partitions: parts,
                            pages,
                            ..
                        } = out
                        else {
                            unreachable!()
                        };
                        partitions = parts;
                        tagged.extend(pages.into_iter().map(|(part, pg)| (part, Arc::new(pg))));
                    }
                    // The gather is the RAM consumer (per-morsel tables are
                    // bounded by morsel_rows): reserve the merged table's
                    // bytes against the budget and shed partitions that do
                    // not fit; spilled partitions probe in second-pass waves.
                    let st = SharedTable::from_tagged_pages_budgeted(
                        obj_cols.len(),
                        partitions,
                        tagged,
                        self.config.spill.as_ref(),
                    )?;
                    stats.join_partitions_spilled += st.spilled_partitions() as u64;
                    stats.join_bytes_spilled += st.spilled_bytes() as u64;
                    tables.insert(table.clone(), st);
                }
                Sink::AggProduce { comp, dest, .. } => {
                    // Local consuming stage (AggregationJobStage): merge all
                    // partition pages in morsel order, then materialize.
                    let agg = aggs.get(comp).unwrap();
                    let mut merger = agg.new_merger(self.config.page_size);
                    for out in outputs {
                        let MorselOutput::AggPartitions(parts) = out else {
                            unreachable!()
                        };
                        for (_part, page) in parts {
                            merger.merge_page(page.load()?)?;
                        }
                    }
                    let mut out_writer = SetWriter::new(self.config.page_size);
                    stats.agg_groups += merger.finalize(&mut out_writer)?;
                    let (db, set): (&str, &str) = match dest {
                        AggDest::Set { db, set } => (db, set),
                        AggDest::Intermediate { list } => {
                            self.storage.catalog().ensure_set(TMP_DB, list);
                            (TMP_DB, list)
                        }
                    };
                    stats.rows_out += out_writer.objects_written;
                    for page in out_writer.finish()? {
                        self.storage.append_page(db, set, page)?;
                        stats.pages_written += 1;
                    }
                }
            }
            stats.pipelines_run += 1;
        }
        let pool_after = self.storage.pool().stats();
        stats.pool_hits += pool_after.hits - pool_before.hits;
        stats.pool_misses += pool_after.misses - pool_before.misses;
        stats.pool_evictions += pool_after.evictions - pool_before.evictions;
        stats.pool_spills += pool_after.spills - pool_before.spills;
        stats.pool_bytes_spilled += pool_after.bytes_spilled - pool_before.bytes_spilled;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates_every_counter() {
        let mut total = ExecStats {
            pipelines_run: 2,
            batches: 10,
            max_zombie_pages: 1,
            ..Default::default()
        };
        let other = ExecStats {
            pipelines_run: 3,
            batches: 5,
            rows_in: 7,
            rows_out: 4,
            pages_written: 2,
            join_groups: 6,
            agg_groups: 1,
            rows_aggregated: 9,
            map_pages_sealed: 3,
            rows_probed: 11,
            join_matches: 8,
            build_pages_sealed: 5,
            morsels_dispatched: 13,
            morsels_stolen: 4,
            threads_used: 3,
            max_zombie_pages: 2,
            agg_pages_spilled: 21,
            agg_bytes_spilled: 22,
            join_partitions_spilled: 23,
            join_bytes_spilled: 24,
            spill_waves: 25,
            pool_hits: 26,
            pool_misses: 27,
            pool_evictions: 28,
            pool_spills: 29,
            pool_bytes_spilled: 30,
        };
        total.absorb(&other);
        // `pipelines_run` used to be silently dropped here, so cluster-level
        // sums under-counted pipelines.
        assert_eq!(total.pipelines_run, 5);
        assert_eq!(total.batches, 15);
        assert_eq!(total.rows_in, 7);
        assert_eq!(total.rows_out, 4);
        assert_eq!(total.pages_written, 2);
        assert_eq!(total.join_groups, 6);
        assert_eq!(total.agg_groups, 1);
        assert_eq!(total.rows_aggregated, 9);
        assert_eq!(total.map_pages_sealed, 3);
        assert_eq!(total.rows_probed, 11);
        assert_eq!(total.join_matches, 8);
        assert_eq!(total.build_pages_sealed, 5);
        assert_eq!(total.morsels_dispatched, 13);
        assert_eq!(total.morsels_stolen, 4);
        assert_eq!(total.threads_used, 3, "threads_used is a high-water max");
        assert_eq!(total.max_zombie_pages, 2, "zombie high-water is a max");
        assert_eq!(total.agg_pages_spilled, 21);
        assert_eq!(total.agg_bytes_spilled, 22);
        assert_eq!(total.join_partitions_spilled, 23);
        assert_eq!(total.join_bytes_spilled, 24);
        assert_eq!(total.spill_waves, 25);
        assert_eq!(total.pool_hits, 26);
        assert_eq!(total.pool_misses, 27);
        assert_eq!(total.pool_evictions, 28);
        assert_eq!(total.pool_spills, 29);
        assert_eq!(total.pool_bytes_spilled, 30);
    }

    #[test]
    fn fanout_hint_learns_the_observed_ratio() {
        let mut s = ThreadState::new(2);
        // Nothing observed yet: no hint.
        assert_eq!(s.fanout_hint(0, 100), 0);
        // 10 rows fanned out to 40 values → ratio 4.
        s.record_fanout(0, 10, 40);
        assert_eq!(s.fanout_hint(0, 100), 400);
        // Ops learn independently.
        assert_eq!(s.fanout_hint(1, 100), 0);
        s.record_fanout(0, 10, 0);
        assert_eq!(s.fanout_hint(0, 100), 200, "history is cumulative");
    }
}
