//! Physical planning (Appendix C "Breaking a TCAP DAG into Individual
//! Pipelines", Appendix D's JobStages).
//!
//! The planner walks the optimized TCAP program and carves it into
//! [`PipelineSpec`]s. A pipeline starts at a stored set (or a materialized
//! intermediate), runs APPLY/FILTER/HASH/FLATMAP stages — and continues
//! *through* joins on the probe side — until it reaches a pipe sink:
//!
//! * the build input of a JOIN (a `BuildHashTable` job stage),
//! * an AGGREGATE (the producing stage of a distributed aggregation),
//! * an OUTPUT, or
//! * an edge with more than one consumer (forced materialization, as §C
//!   prescribes).
//!
//! Build/probe side choice follows Appendix D.3 (the first n−1 inputs
//! build, the last probes); [`describe_decompositions`] enumerates the
//! alternative pipelinings of Figure 3 for inspection.

use pc_lambda::{ColumnKernel, FlatMapKernel, StageKernel, StageLibrary};
use pc_object::{PcError, PcResult};
use pc_tcap::ir::{TcapOp, TcapProgram};
use std::sync::Arc;

/// Where a pipeline reads its input objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// A stored set.
    Set {
        db: String,
        set: String,
        col: String,
    },
    /// A materialized intermediate (stored under the `__tmp` database).
    Intermediate { list: String, col: String },
}

/// One vectorized operation inside a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipeOp {
    /// Run a compiled stage over `inputs`, appending `out`; then restrict
    /// the vector list to `keep`.
    Apply {
        comp: String,
        stage: String,
        inputs: Vec<String>,
        out: String,
        keep: Vec<String>,
    },
    /// Keep rows where `bool_col` is true; restrict to `keep`.
    Filter { bool_col: String, keep: Vec<String> },
    /// Set-valued stage: replaces the row set.
    FlatMap {
        comp: String,
        stage: String,
        input: String,
        out: String,
        keep: Vec<String>,
    },
    /// Hash a key column into `out`.
    Hash {
        input: String,
        out: String,
        keep: Vec<String>,
    },
    /// Probe the hash table built for join `table`; appends the build-side
    /// object columns `build_cols` and fans out matches.
    Probe {
        table: String,
        hash_col: String,
        build_cols: Vec<String>,
        keep: Vec<String>,
    },
}

/// Where the aggregation result goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggDest {
    /// Fused into a final stored set (AGGREGATE directly feeding OUTPUT).
    Set { db: String, set: String },
    /// A materialized intermediate consumed by later pipelines.
    Intermediate { list: String },
}

/// The pipe sink ending a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sink {
    /// Write the `col` objects to a stored set.
    Output {
        db: String,
        set: String,
        col: String,
    },
    /// Build the hash table for join `table` from `hash_col` + `obj_cols`.
    JoinBuild {
        table: String,
        hash_col: String,
        obj_cols: Vec<String>,
    },
    /// Pre-aggregate into partitioned maps (the producing stage).
    AggProduce {
        comp: String,
        col: String,
        dest: AggDest,
    },
    /// Materialize a multi-consumer edge.
    Materialize { list: String, col: String },
}

/// One pipeline: source → ops → sink.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    pub id: usize,
    pub source: Source,
    pub ops: Vec<PipeOp>,
    pub sink: Sink,
}

impl PipelineSpec {
    /// Join tables this pipeline probes.
    pub fn probes(&self) -> Vec<&str> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                PipeOp::Probe { table, .. } => Some(table.as_str()),
                _ => None,
            })
            .collect()
    }

    /// What this pipeline produces (for dependency ordering).
    pub fn produces(&self) -> Option<String> {
        match &self.sink {
            Sink::JoinBuild { table, .. } => Some(format!("table:{table}")),
            Sink::AggProduce {
                dest: AggDest::Intermediate { list },
                ..
            } => Some(format!("list:{list}")),
            Sink::Materialize { list, .. } => Some(format!("list:{list}")),
            _ => None,
        }
    }

    /// The `__tmp` intermediate lists this pipeline's sink appends to —
    /// the artifacts a stage replay must clear before re-running the stage
    /// (stage-replay entry point for the cluster's recovery protocol;
    /// user-visible output sets are never listed because routing failures
    /// strictly precede their appends).
    pub fn replay_targets(&self) -> Vec<&str> {
        match &self.sink {
            Sink::Materialize { list, .. }
            | Sink::AggProduce {
                dest: AggDest::Intermediate { list },
                ..
            } => vec![list.as_str()],
            _ => Vec::new(),
        }
    }

    /// What this pipeline requires before running.
    pub fn requires(&self) -> Vec<String> {
        let mut r: Vec<String> = self
            .probes()
            .into_iter()
            .map(|t| format!("table:{t}"))
            .collect();
        if let Source::Intermediate { list, .. } = &self.source {
            r.push(format!("list:{list}"));
        }
        r
    }
}

// ------------------------------------------------------- slot resolution

/// One pipeline operation with every column name resolved to a slot index
/// and every `(computation, stage)` pair resolved to its kernel. Built once
/// per pipeline stage by [`PipelineSpec::resolve`]; the per-batch loop then
/// runs on pure index arithmetic — no string compares, no stage-library
/// lookups.
#[derive(Clone)]
pub enum ResolvedOp {
    /// APPLY (including HASH, which is an apply of the hash kernel). `drop`
    /// lists the slots the statement's output declaration loses — cleared
    /// *before* the rebase so dead columns are never compacted. `drop_out`
    /// marks an output column that is itself immediately dead.
    Apply {
        kernel: Arc<dyn ColumnKernel>,
        inputs: Vec<usize>,
        out: usize,
        drop: Vec<usize>,
        drop_out: bool,
    },
    /// FILTER: refine the selection by `bool_slot`, then clear `drop`.
    Filter { bool_slot: usize, drop: Vec<usize> },
    /// FLATMAP: set-valued apply; survivors replicate by the kernel's
    /// per-live-row counts.
    FlatMap {
        kernel: Arc<dyn FlatMapKernel>,
        input: usize,
        out: usize,
        drop: Vec<usize>,
        drop_out: bool,
    },
    /// JOIN probe: hash lookups fan out matches; survivors gather by the
    /// probe's match indices; build-side columns land in `build_slots`.
    Probe {
        table: String,
        hash_slot: usize,
        build_slots: Vec<usize>,
        drop: Vec<usize>,
        drop_after: Vec<usize>,
    },
}

/// The sink's column slots.
#[derive(Debug, Clone)]
pub enum ResolvedSink {
    /// OUTPUT / Materialize: write the objects in `slot`.
    Write { slot: usize },
    /// Join build: insert `(hash_slot, obj_slots)` groups.
    JoinBuild {
        hash_slot: usize,
        obj_slots: Vec<usize>,
    },
    /// Pre-aggregation: absorb the objects in `slot`.
    AggProduce { slot: usize },
}

/// A pipeline with its per-batch path fully resolved to slot indices.
pub struct ResolvedPipeline {
    /// Slot index → column name (the pipeline's slot map).
    pub slot_names: Vec<String>,
    /// Where source pages' object handles land.
    pub source_slot: usize,
    pub ops: Vec<ResolvedOp>,
    pub sink: ResolvedSink,
}

struct Resolver {
    names: Vec<String>,
    live: Vec<bool>,
}

impl Resolver {
    fn slot(&mut self, name: &str) -> usize {
        match self.names.iter().position(|n| n == name) {
            Some(s) => s,
            None => {
                self.names.push(name.to_string());
                self.live.push(false);
                self.names.len() - 1
            }
        }
    }

    /// The keep set of a statement: its declared output columns plus every
    /// live `hash*` column (the conservative retention the executor applies
    /// for join hash columns the optimizer pruned).
    fn keep_mask(&mut self, keep: &[String]) -> Vec<bool> {
        let mut mask = vec![false; self.names.len()];
        for k in keep {
            let s = self.slot(k);
            if mask.len() < self.names.len() {
                mask.resize(self.names.len(), false);
            }
            mask[s] = true;
        }
        for (s, n) in self.names.iter().enumerate() {
            if self.live[s] && n.starts_with("hash") {
                mask[s] = true;
            }
        }
        mask
    }

    /// Finishes one op: computes the pre-drop list (live columns the op
    /// kills, including an overwritten `out`), updates liveness, and
    /// reports whether `out` itself survives.
    fn advance(&mut self, keep: &[String], outs: &[usize]) -> (Vec<usize>, Vec<usize>) {
        let mask = self.keep_mask(keep);
        let mut drop = Vec::new();
        for (s, keep_slot) in mask.iter().enumerate() {
            // An overwritten out slot is also cleared up front so the
            // rebase never compacts its stale column.
            if self.live[s] && (!keep_slot || outs.contains(&s)) {
                drop.push(s);
                self.live[s] = false;
            }
        }
        let mut drop_after = Vec::new();
        for &o in outs {
            if mask[o] {
                self.live[o] = true;
            } else {
                drop_after.push(o);
            }
        }
        (drop, drop_after)
    }
}

impl PipelineSpec {
    /// Resolves this pipeline against a stage library: column names become
    /// slot indices, stage names become kernel `Arc`s, and each op gets a
    /// statically computed drop list. Called once per
    /// [`crate::run_pipeline_stage`] invocation, off the per-batch path.
    pub fn resolve(&self, stages: &StageLibrary) -> PcResult<ResolvedPipeline> {
        let mut r = Resolver {
            names: Vec::new(),
            live: Vec::new(),
        };
        let source_col = match &self.source {
            Source::Set { col, .. } | Source::Intermediate { col, .. } => col.clone(),
        };
        let source_slot = r.slot(&source_col);
        r.live[source_slot] = true;

        let mut ops = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            match op {
                PipeOp::Apply {
                    comp,
                    stage,
                    inputs,
                    out,
                    keep,
                } => {
                    let kernel = match stages.get(comp, stage) {
                        Some(StageKernel::Map(k)) => k.clone(),
                        _ => {
                            return Err(PcError::Catalog(format!(
                                "no map kernel registered for {comp}.{stage}"
                            )))
                        }
                    };
                    let inputs: Vec<usize> = inputs.iter().map(|n| r.slot(n)).collect();
                    let out = r.slot(out);
                    let (drop, drop_after) = r.advance(keep, &[out]);
                    ops.push(ResolvedOp::Apply {
                        kernel,
                        inputs,
                        out,
                        drop,
                        drop_out: !drop_after.is_empty(),
                    });
                }
                PipeOp::Filter { bool_col, keep } => {
                    let bool_slot = r.slot(bool_col);
                    let (drop, _) = r.advance(keep, &[]);
                    ops.push(ResolvedOp::Filter { bool_slot, drop });
                }
                PipeOp::FlatMap {
                    comp,
                    stage,
                    input,
                    out,
                    keep,
                } => {
                    let kernel = match stages.get(comp, stage) {
                        Some(StageKernel::FlatMap(k)) => k.clone(),
                        _ => {
                            return Err(PcError::Catalog(format!(
                                "no flatmap kernel registered for {comp}.{stage}"
                            )))
                        }
                    };
                    let input = r.slot(input);
                    let out = r.slot(out);
                    let (drop, drop_after) = r.advance(keep, &[out]);
                    ops.push(ResolvedOp::FlatMap {
                        kernel,
                        input,
                        out,
                        drop,
                        drop_out: !drop_after.is_empty(),
                    });
                }
                PipeOp::Hash { input, out, keep } => {
                    let inputs = vec![r.slot(input)];
                    let out = r.slot(out);
                    let (drop, drop_after) = r.advance(keep, &[out]);
                    ops.push(ResolvedOp::Apply {
                        kernel: Arc::new(pc_lambda::kernel::HashKernel),
                        inputs,
                        out,
                        drop,
                        drop_out: !drop_after.is_empty(),
                    });
                }
                PipeOp::Probe {
                    table,
                    hash_col,
                    build_cols,
                    keep,
                } => {
                    let hash_slot = r.slot(hash_col);
                    let build_slots: Vec<usize> = build_cols.iter().map(|n| r.slot(n)).collect();
                    let (drop, drop_after) = r.advance(keep, &build_slots);
                    ops.push(ResolvedOp::Probe {
                        table: table.clone(),
                        hash_slot,
                        build_slots,
                        drop,
                        drop_after,
                    });
                }
            }
        }

        let sink = match &self.sink {
            Sink::Output { col, .. } | Sink::Materialize { col, .. } => {
                ResolvedSink::Write { slot: r.slot(col) }
            }
            Sink::AggProduce { col, .. } => ResolvedSink::AggProduce { slot: r.slot(col) },
            Sink::JoinBuild {
                hash_col, obj_cols, ..
            } => ResolvedSink::JoinBuild {
                hash_slot: r.slot(hash_col),
                obj_slots: obj_cols.iter().map(|n| r.slot(n)).collect(),
            },
        };

        Ok(ResolvedPipeline {
            slot_names: r.names,
            source_slot,
            ops,
            sink,
        })
    }
}

/// A complete physical plan: pipelines in a dependency-respecting order.
#[derive(Debug, Clone, Default)]
pub struct PhysicalPlan {
    pub pipelines: Vec<PipelineSpec>,
}

impl PhysicalPlan {
    /// The `__tmp` intermediate lists this plan writes (materialized
    /// multi-consumer edges and non-fused aggregation outputs). List names
    /// are deterministic per graph shape, so executors must clear each of
    /// these before running lest a previous query's pages leak in.
    pub fn intermediate_lists(&self) -> Vec<&str> {
        self.pipelines
            .iter()
            .filter_map(|p| match &p.sink {
                Sink::Materialize { list, .. }
                | Sink::AggProduce {
                    dest: AggDest::Intermediate { list },
                    ..
                } => Some(list.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Number of stages (pipelines) in the plan.
    pub fn stage_count(&self) -> usize {
        self.pipelines.len()
    }

    /// One stage by position — stage-replay entry point: recovery re-runs
    /// a failed stage in place, from its still-materialized inputs.
    pub fn stage(&self, i: usize) -> Option<&PipelineSpec> {
        self.pipelines.get(i)
    }
}

impl std::fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for p in &self.pipelines {
            writeln!(f, "pipeline {}:", p.id)?;
            writeln!(f, "  source: {:?}", p.source)?;
            for op in &p.ops {
                match op {
                    PipeOp::Apply {
                        comp,
                        stage,
                        inputs,
                        out,
                        ..
                    } => writeln!(f, "  apply {comp}.{stage}({inputs:?}) -> {out}")?,
                    PipeOp::Filter { bool_col, .. } => writeln!(f, "  filter on {bool_col}")?,
                    PipeOp::FlatMap {
                        comp,
                        stage,
                        input,
                        out,
                        ..
                    } => writeln!(f, "  flatmap {comp}.{stage}({input}) -> {out}")?,
                    PipeOp::Hash { input, out, .. } => writeln!(f, "  hash {input} -> {out}")?,
                    PipeOp::Probe {
                        table,
                        hash_col,
                        build_cols,
                        ..
                    } => writeln!(f, "  probe {table} on {hash_col} -> {build_cols:?}")?,
                }
            }
            writeln!(f, "  sink: {:?}", p.sink)?;
        }
        Ok(())
    }
}

/// Builds a physical plan from an (optimized) TCAP program.
pub fn plan(prog: &TcapProgram) -> PcResult<PhysicalPlan> {
    let mut pipelines: Vec<PipelineSpec> = Vec::new();
    // Seeds: (source, producing list name). Expanded as materialization
    // points are discovered.
    let mut seeds: Vec<(Source, String)> = Vec::new();
    for s in &prog.stmts {
        if let TcapOp::Input { db, set, .. } = &s.op {
            let col = s.output.cols.first().cloned().unwrap_or_default();
            seeds.push((
                Source::Set {
                    db: db.clone(),
                    set: set.clone(),
                    col,
                },
                s.output.name.clone(),
            ));
        }
    }

    let mut done_seeds: Vec<String> = Vec::new();
    while let Some((source, list)) = seeds.pop() {
        if done_seeds.contains(&list) {
            continue;
        }
        done_seeds.push(list.clone());
        // One pipeline per consumer of the seed list.
        for ci in prog.consumers(&list) {
            let mut ops: Vec<PipeOp> = Vec::new();
            let mut cur_stmt = ci;
            let mut cur_list = list.clone();
            let sink = loop {
                let s = &prog.stmts[cur_stmt];
                let keep = s.output.cols.clone();
                match &s.op {
                    TcapOp::Apply {
                        input,
                        computation,
                        stage,
                        ..
                    } => {
                        ops.push(PipeOp::Apply {
                            comp: computation.clone(),
                            stage: stage.clone(),
                            inputs: input.cols.clone(),
                            out: created(s).unwrap_or_default(),
                            keep,
                        });
                    }
                    TcapOp::Filter { bool_col, .. } => {
                        ops.push(PipeOp::Filter {
                            bool_col: bool_col.cols[0].clone(),
                            keep,
                        });
                    }
                    TcapOp::FlatMap {
                        input,
                        computation,
                        stage,
                        ..
                    } => {
                        ops.push(PipeOp::FlatMap {
                            comp: computation.clone(),
                            stage: stage.clone(),
                            input: input.cols[0].clone(),
                            out: created(s).unwrap_or_default(),
                            keep,
                        });
                    }
                    TcapOp::Hash { input, .. } => {
                        ops.push(PipeOp::Hash {
                            input: input.cols[0].clone(),
                            out: created(s).unwrap_or_default(),
                            keep,
                        });
                    }
                    TcapOp::Join {
                        lhs_hash,
                        lhs_copy,
                        rhs_hash,
                        ..
                    } => {
                        if cur_list == lhs_hash.list {
                            // Build side: pipeline ends here (Appendix D.3
                            // builds from the first n-1 inputs).
                            break Sink::JoinBuild {
                                table: s.output.name.clone(),
                                hash_col: lhs_hash.cols[0].clone(),
                                obj_cols: lhs_copy.cols.clone(),
                            };
                        }
                        debug_assert_eq!(cur_list, rhs_hash.list, "probe must arrive via rhs");
                        // Probe side: run through the join.
                        ops.push(PipeOp::Probe {
                            table: s.output.name.clone(),
                            hash_col: rhs_hash.cols[0].clone(),
                            build_cols: lhs_copy.cols.clone(),
                            keep,
                        });
                    }
                    TcapOp::Aggregate {
                        computation, key, ..
                    } => {
                        // Fuse with a sole downstream OUTPUT when possible.
                        let out_list = s.output.name.clone();
                        let consumers = prog.consumers(&out_list);
                        let only_output = consumers.len() == 1
                            && matches!(prog.stmts[consumers[0]].op, TcapOp::Output { .. });
                        let dest = if only_output {
                            if let TcapOp::Output { db, set, .. } = &prog.stmts[consumers[0]].op {
                                AggDest::Set {
                                    db: db.clone(),
                                    set: set.clone(),
                                }
                            } else {
                                unreachable!()
                            }
                        } else {
                            seeds.push((
                                Source::Intermediate {
                                    list: out_list.clone(),
                                    col: s.output.cols[0].clone(),
                                },
                                out_list.clone(),
                            ));
                            AggDest::Intermediate {
                                list: out_list.clone(),
                            }
                        };
                        break Sink::AggProduce {
                            comp: computation.clone(),
                            col: key.cols[0].clone(),
                            dest,
                        };
                    }
                    TcapOp::Output { input, db, set, .. } => {
                        break Sink::Output {
                            db: db.clone(),
                            set: set.clone(),
                            col: input.cols[0].clone(),
                        };
                    }
                    TcapOp::Input { .. } => {
                        return Err(PcError::Catalog("INPUT cannot consume a list".into()))
                    }
                }
                // Advance to the single consumer of this statement's output;
                // multiple consumers force materialization (§C).
                let out_list = s.output.name.clone();
                let consumers = prog.consumers(&out_list);
                match consumers.len() {
                    0 => {
                        // Terminal non-OUTPUT list: materialize it so the
                        // caller can inspect it (e.g. unit-test fragments).
                        break Sink::Materialize {
                            list: out_list.clone(),
                            col: s.output.cols.first().cloned().unwrap_or_default(),
                        };
                    }
                    1 => {
                        cur_list = out_list;
                        cur_stmt = consumers[0];
                    }
                    _ => {
                        seeds.push((
                            Source::Intermediate {
                                list: out_list.clone(),
                                col: s.output.cols.first().cloned().unwrap_or_default(),
                            },
                            out_list.clone(),
                        ));
                        break Sink::Materialize {
                            list: out_list.clone(),
                            col: s.output.cols.first().cloned().unwrap_or_default(),
                        };
                    }
                }
            };
            pipelines.push(PipelineSpec {
                id: pipelines.len(),
                source: source.clone(),
                ops,
                sink,
            });
        }
    }

    order_pipelines(&mut pipelines)?;
    Ok(PhysicalPlan { pipelines })
}

/// The column a statement appends.
fn created(s: &pc_tcap::ir::TcapStmt) -> Option<String> {
    let copy: &[String] = match &s.op {
        TcapOp::Apply { copy, .. } | TcapOp::FlatMap { copy, .. } | TcapOp::Hash { copy, .. } => {
            &copy.cols
        }
        _ => return None,
    };
    s.output.cols.iter().find(|c| !copy.contains(c)).cloned()
}

/// Topologically orders pipelines by produced/required resources.
fn order_pipelines(pipelines: &mut Vec<PipelineSpec>) -> PcResult<()> {
    let n = pipelines.len();
    let mut ordered: Vec<PipelineSpec> = Vec::with_capacity(n);
    let mut ready: Vec<String> = Vec::new();
    let mut remaining: Vec<PipelineSpec> = std::mem::take(pipelines);
    while !remaining.is_empty() {
        let idx = remaining
            .iter()
            .position(|p| p.requires().iter().all(|r| ready.contains(r)))
            .ok_or_else(|| {
                PcError::Catalog("physical plan has a pipeline dependency cycle".into())
            })?;
        let p = remaining.remove(idx);
        if let Some(prod) = p.produces() {
            ready.push(prod);
        }
        ordered.push(p);
    }
    for (i, p) in ordered.iter_mut().enumerate() {
        p.id = i;
    }
    *pipelines = ordered;
    Ok(())
}

/// Enumerates alternative pipeline decompositions of a TCAP program by
/// flipping which join side builds (Figure 3's (b)/(c) variants). Returns
/// human-readable summaries; the executor always runs the default
/// (left/composite side builds, per Appendix D.3).
pub fn describe_decompositions(prog: &TcapProgram) -> Vec<String> {
    let joins: Vec<&pc_tcap::ir::TcapStmt> = prog
        .stmts
        .iter()
        .filter(|s| matches!(s.op, TcapOp::Join { .. }))
        .collect();
    let mut out = Vec::new();
    let n = joins.len();
    for mask in 0..(1usize << n) {
        let mut desc = format!("decomposition {}:\n", mask);
        for (k, j) in joins.iter().enumerate() {
            if let TcapOp::Join {
                lhs_hash, rhs_hash, ..
            } = &j.op
            {
                let (build, probe) = if mask & (1 << k) == 0 {
                    (&lhs_hash.list, &rhs_hash.list)
                } else {
                    (&rhs_hash.list, &lhs_hash.list)
                };
                desc.push_str(&format!(
                    "  join {}: build from {}, probe streamed from {}\n",
                    j.output.name, build, probe
                ));
            }
        }
        out.push(desc);
    }
    out
}
