//! Physical planning (Appendix C "Breaking a TCAP DAG into Individual
//! Pipelines", Appendix D's JobStages).
//!
//! The planner walks the optimized TCAP program and carves it into
//! [`PipelineSpec`]s. A pipeline starts at a stored set (or a materialized
//! intermediate), runs APPLY/FILTER/HASH/FLATMAP stages — and continues
//! *through* joins on the probe side — until it reaches a pipe sink:
//!
//! * the build input of a JOIN (a `BuildHashTable` job stage),
//! * an AGGREGATE (the producing stage of a distributed aggregation),
//! * an OUTPUT, or
//! * an edge with more than one consumer (forced materialization, as §C
//!   prescribes).
//!
//! Build/probe side choice follows Appendix D.3 (the first n−1 inputs
//! build, the last probes); [`describe_decompositions`] enumerates the
//! alternative pipelinings of Figure 3 for inspection.

use pc_object::{PcError, PcResult};
use pc_tcap::ir::{TcapOp, TcapProgram};

/// Where a pipeline reads its input objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// A stored set.
    Set {
        db: String,
        set: String,
        col: String,
    },
    /// A materialized intermediate (stored under the `__tmp` database).
    Intermediate { list: String, col: String },
}

/// One vectorized operation inside a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipeOp {
    /// Run a compiled stage over `inputs`, appending `out`; then restrict
    /// the vector list to `keep`.
    Apply {
        comp: String,
        stage: String,
        inputs: Vec<String>,
        out: String,
        keep: Vec<String>,
    },
    /// Keep rows where `bool_col` is true; restrict to `keep`.
    Filter { bool_col: String, keep: Vec<String> },
    /// Set-valued stage: replaces the row set.
    FlatMap {
        comp: String,
        stage: String,
        input: String,
        out: String,
        keep: Vec<String>,
    },
    /// Hash a key column into `out`.
    Hash {
        input: String,
        out: String,
        keep: Vec<String>,
    },
    /// Probe the hash table built for join `table`; appends the build-side
    /// object columns `build_cols` and fans out matches.
    Probe {
        table: String,
        hash_col: String,
        build_cols: Vec<String>,
        keep: Vec<String>,
    },
}

/// Where the aggregation result goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggDest {
    /// Fused into a final stored set (AGGREGATE directly feeding OUTPUT).
    Set { db: String, set: String },
    /// A materialized intermediate consumed by later pipelines.
    Intermediate { list: String },
}

/// The pipe sink ending a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sink {
    /// Write the `col` objects to a stored set.
    Output {
        db: String,
        set: String,
        col: String,
    },
    /// Build the hash table for join `table` from `hash_col` + `obj_cols`.
    JoinBuild {
        table: String,
        hash_col: String,
        obj_cols: Vec<String>,
    },
    /// Pre-aggregate into partitioned maps (the producing stage).
    AggProduce {
        comp: String,
        col: String,
        dest: AggDest,
    },
    /// Materialize a multi-consumer edge.
    Materialize { list: String, col: String },
}

/// One pipeline: source → ops → sink.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    pub id: usize,
    pub source: Source,
    pub ops: Vec<PipeOp>,
    pub sink: Sink,
}

impl PipelineSpec {
    /// Join tables this pipeline probes.
    pub fn probes(&self) -> Vec<&str> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                PipeOp::Probe { table, .. } => Some(table.as_str()),
                _ => None,
            })
            .collect()
    }

    /// What this pipeline produces (for dependency ordering).
    pub fn produces(&self) -> Option<String> {
        match &self.sink {
            Sink::JoinBuild { table, .. } => Some(format!("table:{table}")),
            Sink::AggProduce {
                dest: AggDest::Intermediate { list },
                ..
            } => Some(format!("list:{list}")),
            Sink::Materialize { list, .. } => Some(format!("list:{list}")),
            _ => None,
        }
    }

    /// What this pipeline requires before running.
    pub fn requires(&self) -> Vec<String> {
        let mut r: Vec<String> = self
            .probes()
            .into_iter()
            .map(|t| format!("table:{t}"))
            .collect();
        if let Source::Intermediate { list, .. } = &self.source {
            r.push(format!("list:{list}"));
        }
        r
    }
}

/// A complete physical plan: pipelines in a dependency-respecting order.
#[derive(Debug, Clone, Default)]
pub struct PhysicalPlan {
    pub pipelines: Vec<PipelineSpec>,
}

impl std::fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for p in &self.pipelines {
            writeln!(f, "pipeline {}:", p.id)?;
            writeln!(f, "  source: {:?}", p.source)?;
            for op in &p.ops {
                match op {
                    PipeOp::Apply {
                        comp,
                        stage,
                        inputs,
                        out,
                        ..
                    } => writeln!(f, "  apply {comp}.{stage}({inputs:?}) -> {out}")?,
                    PipeOp::Filter { bool_col, .. } => writeln!(f, "  filter on {bool_col}")?,
                    PipeOp::FlatMap {
                        comp,
                        stage,
                        input,
                        out,
                        ..
                    } => writeln!(f, "  flatmap {comp}.{stage}({input}) -> {out}")?,
                    PipeOp::Hash { input, out, .. } => writeln!(f, "  hash {input} -> {out}")?,
                    PipeOp::Probe {
                        table,
                        hash_col,
                        build_cols,
                        ..
                    } => writeln!(f, "  probe {table} on {hash_col} -> {build_cols:?}")?,
                }
            }
            writeln!(f, "  sink: {:?}", p.sink)?;
        }
        Ok(())
    }
}

/// Builds a physical plan from an (optimized) TCAP program.
pub fn plan(prog: &TcapProgram) -> PcResult<PhysicalPlan> {
    let mut pipelines: Vec<PipelineSpec> = Vec::new();
    // Seeds: (source, producing list name). Expanded as materialization
    // points are discovered.
    let mut seeds: Vec<(Source, String)> = Vec::new();
    for s in &prog.stmts {
        if let TcapOp::Input { db, set, .. } = &s.op {
            let col = s.output.cols.first().cloned().unwrap_or_default();
            seeds.push((
                Source::Set {
                    db: db.clone(),
                    set: set.clone(),
                    col,
                },
                s.output.name.clone(),
            ));
        }
    }

    let mut done_seeds: Vec<String> = Vec::new();
    while let Some((source, list)) = seeds.pop() {
        if done_seeds.contains(&list) {
            continue;
        }
        done_seeds.push(list.clone());
        // One pipeline per consumer of the seed list.
        for ci in prog.consumers(&list) {
            let mut ops: Vec<PipeOp> = Vec::new();
            let mut cur_stmt = ci;
            let mut cur_list = list.clone();
            let sink = loop {
                let s = &prog.stmts[cur_stmt];
                let keep = s.output.cols.clone();
                match &s.op {
                    TcapOp::Apply {
                        input,
                        computation,
                        stage,
                        ..
                    } => {
                        ops.push(PipeOp::Apply {
                            comp: computation.clone(),
                            stage: stage.clone(),
                            inputs: input.cols.clone(),
                            out: created(s).unwrap_or_default(),
                            keep,
                        });
                    }
                    TcapOp::Filter { bool_col, .. } => {
                        ops.push(PipeOp::Filter {
                            bool_col: bool_col.cols[0].clone(),
                            keep,
                        });
                    }
                    TcapOp::FlatMap {
                        input,
                        computation,
                        stage,
                        ..
                    } => {
                        ops.push(PipeOp::FlatMap {
                            comp: computation.clone(),
                            stage: stage.clone(),
                            input: input.cols[0].clone(),
                            out: created(s).unwrap_or_default(),
                            keep,
                        });
                    }
                    TcapOp::Hash { input, .. } => {
                        ops.push(PipeOp::Hash {
                            input: input.cols[0].clone(),
                            out: created(s).unwrap_or_default(),
                            keep,
                        });
                    }
                    TcapOp::Join {
                        lhs_hash,
                        lhs_copy,
                        rhs_hash,
                        ..
                    } => {
                        if cur_list == lhs_hash.list {
                            // Build side: pipeline ends here (Appendix D.3
                            // builds from the first n-1 inputs).
                            break Sink::JoinBuild {
                                table: s.output.name.clone(),
                                hash_col: lhs_hash.cols[0].clone(),
                                obj_cols: lhs_copy.cols.clone(),
                            };
                        }
                        debug_assert_eq!(cur_list, rhs_hash.list, "probe must arrive via rhs");
                        // Probe side: run through the join.
                        ops.push(PipeOp::Probe {
                            table: s.output.name.clone(),
                            hash_col: rhs_hash.cols[0].clone(),
                            build_cols: lhs_copy.cols.clone(),
                            keep,
                        });
                    }
                    TcapOp::Aggregate {
                        computation, key, ..
                    } => {
                        // Fuse with a sole downstream OUTPUT when possible.
                        let out_list = s.output.name.clone();
                        let consumers = prog.consumers(&out_list);
                        let only_output = consumers.len() == 1
                            && matches!(prog.stmts[consumers[0]].op, TcapOp::Output { .. });
                        let dest = if only_output {
                            if let TcapOp::Output { db, set, .. } = &prog.stmts[consumers[0]].op {
                                AggDest::Set {
                                    db: db.clone(),
                                    set: set.clone(),
                                }
                            } else {
                                unreachable!()
                            }
                        } else {
                            seeds.push((
                                Source::Intermediate {
                                    list: out_list.clone(),
                                    col: s.output.cols[0].clone(),
                                },
                                out_list.clone(),
                            ));
                            AggDest::Intermediate {
                                list: out_list.clone(),
                            }
                        };
                        break Sink::AggProduce {
                            comp: computation.clone(),
                            col: key.cols[0].clone(),
                            dest,
                        };
                    }
                    TcapOp::Output { input, db, set, .. } => {
                        break Sink::Output {
                            db: db.clone(),
                            set: set.clone(),
                            col: input.cols[0].clone(),
                        };
                    }
                    TcapOp::Input { .. } => {
                        return Err(PcError::Catalog("INPUT cannot consume a list".into()))
                    }
                }
                // Advance to the single consumer of this statement's output;
                // multiple consumers force materialization (§C).
                let out_list = s.output.name.clone();
                let consumers = prog.consumers(&out_list);
                match consumers.len() {
                    0 => {
                        // Terminal non-OUTPUT list: materialize it so the
                        // caller can inspect it (e.g. unit-test fragments).
                        break Sink::Materialize {
                            list: out_list.clone(),
                            col: s.output.cols.first().cloned().unwrap_or_default(),
                        };
                    }
                    1 => {
                        cur_list = out_list;
                        cur_stmt = consumers[0];
                    }
                    _ => {
                        seeds.push((
                            Source::Intermediate {
                                list: out_list.clone(),
                                col: s.output.cols.first().cloned().unwrap_or_default(),
                            },
                            out_list.clone(),
                        ));
                        break Sink::Materialize {
                            list: out_list.clone(),
                            col: s.output.cols.first().cloned().unwrap_or_default(),
                        };
                    }
                }
            };
            pipelines.push(PipelineSpec {
                id: pipelines.len(),
                source: source.clone(),
                ops,
                sink,
            });
        }
    }

    order_pipelines(&mut pipelines)?;
    Ok(PhysicalPlan { pipelines })
}

/// The column a statement appends.
fn created(s: &pc_tcap::ir::TcapStmt) -> Option<String> {
    let copy: &[String] = match &s.op {
        TcapOp::Apply { copy, .. } | TcapOp::FlatMap { copy, .. } | TcapOp::Hash { copy, .. } => {
            &copy.cols
        }
        _ => return None,
    };
    s.output.cols.iter().find(|c| !copy.contains(c)).cloned()
}

/// Topologically orders pipelines by produced/required resources.
fn order_pipelines(pipelines: &mut Vec<PipelineSpec>) -> PcResult<()> {
    let n = pipelines.len();
    let mut ordered: Vec<PipelineSpec> = Vec::with_capacity(n);
    let mut ready: Vec<String> = Vec::new();
    let mut remaining: Vec<PipelineSpec> = std::mem::take(pipelines);
    while !remaining.is_empty() {
        let idx = remaining
            .iter()
            .position(|p| p.requires().iter().all(|r| ready.contains(r)))
            .ok_or_else(|| {
                PcError::Catalog("physical plan has a pipeline dependency cycle".into())
            })?;
        let p = remaining.remove(idx);
        if let Some(prod) = p.produces() {
            ready.push(prod);
        }
        ordered.push(p);
    }
    for (i, p) in ordered.iter_mut().enumerate() {
        p.id = i;
    }
    *pipelines = ordered;
    Ok(())
}

/// Enumerates alternative pipeline decompositions of a TCAP program by
/// flipping which join side builds (Figure 3's (b)/(c) variants). Returns
/// human-readable summaries; the executor always runs the default
/// (left/composite side builds, per Appendix D.3).
pub fn describe_decompositions(prog: &TcapProgram) -> Vec<String> {
    let joins: Vec<&pc_tcap::ir::TcapStmt> = prog
        .stmts
        .iter()
        .filter(|s| matches!(s.op, TcapOp::Join { .. }))
        .collect();
    let mut out = Vec::new();
    let n = joins.len();
    for mask in 0..(1usize << n) {
        let mut desc = format!("decomposition {}:\n", mask);
        for (k, j) in joins.iter().enumerate() {
            if let TcapOp::Join {
                lhs_hash, rhs_hash, ..
            } = &j.op
            {
                let (build, probe) = if mask & (1 << k) == 0 {
                    (&lhs_hash.list, &rhs_hash.list)
                } else {
                    (&rhs_hash.list, &lhs_hash.list)
                };
                desc.push_str(&format!(
                    "  join {}: build from {}, probe streamed from {}\n",
                    j.output.name, build, probe
                ));
            }
        }
        out.push(desc);
    }
    out
}
