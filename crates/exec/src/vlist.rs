//! Vector lists (§5.2): the named column sets flowing through a pipeline.
//!
//! A vector list is **slot-addressed**: the planner resolves every column
//! name to a slot index once per pipeline ([`crate::plan::PipelineSpec::resolve`]),
//! so the per-batch hot path is pure index arithmetic — no string compares.
//!
//! It also carries a **selection vector**: FILTER marks surviving base rows
//! in `sel` instead of re-materializing every column (the eager copying the
//! paper attributes to the Spark-like baseline, not to PlinyCompute).
//! Invariant: all present columns are mutually aligned to the batch's base
//! rows; `sel`, when set, lists the live base-row indices in ascending
//! order. Selection-aware kernels read through `sel` and emit dense output,
//! at which point the list *rebases*: surviving columns are compacted (one
//! gather, drawing buffers from a recycled [`ColumnPool`]) and `sel`
//! clears. Columns dropped by the statement's output declaration are never
//! copied at all.

use pc_lambda::{Column, ColumnPool};
use pc_object::{PcError, PcResult};

/// A batch of named columns, all of equal base length, viewed through an
/// optional selection vector.
pub struct VectorList {
    names: Vec<String>,
    slots: Vec<Option<Column>>,
    sel: Option<Vec<u32>>,
}

impl VectorList {
    pub fn new() -> Self {
        VectorList {
            names: Vec::new(),
            slots: Vec::new(),
            sel: None,
        }
    }

    /// A list pre-sized for a resolved pipeline's slot map: every slot
    /// empty, addressed by index.
    pub fn for_slots(names: Vec<String>) -> Self {
        let slots = names.iter().map(|_| None).collect();
        VectorList {
            names,
            slots,
            sel: None,
        }
    }

    pub fn with(name: &str, col: Column) -> Self {
        let mut vl = VectorList::new();
        vl.push(name, col);
        vl
    }

    /// Base row count (length of the aligned columns, 0 when empty).
    pub fn base_len(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .next()
            .map(|c| c.len())
            .unwrap_or(0)
    }

    /// Number of live rows: the selection's length when one is active,
    /// otherwise the base row count.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.base_len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The active selection vector (base-row indices), if any.
    pub fn sel(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    // ------------------------------------------------------ slot addressing

    /// The base-aligned column in `slot` (read through [`Self::sel`]).
    pub fn slot(&self, slot: usize) -> PcResult<&Column> {
        self.slots
            .get(slot)
            .and_then(|c| c.as_ref())
            .ok_or_else(|| {
                PcError::Catalog(format!(
                    "vector list has no column in slot {slot} ({})",
                    self.names.get(slot).map(|n| n.as_str()).unwrap_or("?")
                ))
            })
    }

    /// Installs a column into `slot`. Must not be called while a selection
    /// is active (push after [`Self::rebase_with`] / a filter's refinement
    /// instead): a fresh dense column would not align with the base rows.
    pub fn set_slot(&mut self, slot: usize, col: Column) {
        debug_assert!(
            self.sel.is_none(),
            "set_slot with an active selection would break base alignment"
        );
        debug_assert!(
            self.slots.iter().flatten().all(|c| c.len() == col.len()),
            "column length {} != vector list base length {}",
            col.len(),
            self.base_len()
        );
        self.slots[slot] = Some(col);
    }

    /// Clears one slot, recycling its buffer.
    pub fn clear_slot(&mut self, slot: usize, pool: &mut ColumnPool) {
        if let Some(col) = self.slots[slot].take() {
            pool.recycle(col);
        }
    }

    /// Clears every slot in `drop` (a resolved op's statically computed
    /// drop list — the columns the statement's output declaration loses).
    pub fn drop_slots(&mut self, drop: &[usize], pool: &mut ColumnPool) {
        for &s in drop {
            self.clear_slot(s, pool);
        }
    }

    // --------------------------------------------------- selection mechanics

    /// FILTER: refines the selection by the base-aligned boolean column in
    /// `bool_slot`. No column is touched, let alone copied.
    pub fn filter_by_slot(&mut self, bool_slot: usize, pool: &mut ColumnPool) -> PcResult<()> {
        let mask = self.slot(bool_slot)?.as_bool()?;
        let mut next = pool.take_sel();
        match &self.sel {
            None => next.extend(
                mask.iter()
                    .enumerate()
                    .filter(|(_, &m)| m)
                    .map(|(i, _)| i as u32),
            ),
            Some(cur) => next.extend(cur.iter().copied().filter(|&i| mask[i as usize])),
        }
        if let Some(old) = self.sel.replace(next) {
            pool.recycle_sel(old);
        }
        Ok(())
    }

    /// Rebase after a selection-aware kernel produced the dense column
    /// `out`: compact every surviving column through the selection (one
    /// gather each, from pooled buffers), clear the selection, and install
    /// `out`. With no active selection this is just the install.
    pub fn rebase_with(&mut self, out_slot: usize, out: Column, pool: &mut ColumnPool) {
        if let Some(sel) = self.sel.take() {
            for c in self.slots.iter_mut().flatten() {
                let compacted = c.gather_pooled(&sel, pool);
                pool.recycle(std::mem::replace(c, compacted));
            }
            pool.recycle_sel(sel);
        }
        self.slots[out_slot] = Some(out);
    }

    /// FLATMAP rebase: every surviving column is replicated by `counts`
    /// (one entry per live row) through the selection; the selection
    /// clears; the kernel's dense output column is installed.
    pub fn replicate_with(
        &mut self,
        counts: &[u32],
        out_slot: usize,
        out: Column,
        pool: &mut ColumnPool,
    ) {
        let sel = self.sel.take();
        for c in self.slots.iter_mut().flatten() {
            let replicated = c.replicate_sel(counts, sel.as_deref());
            pool.recycle(std::mem::replace(c, replicated));
        }
        if let Some(sel) = sel {
            pool.recycle_sel(sel);
        }
        self.slots[out_slot] = Some(out);
    }

    /// Join-probe rebase: every surviving column is gathered by `idx`
    /// (base-row indices, one per match — the probe loop already folded the
    /// selection into `idx`); the selection clears.
    pub fn gather_rebase(&mut self, idx: &[u32], pool: &mut ColumnPool) {
        for c in self.slots.iter_mut().flatten() {
            let gathered = c.gather_pooled(idx, pool);
            pool.recycle(std::mem::replace(c, gathered));
        }
        if let Some(sel) = self.sel.take() {
            pool.recycle_sel(sel);
        }
    }

    /// Ends the batch: drops every column and the selection into the pool,
    /// releasing object references while keeping the heap buffers for the
    /// next batch.
    pub fn recycle(&mut self, pool: &mut ColumnPool) {
        for c in self.slots.iter_mut() {
            if let Some(col) = c.take() {
                pool.recycle(col);
            }
        }
        if let Some(sel) = self.sel.take() {
            pool.recycle_sel(sel);
        }
    }

    // ------------------------------------------------------- name-based API

    fn slot_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    pub fn col(&self, name: &str) -> PcResult<&Column> {
        self.slot_of(name)
            .and_then(|s| self.slots[s].as_ref())
            .ok_or_else(|| PcError::Catalog(format!("vector list has no column {name}")))
    }

    /// Appends a column (replacing any existing one of the same name).
    pub fn push(&mut self, name: &str, col: Column) {
        debug_assert!(self.sel.is_none(), "push with an active selection");
        match self.slot_of(name) {
            Some(s) => self.slots[s] = Some(col),
            None => {
                self.names.push(name.to_string());
                self.slots.push(Some(col));
            }
        }
    }

    /// Keeps only the named columns (a statement's output declaration).
    pub fn retain(&mut self, keep: &[String]) {
        for (n, c) in self.names.iter().zip(self.slots.iter_mut()) {
            if !keep.contains(n) {
                *c = None;
            }
        }
    }

    /// Applies a boolean mask to the live rows: marks the selection instead
    /// of copying columns. Call [`Self::compact`] to materialize.
    pub fn filter(&mut self, mask: &[bool]) {
        debug_assert_eq!(mask.len(), self.len(), "mask length != live rows");
        let next: Vec<u32> = match &self.sel {
            None => mask
                .iter()
                .enumerate()
                .filter(|(_, &m)| m)
                .map(|(i, _)| i as u32)
                .collect(),
            Some(cur) => cur
                .iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(&i, _)| i)
                .collect(),
        };
        self.sel = Some(next);
    }

    /// Eagerly filters every column (the pre-selection-vector execution
    /// model; kept as the reference path for tests and benchmarks).
    pub fn filter_materialize(&mut self, mask: &[bool]) {
        for c in self.slots.iter_mut().flatten() {
            *c = c.filter(mask);
        }
    }

    /// Compacts every column through the selection and clears it.
    pub fn compact(&mut self) {
        if let Some(sel) = self.sel.take() {
            for c in self.slots.iter_mut().flatten() {
                *c = c.gather(&sel);
            }
        }
    }

    /// Replicates each live row by `counts` (FLATMAP reshaping).
    pub fn replicate(&mut self, counts: &[u32]) {
        let sel = self.sel.take();
        for c in self.slots.iter_mut().flatten() {
            *c = c.replicate_sel(counts, sel.as_deref());
        }
    }

    /// Gathers live rows by index into the base rows (join probe fan-out).
    pub fn gather(&mut self, idx: &[u32]) {
        for c in self.slots.iter_mut().flatten() {
            *c = c.gather(idx);
        }
        self.sel = None;
    }

    /// Names of the columns currently present.
    pub fn names(&self) -> Vec<&str> {
        self.names
            .iter()
            .zip(&self.slots)
            .filter(|(_, c)| c.is_some())
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Drops every column, releasing object references (ends the batch).
    pub fn clear(&mut self) {
        for c in self.slots.iter_mut() {
            *c = None;
        }
        self.sel = None;
    }
}

impl Default for VectorList {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_filter_retain_roundtrip() {
        let mut vl = VectorList::with("a", Column::I64(vec![1, 2, 3, 4]));
        vl.push("b", Column::Bool(vec![true, false, true, false]));
        assert_eq!(vl.len(), 4);
        let mask: Vec<bool> = vl.col("b").unwrap().as_bool().unwrap().to_vec();
        vl.filter(&mask);
        // The filter only marks rows...
        assert_eq!(vl.len(), 2);
        assert_eq!(vl.sel(), Some(&[0u32, 2][..]));
        assert_eq!(vl.col("a").unwrap().len(), 4, "columns stay unmaterialized");
        // ...until a boundary compacts them.
        vl.compact();
        assert_eq!(vl.col("a").unwrap().as_i64().unwrap(), &[1, 3]);
        vl.retain(&["a".to_string()]);
        assert!(vl.col("b").is_err());
    }

    #[test]
    fn chained_filters_compose_selections() {
        let mut vl = VectorList::with("x", Column::I64(vec![10, 20, 30, 40, 50, 60]));
        vl.filter(&[true, true, false, true, true, false]); // rows 0,1,3,4
        assert_eq!(vl.len(), 4);
        // Second mask is over live rows.
        vl.filter(&[false, true, true, false]);
        assert_eq!(vl.sel(), Some(&[1u32, 3][..]));
        vl.compact();
        assert_eq!(vl.col("x").unwrap().as_i64().unwrap(), &[20, 40]);
    }

    #[test]
    fn replicate_matches_counts() {
        let mut vl = VectorList::with("x", Column::F64(vec![1.0, 2.0, 3.0]));
        vl.replicate(&[2, 0, 1]);
        assert_eq!(vl.col("x").unwrap().as_f64().unwrap(), &[1.0, 1.0, 3.0]);
    }

    #[test]
    fn replicate_through_selection() {
        let mut vl = VectorList::with("x", Column::F64(vec![1.0, 2.0, 3.0, 4.0]));
        vl.filter(&[false, true, false, true]); // live rows 1, 3
        vl.replicate(&[3, 1]);
        assert_eq!(
            vl.col("x").unwrap().as_f64().unwrap(),
            &[2.0, 2.0, 2.0, 4.0]
        );
        assert_eq!(vl.sel(), None, "replicate rebases");
    }

    #[test]
    fn slot_api_rebases_on_kernel_output() {
        let mut pool = ColumnPool::default();
        let mut vl = VectorList::for_slots(vec!["a".into(), "b".into()]);
        vl.set_slot(0, Column::I64(vec![1, 2, 3, 4]));
        vl.set_slot(1, Column::Bool(vec![false, true, true, false]));
        vl.filter_by_slot(1, &mut pool).unwrap();
        assert_eq!(vl.len(), 2);
        // A kernel would emit a dense 2-row column; rebase compacts "a"/"b".
        vl.rebase_with(1, Column::I64(vec![20, 30]), &mut pool);
        assert_eq!(vl.sel(), None);
        assert_eq!(vl.slot(0).unwrap().as_i64().unwrap(), &[2, 3]);
        assert_eq!(vl.slot(1).unwrap().as_i64().unwrap(), &[20, 30]);
        // Recycling keeps buffers for the next batch.
        vl.recycle(&mut pool);
        assert_eq!(vl.len(), 0);
        assert!(!pool.i64s.is_empty());
    }
}
