//! Vector lists (§5.2): the named column sets flowing through a pipeline.

use pc_lambda::Column;
use pc_object::{PcError, PcResult};

/// A batch of named columns, all of equal length.
pub struct VectorList {
    cols: Vec<(String, Column)>,
}

impl VectorList {
    pub fn new() -> Self {
        VectorList { cols: Vec::new() }
    }

    pub fn with(name: &str, col: Column) -> Self {
        VectorList {
            cols: vec![(name.to_string(), col)],
        }
    }

    /// Number of rows (0 when empty).
    pub fn len(&self) -> usize {
        self.cols.first().map(|(_, c)| c.len()).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn col(&self, name: &str) -> PcResult<&Column> {
        self.cols
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .ok_or_else(|| PcError::Catalog(format!("vector list has no column {name}")))
    }

    /// Appends a column (replacing any existing one of the same name).
    pub fn push(&mut self, name: &str, col: Column) {
        debug_assert!(
            self.cols.is_empty() || col.len() == self.len(),
            "column {name} length {} != vector list length {}",
            col.len(),
            self.len()
        );
        self.cols.retain(|(n, _)| n != name);
        self.cols.push((name.to_string(), col));
    }

    /// Keeps only the named columns (a statement's output declaration).
    pub fn retain(&mut self, keep: &[String]) {
        self.cols.retain(|(n, _)| keep.contains(n));
    }

    /// Applies a boolean mask to every column.
    pub fn filter(&mut self, mask: &[bool]) {
        for (_, c) in self.cols.iter_mut() {
            *c = c.filter(mask);
        }
    }

    /// Replicates each row by `counts` (FLATMAP reshaping).
    pub fn replicate(&mut self, counts: &[u32]) {
        for (_, c) in self.cols.iter_mut() {
            *c = c.replicate(counts);
        }
    }

    /// Gathers rows by index (join probe fan-out).
    pub fn gather(&mut self, idx: &[u32]) {
        for (_, c) in self.cols.iter_mut() {
            *c = c.gather(idx);
        }
    }

    pub fn names(&self) -> Vec<&str> {
        self.cols.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Drops every column, releasing object references (ends the batch).
    pub fn clear(&mut self) {
        self.cols.clear();
    }
}

impl Default for VectorList {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_filter_retain_roundtrip() {
        let mut vl = VectorList::with("a", Column::I64(vec![1, 2, 3, 4]));
        vl.push("b", Column::Bool(vec![true, false, true, false]));
        assert_eq!(vl.len(), 4);
        let mask: Vec<bool> = vl.col("b").unwrap().as_bool().unwrap().to_vec();
        vl.filter(&mask);
        assert_eq!(vl.len(), 2);
        assert_eq!(vl.col("a").unwrap().as_i64().unwrap(), &[1, 3]);
        vl.retain(&["a".to_string()]);
        assert!(vl.col("b").is_err());
    }

    #[test]
    fn replicate_matches_counts() {
        let mut vl = VectorList::with("x", Column::F64(vec![1.0, 2.0, 3.0]));
        vl.replicate(&[2, 0, 1]);
        assert_eq!(vl.col("x").unwrap().as_f64().unwrap(), &[1.0, 1.0, 3.0]);
    }
}
