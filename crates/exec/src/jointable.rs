//! Join hash tables (Appendix D.3): `Map<unsigned_t, Vector<Object>>`
//! objects living on pages — radix-partitioned and built batch-at-a-time.
//!
//! A build-side entry stores `arity` object handles per match group (one
//! per object column of a composite build side). Inserting deep-copies the
//! objects onto the table's page — the same movement the original system
//! performs when repartition sinks write `Map<unsigned_t, Vector<Object>>`
//! pages. Probing walks the bucket in `arity`-sized groups; hash collisions
//! are resolved by the residual predicate the compiler re-emits post-join.
//!
//! The table mirrors the vectorized aggregation sink's layout: the key's
//! slot hash is computed once per row, its **high** bits select one of a
//! power-of-two set of partitions (a shift and mask — disjoint from the low
//! bits the partition maps consume for masked probing), and each partition
//! owns its own chain of map pages. The build path ([`JoinTable::insert_batch`])
//! radix-partitions a whole selection-filtered batch and folds each bucket
//! into its partition's open page with one grouped bulk upsert; the probe
//! path routes a key to its owning partition's chain only — never a full
//! table scan — after a compact 16-bit tag filter (built from the stored
//! hashes when the build seals) has rejected miss probes without touching
//! any map. The pre-vectorization row-at-a-time build survives as
//! [`JoinTable::insert_rowwise`] for differential tests and the
//! `micro_join` A/B benchmark.

use pc_object::{
    AllocPolicy, AnyHandle, AnyObj, BlockRef, Handle, PcError, PcKey, PcMap, PcResult, PcVec,
    SealedPage,
};
use std::cell::Cell;

type Bucket = Handle<PcVec<Handle<AnyObj>>>;
type TableMap = PcMap<u64, Bucket>;

/// Default hash-partition count for join tables (overridable through
/// `ExecConfig::join_partitions` / [`JoinTable::with_partitions`]).
pub const DEFAULT_JOIN_PARTITIONS: usize = 8;

/// A partition's probe-side tag filter: a blocked Bloom filter with 16-bit
/// blocks, sized at seal time from the partition's entry count. Shared
/// (`Arc`) so a broadcast table's filters are built once and reopened by
/// every pipelining thread without rescanning the maps. Empty = not built
/// (probes go straight to the maps); any insert invalidates it.
pub type TagFilter = std::sync::Arc<Vec<u16>>;

/// One radix partition: its chain of map pages (the last one is open for
/// inserts; earlier ones filled up) and its probe-side tag filter.
struct Partition {
    pages: Vec<(BlockRef, Handle<TableMap>)>,
    tags: TagFilter,
}

/// Reusable batch scratch for [`JoinTable::insert_batch`] — grown on the
/// first batch, cleared (not freed) afterwards.
#[derive(Default)]
struct BuildScratch {
    /// Base row of each selected row.
    rows: Vec<u32>,
    /// Join-key hash (the hash column's value) per selected row.
    jhashes: Vec<u64>,
    /// Slot hash (`PcKey::hash_val` of the join hash) per selected row.
    shashes: Vec<u64>,
    /// Radix bucket boundaries: partition `p` owns `starts[p]..starts[p+1]`.
    starts: Vec<u32>,
    /// Scatter cursors, one per partition.
    cursors: Vec<u32>,
    /// Selected-row indices in bucket order.
    order: Vec<u32>,
    /// Slot hashes in bucket order — the contiguous bulk-upsert input.
    bucket_hashes: Vec<u64>,
}

/// One join input's hash table: a power-of-two set of radix partitions,
/// each spanning one or more pages.
pub struct JoinTable {
    arity: usize,
    page_size: usize,
    partitions: usize,
    parts: Vec<Partition>,
    scratch: BuildScratch,
    /// Total object groups inserted.
    pub groups: u64,
    /// Probe keys the tag filters rejected without a map probe.
    tag_rejects: Cell<u64>,
}

impl JoinTable {
    pub fn new(arity: usize, page_size: usize) -> Self {
        Self::with_partitions(arity, page_size, DEFAULT_JOIN_PARTITIONS)
    }

    /// The partition-count rounding every table applies: at least one, and
    /// a power of two so partition selection is a shift and mask. The one
    /// source of truth for builders, reopeners, and the broadcast store.
    pub fn round_partitions(partitions: usize) -> usize {
        partitions.max(1).next_power_of_two()
    }

    /// A table with an explicit hash-partition count (rounded by
    /// [`Self::round_partitions`]).
    pub fn with_partitions(arity: usize, page_size: usize, partitions: usize) -> Self {
        let partitions = Self::round_partitions(partitions);
        JoinTable {
            arity,
            page_size,
            partitions,
            parts: (0..partitions)
                .map(|_| Partition {
                    pages: Vec::new(),
                    tags: TagFilter::default(),
                })
                .collect(),
            scratch: BuildScratch::default(),
            groups: 0,
            tag_rejects: Cell::new(0),
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Partition of a slot hash: high bits, masked. The map probe consumes
    /// the low bits and the tag filter the bits above the partition's, so
    /// the three stay independent.
    #[inline]
    fn part_of(&self, shash: u64) -> usize {
        ((shash >> 32) as usize) & (self.partitions - 1)
    }

    /// Tag-filter position of a slot hash within a filter of `len` (power
    /// of two) 16-bit blocks: `(block_index, bit_mask)`. The block index
    /// draws from the low bits (so even multi-million-entry partitions
    /// index the whole filter — low bits vary freely within a partition,
    /// unlike the partition-select bits 32..44) and the bit from bits
    /// 55..59 — ranges disjoint from each other and from bit 63, which the
    /// map repurposes as its OCCUPIED marker and strips from stored hashes
    /// (the filter is built from stored hashes, so consuming bit 63 would
    /// produce false negatives for half of all keys).
    #[inline]
    fn tag_pos(shash: u64, len: usize) -> (usize, u16) {
        (shash as usize & (len - 1), 1u16 << ((shash >> 55) & 15))
    }

    fn add_page(&mut self, part: usize, page_size: usize) -> PcResult<()> {
        let block = BlockRef::new(page_size, AllocPolicy::LightweightReuse);
        let map = block.make_object::<TableMap>()?;
        block.set_root(&map);
        self.parts[part].pages.push((block, map));
        Ok(())
    }

    // ------------------------------------------------------------- building

    /// The vectorized build sink: inserts every selection-live row of a
    /// batch in three phases — (1) slot hashes for the whole batch into
    /// reusable scratch, (2) a counting radix scatter of row indices by the
    /// hash's high bits, (3) one grouped bulk upsert per non-empty
    /// partition, so consecutive probes stay on that partition's hot table.
    /// `cols[k][row]` is the `k`-th build-side object of base row `row`.
    pub fn insert_batch(
        &mut self,
        hashes: &[u64],
        sel: Option<&[u32]>,
        cols: &[&[AnyHandle]],
    ) -> PcResult<()> {
        debug_assert_eq!(cols.len(), self.arity);
        // Phase 1: extract base rows, join hashes, and slot hashes.
        let mut s = std::mem::take(&mut self.scratch);
        s.rows.clear();
        s.jhashes.clear();
        s.shashes.clear();
        match sel {
            None => {
                for (i, &h) in hashes.iter().enumerate() {
                    s.rows.push(i as u32);
                    s.jhashes.push(h);
                    s.shashes.push(PcKey::hash_val(&h));
                }
            }
            Some(sel) => {
                for &i in sel {
                    let h = hashes[i as usize];
                    s.rows.push(i);
                    s.jhashes.push(h);
                    s.shashes.push(PcKey::hash_val(&h));
                }
            }
        }
        let n = s.shashes.len();
        if n == 0 {
            self.scratch = s;
            return Ok(());
        }

        // Phase 2: counting scatter into bucket order — no per-row `%`, no
        // allocation past the first batch.
        let p = self.partitions;
        s.starts.clear();
        s.starts.resize(p + 1, 0);
        for &h in &s.shashes {
            s.starts[self.part_of(h) + 1] += 1;
        }
        for i in 0..p {
            s.starts[i + 1] += s.starts[i];
        }
        s.cursors.clear();
        s.cursors.extend_from_slice(&s.starts[..p]);
        s.order.clear();
        s.order.resize(n, 0);
        s.bucket_hashes.clear();
        s.bucket_hashes.resize(n, 0);
        for (i, &h) in s.shashes.iter().enumerate() {
            let part = self.part_of(h);
            let at = s.cursors[part] as usize;
            s.cursors[part] += 1;
            s.order[at] = i as u32;
            s.bucket_hashes[at] = h;
        }

        // Phase 3: grouped bulk insert, one partition at a time. `groups`
        // counts per completed partition, so it stays consistent with the
        // probe-visible contents even when a later partition errors out.
        let mut result = Ok(());
        for part in 0..p {
            let (lo, hi) = (s.starts[part] as usize, s.starts[part + 1] as usize);
            if lo == hi {
                continue;
            }
            result = self.bulk_insert(
                part,
                &s.order[lo..hi],
                &s.bucket_hashes[lo..hi],
                &s.rows,
                &s.jhashes,
                cols,
            );
            if result.is_err() {
                break;
            }
            self.groups += (hi - lo) as u64;
        }
        self.scratch = s;
        result
    }

    /// Folds one partition's bucket of rows into its open map page with a
    /// grouped bulk upsert: table geometry is hoisted out of the row loop
    /// (inside `upsert_batch_by`), the map is `reserve`-pre-sized for the
    /// burst, and the `done` cursor makes the fold resumable — on
    /// `BlockFull` the full page stays in the chain (buckets may span
    /// pages) and the fold continues on a fresh page exactly where it
    /// stopped. Each group appends atomically: a fault mid-group rolls the
    /// bucket back before propagating, so no torn `arity`-frame survives.
    fn bulk_insert(
        &mut self,
        part: usize,
        order: &[u32],
        bhashes: &[u64],
        rows: &[u32],
        jhashes: &[u64],
        cols: &[&[AnyHandle]],
    ) -> PcResult<()> {
        if self.parts[part].pages.is_empty() {
            self.add_page(part, self.page_size)?;
        }
        // Inserts invalidate any probe-side filter built earlier.
        self.parts[part].tags = TagFilter::default();
        let mut done = 0usize;
        // Escalation is local to the faulting group: a fresh page that still
        // cannot hold one group doubles until it does, and the configured
        // size is restored as soon as the fold progresses — one oversized
        // group no longer inflates every subsequent table page.
        let mut page_size = self.page_size;
        let mut stall = 0u32;
        loop {
            let (_block, map) = self.parts[part].pages.last().unwrap();
            let est = (map.len() * 2 + 16).min(bhashes.len() - done);
            match map.reserve(est) {
                Err(PcError::BlockFull { .. }) => {}
                r => r?,
            }
            let before = done;
            let r = map.upsert_batch_by(
                bhashes,
                &mut done,
                |j, b, slot| b.read::<u64>(slot) == jhashes[order[j] as usize],
                |j, _b| Ok(jhashes[order[j] as usize]),
                |j, b| {
                    // First group under this key on this page: materialize
                    // the bucket and append the group in place.
                    let bucket = b.make_object::<PcVec<Handle<AnyObj>>>()?;
                    let row = rows[order[j] as usize] as usize;
                    bucket.push_group(cols.iter().map(|c| &c[row]))?;
                    Ok(bucket)
                },
                |j, b, slot| {
                    let bucket: Bucket = pc_object::PcValue::load(b, slot);
                    let row = rows[order[j] as usize] as usize;
                    bucket.push_group(cols.iter().map(|c| &c[row]))
                },
            );
            match r {
                Ok(()) => return Ok(()),
                Err(PcError::BlockFull { .. }) => {
                    if done != before {
                        stall = 0;
                        page_size = self.page_size;
                    } else {
                        stall += 1;
                    }
                    if stall > 24 {
                        return Err(PcError::Catalog(
                            "join group exceeds the maximum page size".into(),
                        ));
                    }
                    if stall > 1 {
                        page_size = (page_size * 2).min(256 << 20);
                    }
                    self.add_page(part, page_size)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The pre-vectorization build path, kept verbatim as the reference for
    /// parity tests and the `micro_join` A/B benchmark: one closure-driven
    /// `upsert_by`, a redundant `map.get` re-probe, and a per-element push
    /// loop per group. Routes through the same partitions so its tables
    /// probe identically.
    pub fn insert_rowwise(&mut self, hash: u64, objs: &[AnyHandle]) -> PcResult<()> {
        debug_assert_eq!(objs.len(), self.arity);
        let part = self.part_of(PcKey::hash_val(&hash));
        if self.parts[part].pages.is_empty() {
            self.add_page(part, self.page_size)?;
        }
        self.parts[part].tags = TagFilter::default();
        let mut on_fresh_page = false;
        // Escalate locally for the faulting group, leaving the configured
        // `self.page_size` untouched for later pages (see `bulk_insert`).
        let mut page_size = self.page_size;
        for _ in 0..24 {
            match self.try_insert_last(part, hash, objs) {
                Ok(()) => {
                    self.groups += 1;
                    return Ok(());
                }
                Err(PcError::BlockFull { .. }) => {
                    // Page full: start a new page in the partition's chain
                    // (buckets may span pages). A fault on a just-created
                    // page means the group itself exceeds the page size:
                    // escalate before retrying.
                    if on_fresh_page {
                        page_size = (page_size * 2).min(256 << 20);
                    }
                    self.add_page(part, page_size)?;
                    on_fresh_page = true;
                }
                Err(e) => return Err(e),
            }
        }
        Err(PcError::Catalog(
            "join group exceeds the maximum page size".into(),
        ))
    }

    fn try_insert_last(&mut self, part: usize, hash: u64, objs: &[AnyHandle]) -> PcResult<()> {
        let (block, map) = self.parts[part].pages.last().unwrap();
        // Probe with the key's canonical slot hash (PcKey::hash_val) so the
        // typed `get` path finds the same entry.
        map.upsert_by(
            PcKey::hash_val(&hash),
            |b, slot| b.read::<u64>(slot) == hash,
            |_b| Ok(hash),
            |_b| block.make_object::<PcVec<Handle<AnyObj>>>(),
            |_b, _slot| Ok(()),
        )?;
        // Fetch the bucket and append the group (deep copies objects from
        // the probe/input page onto the table page — §6.4's rule). The
        // append must be atomic per group: a BlockFull fault after a partial
        // push would tear the bucket's arity framing, so roll back before
        // propagating the fault.
        let bucket = map.get(&hash).expect("bucket just ensured");
        let before = bucket.len();
        for h in objs {
            if let Err(e) = bucket.push(h.downcast_unchecked::<AnyObj>()) {
                bucket.truncate(before);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Transitions the table to the probe phase: builds each partition's
    /// 16-bit tag filter from the stored entry hashes of its map pages (no
    /// key is rehashed). Called once the build sink finishes — and by
    /// [`Self::from_shared_pages`] when a shipped table reopens — so miss
    /// probes are rejected before touching any map. Inserting again
    /// invalidates the affected partition's filter.
    pub fn finish_build(&mut self) {
        for part in self.parts.iter_mut() {
            let entries: usize = part.pages.iter().map(|(_b, m)| m.len()).sum();
            if entries == 0 {
                part.tags = TagFilter::default();
                continue;
            }
            let len = (entries * 2).next_power_of_two().max(16);
            let mut tags = vec![0u16; len];
            for (_block, map) in &part.pages {
                map.for_each_stored_hash(|h| {
                    let (i, bit) = Self::tag_pos(h, len);
                    tags[i] |= bit;
                });
            }
            part.tags = TagFilter::new(tags);
        }
    }

    // -------------------------------------------------------------- probing

    /// Routes a probe's slot hash to its owning partition, or `None` when
    /// the partition's tag filter rejects the key (one filter word read, no
    /// map touched). Shared by every routed probe path.
    #[inline]
    fn route(&self, shash: u64) -> Option<&Partition> {
        let part = &self.parts[self.part_of(shash)];
        if !part.tags.is_empty() {
            let (i, bit) = Self::tag_pos(shash, part.tags.len());
            if part.tags[i] & bit == 0 {
                self.tag_rejects.set(self.tag_rejects.get() + 1);
                return None;
            }
        }
        Some(part)
    }

    /// The pipeline's probe fast path: appends each match for `hash`
    /// directly into the caller's reusable buffers — `probe_row` once per
    /// match group into `idx` (the gather-index vector) and the group's
    /// handles into `built[k]` (one buffer per build-side object column) —
    /// with no per-group closure call or `Vec` allocation. The slot hash is
    /// computed once: its high bits route to the owning partition (only
    /// that partition's page chain is walked — never the whole table), the
    /// tag filter rejects misses before any map probe, and the maps probe
    /// by the precomputed hash. Returns the number of match groups.
    pub fn probe_into(
        &self,
        hash: u64,
        probe_row: u32,
        idx: &mut Vec<u32>,
        built: &mut [Vec<AnyHandle>],
    ) -> usize {
        debug_assert_eq!(built.len(), self.arity);
        let shash = PcKey::hash_val(&hash);
        let Some(part) = self.route(shash) else {
            return 0;
        };
        let mut matches = 0;
        for (_block, map) in &part.pages {
            if let Some(bucket) = map.get_hashed(shash, &hash) {
                matches += push_matches(&bucket, self.arity, probe_row, idx, built);
            }
        }
        matches
    }

    /// The retained pre-partitioning probe: walks **every** table page for
    /// each key with a fresh typed lookup, exactly as the engine did before
    /// probes were partition-routed. Kept only for the `micro_join`
    /// benchmark and differential tests; not a public API surface.
    #[doc(hidden)]
    pub fn probe_into_scan(
        &self,
        hash: u64,
        probe_row: u32,
        idx: &mut Vec<u32>,
        built: &mut [Vec<AnyHandle>],
    ) -> usize {
        debug_assert_eq!(built.len(), self.arity);
        let mut matches = 0;
        for part in &self.parts {
            for (_block, map) in &part.pages {
                if let Some(bucket) = map.get(&hash) {
                    matches += push_matches(&bucket, self.arity, probe_row, idx, built);
                }
            }
        }
        matches
    }

    /// Calls `f` with each match group for `hash` (partition-routed like
    /// [`Self::probe_into`]).
    pub fn probe(
        &self,
        hash: u64,
        mut f: impl FnMut(&[AnyHandle]) -> PcResult<()>,
    ) -> PcResult<()> {
        let shash = PcKey::hash_val(&hash);
        let Some(part) = self.route(shash) else {
            return Ok(());
        };
        for (_block, map) in &part.pages {
            if let Some(bucket) = map.get_hashed(shash, &hash) {
                let len = bucket.len();
                debug_assert_eq!(len % self.arity, 0);
                let mut group: Vec<AnyHandle> = Vec::with_capacity(self.arity);
                let mut i = 0;
                while i < len {
                    group.clear();
                    for k in 0..self.arity {
                        group.push(bucket.get(i + k).erase());
                    }
                    f(&group)?;
                    i += self.arity;
                }
            }
        }
        Ok(())
    }

    /// Number of probe keys the tag filters rejected without a map probe
    /// (diagnostics; reset never).
    pub fn tag_rejects(&self) -> u64 {
        self.tag_rejects.get()
    }

    /// Pages a probe for `hash` may touch: the size of its partition's
    /// chain. The routing guarantee tested by the multi-page routing test —
    /// strictly less than [`Self::page_count`] once other partitions hold
    /// pages.
    pub fn partition_page_count(&self, hash: u64) -> usize {
        self.parts[self.part_of(PcKey::hash_val(&hash))].pages.len()
    }

    /// Page capacities across all partitions (diagnostics; the escalation
    /// test asserts oversized groups don't inflate later pages).
    pub fn page_capacities(&self) -> Vec<usize> {
        self.parts
            .iter()
            .flat_map(|p| p.pages.iter().map(|(b, _)| b.capacity()))
            .collect()
    }

    /// Bytes across all table pages (planner statistics / broadcast choice).
    pub fn bytes(&self) -> usize {
        self.parts
            .iter()
            .flat_map(|p| p.pages.iter().map(|(b, _)| b.used()))
            .sum()
    }

    // ------------------------------------------------------------- shipping

    /// Seals the table into shippable `(partition, page)` pairs (the
    /// broadcast/shuffle form of a build side — its maps travel as raw
    /// pages tagged with their radix partition, Appendix D.3), so receivers
    /// can reassemble the partition chains instead of concatenating pages
    /// into one flat scan list.
    pub fn into_pages(self) -> PcResult<Vec<(usize, SealedPage)>> {
        let mut out = Vec::new();
        for (part, p) in self.parts.into_iter().enumerate() {
            for (block, map) in p.pages {
                drop(map);
                out.push((part, block.try_seal()?));
            }
        }
        Ok(out)
    }

    /// Builds the per-partition tag filters of a sealed, shipped table
    /// **once** from the stored entry hashes. The broadcast path calls this
    /// at gather time and ships the `Arc`s alongside the pages, so every
    /// reopening pipelining thread shares the filters instead of rescanning
    /// all table entries per thread.
    pub fn build_shared_tag_filters(
        partitions: usize,
        pages: &[(usize, std::sync::Arc<SealedPage>)],
    ) -> PcResult<Vec<TagFilter>> {
        let partitions = Self::round_partitions(partitions);
        let mut opened: Vec<(usize, BlockRef, Handle<TableMap>)> = Vec::with_capacity(pages.len());
        for (part, p) in pages {
            let (block, root) = p.open_view()?;
            let map = root.downcast::<TableMap>()?;
            opened.push((*part, block, map));
        }
        let mut entries = vec![0usize; partitions];
        for (part, _block, map) in &opened {
            entries[*part] += map.len();
        }
        let mut filters: Vec<Vec<u16>> = entries
            .iter()
            .map(|&e| {
                if e == 0 {
                    Vec::new()
                } else {
                    vec![0u16; (e * 2).next_power_of_two().max(16)]
                }
            })
            .collect();
        for (part, _block, map) in &opened {
            let tags = &mut filters[*part];
            let len = tags.len();
            if len == 0 {
                continue;
            }
            map.for_each_stored_hash(|h| {
                let (i, bit) = Self::tag_pos(h, len);
                tags[i] |= bit;
            });
        }
        Ok(filters.into_iter().map(TagFilter::new).collect())
    }

    /// Opens a read-only table over shipped partition-tagged pages
    /// (zero-copy views). `filters` are the shared tag filters built once
    /// by [`Self::build_shared_tag_filters`]; when absent (one entry per
    /// partition is required) the table rebuilds them locally. Used by
    /// every worker after a broadcast; `insert` must not be called on it.
    pub fn from_shared_pages(
        arity: usize,
        page_size: usize,
        partitions: usize,
        pages: &[(usize, std::sync::Arc<SealedPage>)],
        filters: &[TagFilter],
    ) -> PcResult<Self> {
        let mut t = JoinTable::with_partitions(arity, page_size, partitions);
        for (part, p) in pages {
            let (block, root) = p.open_view()?;
            let map = root.downcast::<TableMap>()?;
            t.parts[*part].pages.push((block, map));
        }
        if filters.len() == t.partitions {
            for (part, f) in t.parts.iter_mut().zip(filters) {
                part.tags = f.clone();
            }
        } else {
            t.finish_build();
        }
        Ok(t)
    }

    /// Folds another table's partitions into this one partition-wise
    /// (merging per-thread builds on a worker): partition `p`'s chains
    /// concatenate, so probes still touch only their own partition.
    pub fn absorb(&mut self, other: JoinTable) {
        debug_assert_eq!(self.arity, other.arity);
        debug_assert_eq!(self.partitions, other.partitions);
        self.groups += other.groups;
        for (mine, theirs) in self.parts.iter_mut().zip(other.parts) {
            if !theirs.pages.is_empty() {
                mine.tags = TagFilter::default();
                mine.pages.extend(theirs.pages);
            }
        }
    }

    pub fn page_count(&self) -> usize {
        self.parts.iter().map(|p| p.pages.len()).sum()
    }
}

/// Appends every `arity`-group of `bucket` into the caller's probe buffers.
#[inline]
fn push_matches(
    bucket: &Bucket,
    arity: usize,
    probe_row: u32,
    idx: &mut Vec<u32>,
    built: &mut [Vec<AnyHandle>],
) -> usize {
    let len = bucket.len();
    debug_assert_eq!(len % arity, 0);
    let mut matches = 0;
    let mut i = 0;
    while i < len {
        idx.push(probe_row);
        for (k, b) in built.iter_mut().enumerate() {
            b.push(bucket.get(i + k).erase());
        }
        i += arity;
        matches += 1;
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_object::{make_object, AllocScope};

    fn sources(n: i64) -> Vec<Handle<PcVec<i64>>> {
        (0..n)
            .map(|i| {
                let v = make_object::<PcVec<i64>>().unwrap();
                v.push(i).unwrap();
                v
            })
            .collect()
    }

    #[test]
    fn insert_and_probe_with_collisions_across_pages() {
        let _s = AllocScope::new(1 << 18);
        let mut t = JoinTable::new(1, 4096); // tiny pages force spanning
        let sources = sources(200);
        for (i, v) in sources.iter().enumerate() {
            // Two logical keys, heavy bucket fan-in.
            let hash = (i % 2) as u64 + 1;
            t.insert_rowwise(hash, &[v.erase()]).unwrap();
        }
        assert!(
            t.page_count() > 1,
            "tiny pages must span ({} page)",
            t.page_count()
        );
        let mut seen = 0;
        t.probe(1, |group| {
            let v: Handle<PcVec<i64>> = group[0].downcast_unchecked::<AnyObj>().assume();
            assert_eq!(v.get(0) % 2, 0);
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 100);
        let mut none = 0;
        t.probe(99, |_| {
            none += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(none, 0);
    }

    #[test]
    fn insert_batch_and_probe_agree_with_rowwise() {
        let _s = AllocScope::new(1 << 19);
        let srcs = sources(300);
        let objs: Vec<AnyHandle> = srcs.iter().map(|v| v.erase()).collect();
        let hashes: Vec<u64> = (0..300u64).map(|i| i % 7).collect();
        let mut vectorized = JoinTable::new(1, 4096);
        vectorized
            .insert_batch(&hashes, None, &[objs.as_slice()])
            .unwrap();
        vectorized.finish_build();
        let mut rowwise = JoinTable::new(1, 4096);
        for (h, o) in hashes.iter().zip(&objs) {
            rowwise.insert_rowwise(*h, std::slice::from_ref(o)).unwrap();
        }
        assert_eq!(vectorized.groups, 300);
        assert_eq!(rowwise.groups, 300);
        for key in 0..9u64 {
            let collect = |t: &JoinTable| {
                let mut idx = Vec::new();
                let mut built: Vec<Vec<AnyHandle>> = vec![Vec::new()];
                t.probe_into(key, 0, &mut idx, &mut built);
                let mut vals: Vec<i64> = built[0]
                    .iter()
                    .map(|h| {
                        h.downcast_unchecked::<AnyObj>()
                            .assume::<PcVec<i64>>()
                            .get(0)
                    })
                    .collect();
                vals.sort_unstable();
                vals
            };
            assert_eq!(collect(&vectorized), collect(&rowwise), "key {key}");
        }
    }

    #[test]
    fn probe_into_fills_reusable_buffers_across_pages() {
        let _s = AllocScope::new(1 << 18);
        let mut t = JoinTable::new(1, 4096); // tiny pages force bucket spanning
        let sources = sources(200);
        for (i, v) in sources.iter().enumerate() {
            t.insert_rowwise((i % 2) as u64 + 1, &[v.erase()]).unwrap();
        }
        assert!(t.page_count() > 1, "bucket must span pages");
        // The closure-free path: one idx entry + one handle per match, all
        // appended into caller-owned buffers.
        let mut idx: Vec<u32> = Vec::new();
        let mut built: Vec<Vec<AnyHandle>> = vec![Vec::new()];
        let n = t.probe_into(1, 7, &mut idx, &mut built);
        assert_eq!(n, 100);
        assert_eq!(idx.len(), 100);
        assert!(idx.iter().all(|&r| r == 7), "idx carries the probe row");
        assert_eq!(built[0].len(), 100);
        for h in &built[0] {
            let v: Handle<PcVec<i64>> = h.downcast_unchecked::<AnyObj>().assume();
            assert_eq!(v.get(0) % 2, 0);
        }
        // A second probe appends after the first (buffer reuse contract).
        let n2 = t.probe_into(2, 9, &mut idx, &mut built);
        assert_eq!(n2, 100);
        assert_eq!(idx.len(), 200);
        assert_eq!(built[0].len(), 200);
        // Misses append nothing.
        assert_eq!(t.probe_into(99, 0, &mut idx, &mut built), 0);
        assert_eq!(idx.len(), 200);
        // probe_into agrees with the closure API group for group.
        let mut via_closure = 0;
        t.probe(1, |g| {
            assert_eq!(g.len(), 1);
            via_closure += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(via_closure, n);
    }

    #[test]
    fn probes_route_to_one_partition_and_tags_reject_misses() {
        let _s = AllocScope::new(1 << 20);
        // Many keys over few partitions with tiny pages: every partition
        // grows a multi-page chain.
        let mut t = JoinTable::with_partitions(1, 2048, 4);
        let srcs = sources(512);
        let objs: Vec<AnyHandle> = srcs.iter().map(|v| v.erase()).collect();
        let hashes: Vec<u64> = (0..512u64).collect();
        t.insert_batch(&hashes, None, &[objs.as_slice()]).unwrap();
        t.finish_build();
        assert!(
            t.page_count() > t.partitions(),
            "need multi-page chains ({} pages)",
            t.page_count()
        );
        // Routing: a probe may only touch its own partition's chain, which
        // is strictly smaller than the whole table.
        let mut idx = Vec::new();
        let mut built: Vec<Vec<AnyHandle>> = vec![Vec::new()];
        for key in 0..512u64 {
            assert!(
                t.partition_page_count(key) < t.page_count(),
                "probe for {key} would scan the whole table"
            );
            idx.clear();
            built[0].clear();
            assert_eq!(t.probe_into(key, 0, &mut idx, &mut built), 1);
            let v: Handle<PcVec<i64>> = built[0][0].downcast_unchecked::<AnyObj>().assume();
            assert_eq!(v.get(0), key as i64);
        }
        // Misses: the tag filter rejects (statistically almost) all of them
        // before any map probe, and none produce matches.
        let before = t.tag_rejects();
        for key in 10_000..11_000u64 {
            idx.clear();
            built[0].clear();
            assert_eq!(t.probe_into(key, 0, &mut idx, &mut built), 0);
        }
        assert!(
            t.tag_rejects() - before > 800,
            "tag filter rejected only {} of 1000 misses",
            t.tag_rejects() - before
        );
    }

    #[test]
    fn insert_escalates_for_the_faulting_group_only() {
        let _s = AllocScope::new(1 << 21);
        // Table pages start far smaller than one group's objects, so the
        // first insert faults on a fresh page and must escalate (doubling)
        // rather than spinning on same-size pages forever.
        let mut t = JoinTable::new(1, 512);
        let big = make_object::<PcVec<i64>>().unwrap();
        for i in 0..300i64 {
            big.push(i).unwrap();
        }
        t.insert_rowwise(42, &[big.erase()]).unwrap();
        assert_eq!(t.groups, 1);
        let mut idx: Vec<u32> = Vec::new();
        let mut built: Vec<Vec<AnyHandle>> = vec![Vec::new()];
        assert_eq!(t.probe_into(42, 0, &mut idx, &mut built), 1);
        let v: Handle<PcVec<i64>> = built[0][0].downcast_unchecked::<AnyObj>().assume();
        assert_eq!(v.len(), 300);
        assert_eq!(v.get(299), 299);
        // Escalation was local to the oversized group: later inserts (other
        // partitions / fresh pages) go back to the configured page size.
        for i in 0..40u64 {
            let small = make_object::<PcVec<i64>>().unwrap();
            small.push(i as i64).unwrap();
            t.insert_rowwise(100 + i, &[small.erase()]).unwrap();
        }
        assert_eq!(t.groups, 41);
        let caps = t.page_capacities();
        assert!(
            caps.iter().any(|&c| c > 512),
            "oversized group must escalate its own page"
        );
        assert!(
            caps.iter().filter(|&&c| c == 512).count() > 0,
            "configured page size must be restored after escalation: {caps:?}"
        );
        // Same contract on the vectorized path.
        let mut tv = JoinTable::new(1, 512);
        let big2 = make_object::<PcVec<i64>>().unwrap();
        for i in 0..300i64 {
            big2.push(i).unwrap();
        }
        let smalls = sources(40);
        let mut objs: Vec<AnyHandle> = vec![big2.erase()];
        objs.extend(smalls.iter().map(|v| v.erase()));
        let hashes: Vec<u64> = (0..41u64).map(|i| i * 13 + 7).collect();
        tv.insert_batch(&hashes, None, &[objs.as_slice()]).unwrap();
        let caps = tv.page_capacities();
        assert!(caps.iter().any(|&c| c > 512));
        assert!(
            caps.iter().filter(|&&c| c == 512).count() > 0,
            "vectorized escalation must also restore the configured size: {caps:?}"
        );
    }

    #[test]
    fn absorb_merges_per_thread_builds_partition_wise() {
        let _s = AllocScope::new(1 << 19);
        // Two "pipelining thread" builds over disjoint row ranges...
        let srcs = sources(200);
        let mut a = JoinTable::with_partitions(1, 4096, 4);
        let mut b = JoinTable::with_partitions(1, 4096, 4);
        let hashes: Vec<u64> = (0..200u64).map(|i| i % 10).collect();
        let objs: Vec<AnyHandle> = srcs.iter().map(|v| v.erase()).collect();
        a.insert_batch(&hashes[..100], None, &[&objs[..100]])
            .unwrap();
        b.insert_batch(&hashes[100..], None, &[&objs[100..]])
            .unwrap();
        // ...fold together partition-wise, and probe like one build.
        a.absorb(b);
        assert_eq!(a.groups, 200);
        a.finish_build();
        let mut idx = Vec::new();
        let mut built: Vec<Vec<AnyHandle>> = vec![Vec::new()];
        let mut total = 0;
        for key in 0..10u64 {
            assert!(
                a.partition_page_count(key) < a.page_count(),
                "absorbed chains must stay partition-routed"
            );
            total += a.probe_into(key, 0, &mut idx, &mut built);
        }
        assert_eq!(total, 200, "every group from both builds probes");
        assert_eq!(a.probe_into(99, 0, &mut idx, &mut built), 0);
    }

    #[test]
    fn composite_arity_groups_probe_in_order() {
        let _s = AllocScope::new(1 << 18);
        let mut t = JoinTable::new(2, 1 << 16);
        let a = make_object::<PcVec<i64>>().unwrap();
        a.push(1).unwrap();
        let b = make_object::<PcVec<i64>>().unwrap();
        b.push(2).unwrap();
        t.insert_rowwise(7, &[a.erase(), b.erase()]).unwrap();
        t.probe(7, |group| {
            assert_eq!(group.len(), 2);
            let x: Handle<PcVec<i64>> = group[0].downcast_unchecked::<AnyObj>().assume();
            let y: Handle<PcVec<i64>> = group[1].downcast_unchecked::<AnyObj>().assume();
            assert_eq!((x.get(0), y.get(0)), (1, 2));
            Ok(())
        })
        .unwrap();
    }
}
