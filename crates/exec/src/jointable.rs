//! Join hash tables (Appendix D.3): `Map<unsigned_t, Vector<Object>>`
//! objects living on pages.
//!
//! A build-side entry stores `arity` object handles per match group (one
//! per object column of a composite build side). Inserting deep-copies the
//! objects onto the table's page — the same movement the original system
//! performs when repartition sinks write `Map<unsigned_t, Vector<Object>>`
//! pages. Probing walks the bucket in `arity`-sized groups; hash collisions
//! are resolved by the residual predicate the compiler re-emits post-join.

use pc_object::{
    AllocPolicy, AnyHandle, AnyObj, BlockRef, Handle, PcError, PcMap, PcResult, PcVec, SealedPage,
};

type Bucket = Handle<PcVec<Handle<AnyObj>>>;
type TableMap = PcMap<u64, Bucket>;

/// One join input's hash table, possibly spanning several pages.
pub struct JoinTable {
    arity: usize,
    page_size: usize,
    pages: Vec<(BlockRef, Handle<TableMap>)>,
    /// Total object groups inserted.
    pub groups: u64,
}

impl JoinTable {
    pub fn new(arity: usize, page_size: usize) -> Self {
        JoinTable {
            arity,
            page_size,
            pages: Vec::new(),
            groups: 0,
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    fn add_page(&mut self) -> PcResult<()> {
        let block = BlockRef::new(self.page_size, AllocPolicy::LightweightReuse);
        let map = block.make_object::<TableMap>()?;
        block.set_root(&map);
        self.pages.push((block, map));
        Ok(())
    }

    /// Inserts one match group under `hash`.
    pub fn insert(&mut self, hash: u64, objs: &[AnyHandle]) -> PcResult<()> {
        debug_assert_eq!(objs.len(), self.arity);
        if self.pages.is_empty() {
            self.add_page()?;
        }
        let mut on_fresh_page = false;
        for _ in 0..24 {
            match self.try_insert_last(hash, objs) {
                Ok(()) => {
                    self.groups += 1;
                    return Ok(());
                }
                Err(PcError::BlockFull { .. }) => {
                    // Page full: start a new table page (probes consult
                    // every page, so buckets may span pages). A fault on a
                    // just-created page means the group itself exceeds the
                    // page size: escalate before retrying.
                    if on_fresh_page {
                        self.page_size = (self.page_size * 2).min(256 << 20);
                    }
                    self.add_page()?;
                    on_fresh_page = true;
                }
                Err(e) => return Err(e),
            }
        }
        Err(PcError::Catalog(
            "join group exceeds the maximum page size".into(),
        ))
    }

    fn try_insert_last(&mut self, hash: u64, objs: &[AnyHandle]) -> PcResult<()> {
        let (block, map) = self.pages.last().unwrap();
        // Probe with the key's canonical slot hash (PcKey::hash_val) so the
        // typed `get` path finds the same entry.
        map.upsert_by(
            pc_object::PcKey::hash_val(&hash),
            |b, slot| b.read::<u64>(slot) == hash,
            |_b| Ok(hash),
            |_b| block.make_object::<PcVec<Handle<AnyObj>>>(),
            |_b, _slot| Ok(()),
        )?;
        // Fetch the bucket and append the group (deep copies objects from
        // the probe/input page onto the table page — §6.4's rule). The
        // append must be atomic per group: a BlockFull fault after a partial
        // push would tear the bucket's arity framing, so roll back before
        // propagating the fault.
        let bucket = map.get(&hash).expect("bucket just ensured");
        let before = bucket.len();
        for h in objs {
            if let Err(e) = bucket.push(h.downcast_unchecked::<AnyObj>()) {
                bucket.truncate(before);
                return Err(e);
            }
        }
        Ok(())
    }

    /// The pipeline's probe fast path: appends each match for `hash`
    /// directly into the caller's reusable buffers — `probe_row` once per
    /// match group into `idx` (the gather-index vector) and the group's
    /// handles into `built[k]` (one buffer per build-side object column) —
    /// with no per-group closure call or `Vec` allocation. Returns the
    /// number of match groups.
    pub fn probe_into(
        &self,
        hash: u64,
        probe_row: u32,
        idx: &mut Vec<u32>,
        built: &mut [Vec<AnyHandle>],
    ) -> usize {
        debug_assert_eq!(built.len(), self.arity);
        let mut matches = 0;
        for (_block, map) in &self.pages {
            if let Some(bucket) = map.get(&hash) {
                let len = bucket.len();
                debug_assert_eq!(len % self.arity, 0);
                let mut i = 0;
                while i < len {
                    idx.push(probe_row);
                    for (k, b) in built.iter_mut().enumerate() {
                        b.push(bucket.get(i + k).erase());
                    }
                    i += self.arity;
                    matches += 1;
                }
            }
        }
        matches
    }

    /// Calls `f` with each match group for `hash`.
    pub fn probe(
        &self,
        hash: u64,
        mut f: impl FnMut(&[AnyHandle]) -> PcResult<()>,
    ) -> PcResult<()> {
        for (_block, map) in &self.pages {
            if let Some(bucket) = map.get(&hash) {
                let len = bucket.len();
                debug_assert_eq!(len % self.arity, 0);
                let mut group: Vec<AnyHandle> = Vec::with_capacity(self.arity);
                let mut i = 0;
                while i < len {
                    group.clear();
                    for k in 0..self.arity {
                        group.push(bucket.get(i + k).erase());
                    }
                    f(&group)?;
                    i += self.arity;
                }
            }
        }
        Ok(())
    }

    /// Bytes across all table pages (planner statistics / broadcast choice).
    pub fn bytes(&self) -> usize {
        self.pages.iter().map(|(b, _)| b.used()).sum()
    }

    /// Seals the table into shippable pages (the broadcast/shuffle form of
    /// a build side — its maps travel as raw pages, Appendix D.3).
    pub fn into_pages(self) -> PcResult<Vec<SealedPage>> {
        let mut out = Vec::with_capacity(self.pages.len());
        for (block, map) in self.pages {
            drop(map);
            out.push(block.try_seal()?);
        }
        Ok(out)
    }

    /// Opens a read-only table over shipped pages (zero-copy views). Used by
    /// every worker after a broadcast; `insert` must not be called on it.
    pub fn from_shared_pages(
        arity: usize,
        page_size: usize,
        pages: &[std::sync::Arc<SealedPage>],
    ) -> PcResult<Self> {
        let mut t = JoinTable::new(arity, page_size);
        for p in pages {
            let (block, root) = p.open_view()?;
            let map = root.downcast::<TableMap>()?;
            t.pages.push((block, map));
        }
        Ok(t)
    }

    /// Folds another table's pages into this one (merging per-thread builds
    /// on a worker).
    pub fn absorb(&mut self, other: JoinTable) {
        debug_assert_eq!(self.arity, other.arity);
        self.groups += other.groups;
        self.pages.extend(other.pages);
    }

    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_object::{make_object, AllocScope};

    #[test]
    fn insert_and_probe_with_collisions_across_pages() {
        let _s = AllocScope::new(1 << 18);
        let mut t = JoinTable::new(1, 4096); // tiny pages force spanning
        let mut sources = Vec::new();
        for i in 0..200i64 {
            let v = make_object::<PcVec<i64>>().unwrap();
            v.push(i).unwrap();
            sources.push(v);
        }
        for (i, v) in sources.iter().enumerate() {
            // Two logical keys, heavy bucket fan-in.
            let hash = (i % 2) as u64 + 1;
            t.insert(hash, &[v.erase()]).unwrap();
        }
        assert!(
            t.page_count() > 1,
            "tiny pages must span ({} page)",
            t.page_count()
        );
        let mut seen = 0;
        t.probe(1, |group| {
            let v: Handle<PcVec<i64>> = group[0].downcast_unchecked::<AnyObj>().assume();
            assert_eq!(v.get(0) % 2, 0);
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 100);
        let mut none = 0;
        t.probe(99, |_| {
            none += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(none, 0);
    }

    #[test]
    fn probe_into_fills_reusable_buffers_across_pages() {
        let _s = AllocScope::new(1 << 18);
        let mut t = JoinTable::new(1, 4096); // tiny pages force bucket spanning
        let mut sources = Vec::new();
        for i in 0..200i64 {
            let v = make_object::<PcVec<i64>>().unwrap();
            v.push(i).unwrap();
            sources.push(v);
        }
        for (i, v) in sources.iter().enumerate() {
            t.insert((i % 2) as u64 + 1, &[v.erase()]).unwrap();
        }
        assert!(t.page_count() > 1, "bucket must span pages");
        // The closure-free path: one idx entry + one handle per match, all
        // appended into caller-owned buffers.
        let mut idx: Vec<u32> = Vec::new();
        let mut built: Vec<Vec<AnyHandle>> = vec![Vec::new()];
        let n = t.probe_into(1, 7, &mut idx, &mut built);
        assert_eq!(n, 100);
        assert_eq!(idx.len(), 100);
        assert!(idx.iter().all(|&r| r == 7), "idx carries the probe row");
        assert_eq!(built[0].len(), 100);
        for h in &built[0] {
            let v: Handle<PcVec<i64>> = h.downcast_unchecked::<AnyObj>().assume();
            assert_eq!(v.get(0) % 2, 0);
        }
        // A second probe appends after the first (buffer reuse contract).
        let n2 = t.probe_into(2, 9, &mut idx, &mut built);
        assert_eq!(n2, 100);
        assert_eq!(idx.len(), 200);
        assert_eq!(built[0].len(), 200);
        // Misses append nothing.
        assert_eq!(t.probe_into(99, 0, &mut idx, &mut built), 0);
        assert_eq!(idx.len(), 200);
        // probe_into agrees with the closure API group for group.
        let mut via_closure = 0;
        t.probe(1, |g| {
            assert_eq!(g.len(), 1);
            via_closure += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(via_closure, n);
    }

    #[test]
    fn insert_escalates_page_size_for_oversized_groups() {
        let _s = AllocScope::new(1 << 20);
        // Table pages start far smaller than one group's objects, so the
        // first insert faults on a fresh page and must escalate (doubling)
        // rather than spinning on same-size pages forever.
        let mut t = JoinTable::new(1, 512);
        let big = make_object::<PcVec<i64>>().unwrap();
        for i in 0..300i64 {
            big.push(i).unwrap();
        }
        t.insert(42, &[big.erase()]).unwrap();
        assert_eq!(t.groups, 1);
        let mut idx: Vec<u32> = Vec::new();
        let mut built: Vec<Vec<AnyHandle>> = vec![Vec::new()];
        assert_eq!(t.probe_into(42, 0, &mut idx, &mut built), 1);
        let v: Handle<PcVec<i64>> = built[0][0].downcast_unchecked::<AnyObj>().assume();
        assert_eq!(v.len(), 300);
        assert_eq!(v.get(299), 299);
        // Escalation abandoned undersized pages but the table still grows
        // normally afterwards.
        let small = make_object::<PcVec<i64>>().unwrap();
        small.push(1).unwrap();
        t.insert(43, &[small.erase()]).unwrap();
        assert_eq!(t.groups, 2);
    }

    #[test]
    fn composite_arity_groups_probe_in_order() {
        let _s = AllocScope::new(1 << 18);
        let mut t = JoinTable::new(2, 1 << 16);
        let a = make_object::<PcVec<i64>>().unwrap();
        a.push(1).unwrap();
        let b = make_object::<PcVec<i64>>().unwrap();
        b.push(2).unwrap();
        t.insert(7, &[a.erase(), b.erase()]).unwrap();
        t.probe(7, |group| {
            assert_eq!(group.len(), 2);
            let x: Handle<PcVec<i64>> = group[0].downcast_unchecked::<AnyObj>().assume();
            let y: Handle<PcVec<i64>> = group[1].downcast_unchecked::<AnyObj>().assume();
            assert_eq!((x.get(0), y.get(0)), (1, 2));
            Ok(())
        })
        .unwrap();
    }
}
