//! Differential property tests for the radix-partitioned vectorized join
//! build: the batch path (batch hash → radix scatter → grouped bulk upsert)
//! and the retained row-at-a-time reference must produce identical
//! probe-result multisets across arities, selections, batch sizes, and
//! page sizes — and a `BlockFull` fault mid-group must never leave a torn
//! `arity`-frame in any bucket.

use pc_exec::JoinTable;
use pc_object::{make_object, AllocScope, AnyHandle, AnyObj, Handle, PcVec};
use proptest::prelude::*;

/// Payload object `k`: a vector `[tag, k]` so probes can recover both the
/// column index and the row identity.
fn payload(col: i64, row: i64) -> Handle<PcVec<i64>> {
    let v = make_object::<PcVec<i64>>().unwrap();
    v.push(col).unwrap();
    v.push(row).unwrap();
    v
}

/// Probes `keys` against `t` and returns the sorted multiset of
/// `(key, probe_row, col_tag, row_id)` over every match group and column.
fn probe_all(t: &JoinTable, keys: &[u64]) -> Vec<(u64, u32, i64, i64)> {
    let mut out = Vec::new();
    let mut idx: Vec<u32> = Vec::new();
    let mut built: Vec<Vec<AnyHandle>> = (0..t.arity()).map(|_| Vec::new()).collect();
    for (p, &key) in keys.iter().enumerate() {
        idx.clear();
        for b in built.iter_mut() {
            b.clear();
        }
        let n = t.probe_into(key, p as u32, &mut idx, &mut built);
        assert_eq!(idx.len(), n, "one idx entry per match group");
        for b in &built {
            assert_eq!(b.len(), n, "every column buffer aligned to matches");
        }
        for m in 0..n {
            for b in &built {
                let v: Handle<PcVec<i64>> = b[m].downcast_unchecked::<AnyObj>().assume();
                assert_eq!(v.len(), 2, "payload framing intact");
                out.push((key, idx[m], v.get(0), v.get(1)));
            }
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn vectorized_and_rowwise_builds_probe_identically(
        rows in proptest::collection::vec(0u64..24, 1..300),
        mask in proptest::collection::vec(any::<bool>(), 300..301),
        arity in 1usize..4,
        partitions in 1usize..9,
        page_size_exp in 12u32..17,
        batch_rows in 8usize..120,
    ) {
        let page_size = 1usize << page_size_exp; // 4 KiB .. 64 KiB: forces
                                                 // multi-page chains + faults
        let scope = AllocScope::new(1 << 22);
        let mut vectorized = JoinTable::with_partitions(arity, page_size, partitions);
        let mut rowwise = JoinTable::with_partitions(arity, page_size, partitions);

        // Absorb the same input through both paths, batch by batch, with a
        // selection vector derived from the mask.
        let mut group: Vec<AnyHandle> = Vec::with_capacity(arity);
        for (chunk_at, chunk) in rows.chunks(batch_rows).enumerate() {
            let cols: Vec<Vec<AnyHandle>> = (0..arity)
                .map(|k| {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, _)| {
                            payload(k as i64, (chunk_at * batch_rows + i) as i64).erase()
                        })
                        .collect()
                })
                .collect();
            let hashes: Vec<u64> = chunk.to_vec();
            let sel: Vec<u32> = (0..chunk.len())
                .filter(|i| mask[(chunk_at * batch_rows + i) % mask.len()])
                .map(|i| i as u32)
                .collect();
            let col_slices: Vec<&[AnyHandle]> = cols.iter().map(|c| c.as_slice()).collect();
            vectorized.insert_batch(&hashes, Some(&sel), &col_slices).unwrap();
            for &i in &sel {
                group.clear();
                group.extend(cols.iter().map(|c| c[i as usize].clone()));
                rowwise.insert_rowwise(hashes[i as usize], &group).unwrap();
            }
        }
        drop(group);
        drop(scope);
        prop_assert_eq!(vectorized.groups, rowwise.groups, "group counts diverged");
        vectorized.finish_build();

        // Probe every possible key (hits and misses) through both tables.
        let keys: Vec<u64> = (0..30u64).collect();
        let got_vec = probe_all(&vectorized, &keys);
        let got_row = probe_all(&rowwise, &keys);
        prop_assert_eq!(got_vec, got_row, "probe multisets diverged");
    }
}

/// Torn-group regression: with `arity > 1` and pages so small that
/// `BlockFull` faults land mid-group constantly, the rollback
/// (`bucket.truncate(before)`) must keep every bucket's framing intact —
/// each probed group carries exactly one payload per column, with matching
/// row ids across the columns of a group.
#[test]
fn torn_groups_never_survive_block_full_faults() {
    let _s = AllocScope::new(1 << 22);
    for arity in [2usize, 3] {
        // 512-byte pages cannot hold many 2-element vectors: most groups
        // fault at least once, many mid-group.
        let mut t = JoinTable::with_partitions(arity, 512, 4);
        let n = 120usize;
        let cols: Vec<Vec<AnyHandle>> = (0..arity)
            .map(|k| {
                (0..n)
                    .map(|i| payload(k as i64, i as i64).erase())
                    .collect()
            })
            .collect();
        let hashes: Vec<u64> = (0..n as u64).map(|i| i % 5).collect();
        let col_slices: Vec<&[AnyHandle]> = cols.iter().map(|c| c.as_slice()).collect();
        t.insert_batch(&hashes, None, &col_slices).unwrap();
        t.finish_build();
        assert!(t.page_count() > 4, "tiny pages must fault and chain");

        let mut idx: Vec<u32> = Vec::new();
        let mut built: Vec<Vec<AnyHandle>> = (0..arity).map(|_| Vec::new()).collect();
        let mut total = 0usize;
        for key in 0..5u64 {
            idx.clear();
            for b in built.iter_mut() {
                b.clear();
            }
            let matches = t.probe_into(key, 0, &mut idx, &mut built);
            total += matches;
            for m in 0..matches {
                let mut row_id = None;
                for (k, b) in built.iter().enumerate() {
                    let v: Handle<PcVec<i64>> = b[m].downcast_unchecked::<AnyObj>().assume();
                    assert_eq!(v.len(), 2, "payload framing intact");
                    assert_eq!(v.get(0), k as i64, "column tag preserved in order");
                    match row_id {
                        None => row_id = Some(v.get(1)),
                        Some(r) => assert_eq!(
                            v.get(1),
                            r,
                            "group columns must come from the same build row"
                        ),
                    }
                }
            }
        }
        assert_eq!(total, n, "every group probed exactly once (arity {arity})");
    }
}

/// The same rollback contract on the rowwise reference path.
#[test]
fn rowwise_rollback_matches_vectorized_under_faults() {
    let _s = AllocScope::new(1 << 22);
    let arity = 2usize;
    let mut vectorized = JoinTable::with_partitions(arity, 512, 2);
    let mut rowwise = JoinTable::with_partitions(arity, 512, 2);
    let n = 80usize;
    let cols: Vec<Vec<AnyHandle>> = (0..arity)
        .map(|k| {
            (0..n)
                .map(|i| payload(k as i64, i as i64).erase())
                .collect()
        })
        .collect();
    let hashes: Vec<u64> = (0..n as u64).map(|i| i % 3).collect();
    let col_slices: Vec<&[AnyHandle]> = cols.iter().map(|c| c.as_slice()).collect();
    vectorized.insert_batch(&hashes, None, &col_slices).unwrap();
    vectorized.finish_build();
    for i in 0..n {
        rowwise
            .insert_rowwise(hashes[i], &[cols[0][i].clone(), cols[1][i].clone()])
            .unwrap();
    }
    let keys: Vec<u64> = (0..4u64).collect();
    assert_eq!(probe_all(&vectorized, &keys), probe_all(&rowwise, &keys));
}
