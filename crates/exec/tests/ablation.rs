//! Ablation: the optimizer must never change query *results*, only cost.
//! Runs the same queries with no rules, each single rule, and all rules,
//! and demands identical output sets. Also pins down planner shapes.

use pc_core::{Dataset, Job};
use pc_exec::{plan, ExecConfig, LocalExecutor, PipeOp, Sink};
use pc_object::{make_object, pc_object, AnyObj, Handle, PcVec, SealedPage};
use pc_storage::StorageManager;
use pc_tcap::{optimize_with, OptimizerRule};

pc_object! {
    pub struct Item / ItemView {
        (key, set_key): i64,
        (weight, set_weight): i64,
    }
}

pc_object! {
    pub struct Tag / TagView {
        (key, set_key): i64,
        (code, set_code): i64,
    }
}

fn setup(label: &str) -> LocalExecutor {
    let storage = StorageManager::in_temp(label).unwrap();
    LocalExecutor::new(
        storage,
        ExecConfig {
            batch_size: 32,
            page_size: 1 << 15,
            agg_partitions: 2,
            join_partitions: 4,
            morsel_rows: 64,
            ..ExecConfig::default()
        },
    )
}

fn load(ex: &LocalExecutor) {
    ex.storage.create_or_clear_set("db", "items").unwrap();
    let mut w = pc_lambda::SetWriter::new(1 << 15);
    for i in 0..400i64 {
        w.write_with(|| {
            let it = make_object::<Item>()?;
            it.v().set_key(i % 13)?;
            it.v().set_weight((i * 31) % 200)?;
            Ok(it.erase())
        })
        .unwrap();
    }
    for p in w.finish().unwrap() {
        ex.storage.append_page("db", "items", p).unwrap();
    }
    ex.storage.create_or_clear_set("db", "tags").unwrap();
    let mut w = pc_lambda::SetWriter::new(1 << 15);
    for i in 0..13i64 {
        w.write_with(|| {
            let t = make_object::<Tag>()?;
            t.v().set_key(i)?;
            t.v().set_code(i * 1000)?;
            Ok(t.erase())
        })
        .unwrap();
    }
    for p in w.finish().unwrap() {
        ex.storage.append_page("db", "tags", p).unwrap();
    }
}

fn query() -> Job {
    // join + pushable single-input conjunct + redundant method calls.
    let joined = Dataset::<Item>::scan("db", "items").join(
        &Dataset::<Tag>::scan("db", "tags"),
        |x, t| {
            x.member("key", |x| x.v().key())
                .eq(t.member("key", |t| t.v().key()))
                .and(x.method("getWeight", |x| x.v().weight()).gt_const(60i64))
                .and(x.method("getWeight", |x| x.v().weight()).lt_const(180i64))
        },
        "mkRow",
        |x, t| {
            let v = make_object::<PcVec<i64>>()?;
            v.push(x.v().key())?;
            v.push(x.v().weight())?;
            v.push(t.v().code())?;
            Ok(v)
        },
    );
    Job::new().add(joined.write_to("db", "out"))
}

fn run_with(rules: &[OptimizerRule], label: &str) -> Vec<(i64, i64, i64)> {
    let ex = setup(label);
    load(&ex);
    ex.storage.create_or_clear_set("db", "out").unwrap();
    let mut q = query().compile().unwrap();
    optimize_with(&mut q.tcap, rules);
    ex.execute(&q).unwrap();
    let mut rows = Vec::new();
    for page in ex.storage.scan("db", "out").unwrap() {
        let (_b, root) = SealedPage::from_bytes(&page.to_bytes())
            .unwrap()
            .open()
            .unwrap();
        let v = root.downcast::<PcVec<Handle<AnyObj>>>().unwrap();
        for h in v.iter() {
            let row: Handle<PcVec<i64>> = h.assume();
            rows.push((row.get(0), row.get(1), row.get(2)));
        }
    }
    rows.sort_unstable();
    rows
}

#[test]
fn every_rule_combination_preserves_results() {
    let baseline = run_with(&[], "abl_none");
    assert!(!baseline.is_empty());
    for (rules, label) in [
        (&[OptimizerRule::RedundantApply][..], "abl_cse"),
        (&[OptimizerRule::SelectionPushdown][..], "abl_push"),
        (&[OptimizerRule::DeadColumns][..], "abl_dead"),
        (
            &[
                OptimizerRule::RedundantApply,
                OptimizerRule::SelectionPushdown,
                OptimizerRule::DeadColumns,
            ][..],
            "abl_all",
        ),
    ] {
        let got = run_with(rules, label);
        assert_eq!(got, baseline, "rules {rules:?} changed the result set");
    }
}

#[test]
fn optimization_shrinks_the_program() {
    let mut q1 = query().compile().unwrap();
    let unopt = q1.tcap.stmts.len();
    optimize_with(
        &mut q1.tcap,
        &[
            OptimizerRule::RedundantApply,
            OptimizerRule::SelectionPushdown,
            OptimizerRule::DeadColumns,
        ],
    );
    assert!(
        q1.tcap.stmts.len() < unopt,
        "optimizer should shrink {unopt} statements, got {}",
        q1.tcap.stmts.len()
    );
}

#[test]
fn planner_shapes_match_appendix_c() {
    // A join query plans into: build pipeline (ends JoinBuild), probe
    // pipeline (runs THROUGH the join to OUTPUT).
    let mut q = query().compile().unwrap();
    pc_tcap::optimize(&mut q.tcap);
    let physical = plan(&q.tcap).unwrap();
    assert_eq!(physical.pipelines.len(), 2);
    let build = &physical.pipelines[0];
    assert!(matches!(build.sink, Sink::JoinBuild { .. }));
    let probe = &physical.pipelines[1];
    assert!(matches!(probe.sink, Sink::Output { .. }));
    assert!(
        probe
            .ops
            .iter()
            .any(|op| matches!(op, PipeOp::Probe { .. })),
        "probe pipeline must run through the join: {probe:?}"
    );
    // The build pipeline must be ordered before its probe.
    assert!(build.id < probe.id);
}

#[test]
fn decomposition_enumeration_covers_both_sides() {
    let mut q = query().compile().unwrap();
    pc_tcap::optimize(&mut q.tcap);
    let decomps = pc_exec::describe_decompositions(&q.tcap);
    assert_eq!(decomps.len(), 2, "one join → two decompositions");
    assert_ne!(decomps[0], decomps[1]);
}
