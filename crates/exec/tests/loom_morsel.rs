//! Model-checking the [`MorselQueue`](pc_exec::morsel) steal-vs-pop
//! protocol: every schedule of two workers popping their own deque from the
//! front while stealing from the victim's back must consume every morsel
//! exactly once.
//!
//! The model is a faithful replica of the queue's locking protocol over the
//! loom shim's `Mutex` (the real struct uses `std::sync::Mutex` — same
//! shape, unshimmable). A deliberately broken "lock-free" variant (claim a
//! morsel by load-then-store on a shared head index) proves the checker
//! actually catches double-consumes.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use std::collections::VecDeque;

/// The real protocol: per-worker deques behind mutexes; own work pops from
/// the front, steals take the victim's back. Exactly the locking discipline
/// of `MorselQueue::next`.
fn run_locked_protocol(morsels_per_worker: usize) -> usize {
    loom::model_bounded(2, move || {
        let threads = 2usize;
        let total = morsels_per_worker * threads;
        // Deal round-robin, like MorselQueue::new.
        let deques: Arc<Vec<Mutex<VecDeque<usize>>>> = Arc::new(
            (0..threads)
                .map(|t| {
                    Mutex::new(
                        (0..total)
                            .filter(|m| m % threads == t)
                            .collect::<VecDeque<usize>>(),
                    )
                })
                .collect(),
        );
        let consumed: Arc<Vec<Mutex<Vec<usize>>>> =
            Arc::new((0..threads).map(|_| Mutex::new(Vec::new())).collect());

        let workers: Vec<_> = (0..threads)
            .map(|me| {
                let deques = deques.clone();
                let consumed = consumed.clone();
                loom::thread::spawn(move || loop {
                    // Own deque first (front)...
                    let mine = deques[me].lock().unwrap().pop_front();
                    let got = match mine {
                        Some(m) => Some(m),
                        // ...then steal from the victim's back.
                        None => deques[(me + 1) % 2].lock().unwrap().pop_back(),
                    };
                    match got {
                        Some(m) => consumed[me].lock().unwrap().push(m),
                        None => break,
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }

        // Exactly-once delivery: every morsel consumed by exactly one worker.
        let mut all: Vec<usize> = consumed
            .iter()
            .flat_map(|c| c.lock().unwrap().clone())
            .collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..total).collect::<Vec<_>>(),
            "morsels lost or double-consumed"
        );
    })
}

#[test]
fn steal_vs_pop_is_exactly_once_under_all_interleavings() {
    let n = run_locked_protocol(4);
    assert!(
        n > 1000,
        "expected >1000 distinct interleavings, explored {n}"
    );
}

#[test]
fn known_bad_racy_head_claim_is_caught() {
    // Broken variant: a shared head index claimed by load-then-store
    // instead of under the deque's lock (or a CAS). Two workers can read
    // the same head and consume the same morsel.
    let v = loom::try_model(|| {
        let total = 4usize;
        let head = Arc::new(AtomicUsize::new(0));
        let consumed: Arc<Vec<Mutex<Vec<usize>>>> =
            Arc::new((0..2).map(|_| Mutex::new(Vec::new())).collect());
        let workers: Vec<_> = (0..2)
            .map(|me| {
                let head = head.clone();
                let consumed = consumed.clone();
                loom::thread::spawn(move || loop {
                    let h = head.load(Ordering::SeqCst);
                    if h >= total {
                        break;
                    }
                    head.store(h + 1, Ordering::SeqCst); // racy claim
                    consumed[me].lock().unwrap().push(h);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let mut all: Vec<usize> = consumed
            .iter()
            .flat_map(|c| c.lock().unwrap().clone())
            .collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..total).collect::<Vec<_>>(),
            "morsels lost or double-consumed"
        );
    })
    .expect_err("the racy head claim must double-consume under some schedule");
    assert!(
        v.message.contains("double-consumed"),
        "unexpected violation: {}",
        v.message
    );
}

#[test]
fn steal_counters_match_consumed_totals() {
    // The dispatched/stolen counters are plain fetch_adds; model that the
    // sum of both workers' counts always equals the dealt total.
    let n = loom::model_bounded(2, || {
        let total = 4usize;
        let deques: Arc<Vec<Mutex<VecDeque<usize>>>> = Arc::new(
            (0..2)
                .map(|t| Mutex::new((0..total).filter(|m| m % 2 == t).collect()))
                .collect(),
        );
        let dispatched = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|me| {
                let deques = deques.clone();
                let dispatched = dispatched.clone();
                loom::thread::spawn(move || loop {
                    let got = {
                        let mine = deques[me].lock().unwrap().pop_front();
                        match mine {
                            Some(m) => Some(m),
                            None => deques[(me + 1) % 2].lock().unwrap().pop_back(),
                        }
                    };
                    if got.is_none() {
                        break;
                    }
                    dispatched.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(dispatched.unsync_load(), total, "dispatch counter drifted");
    });
    assert!(n > 100, "expected >100 interleavings, explored {n}");
}
